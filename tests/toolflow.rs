//! Integration: the complete Fig. 1 tool flow across crates (experiment F1).
//!
//! Design-time: parse the application and the paper's verbatim aspects,
//! weave statically, capture dynamic plans. Runtime: deploy, watch dynamic
//! weaving specialize, verify semantics are preserved and costs drop.

use antarex::core::flow::ToolFlow;
use antarex::core::scenario;
use antarex::dsl::figures::{
    FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
};
use antarex::dsl::DslValue;
use antarex::ir::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

fn all_aspects() -> String {
    format!("{FIG2_PROFILE_ARGUMENTS}\n{FIG3_UNROLL_INNERMOST_LOOPS}\n{FIG4_SPECIALIZE_KERNEL}")
}

#[test]
fn f1_full_flow_preserves_semantics_and_adapts() {
    let mut flow = ToolFlow::new(scenario::DYNAMIC_KERNEL, &all_aspects()).unwrap();
    flow.weave("ProfileArguments", &[DslValue::from("kernel")])
        .unwrap();
    flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
        .unwrap();

    let mut runtime = flow.deploy();
    let probes = Rc::new(RefCell::new(0u32));
    let sink = Rc::clone(&probes);
    runtime.register_host(
        "profile_args",
        Box::new(move |_| {
            *sink.borrow_mut() += 1;
            Ok(Value::Unit)
        }),
    );

    // reference (unwoven) results for semantic comparison
    let reference = |n: usize| -> f64 { 0.25 * n as f64 };

    let mut costs = Vec::new();
    for _ in 0..3 {
        let n = 24usize;
        let buf = Value::from(vec![0.5; n]);
        let (value, stats) = runtime.call("run", &[buf, Value::Int(n as i64)]).unwrap();
        assert_eq!(value, Value::Float(reference(n)));
        costs.push(stats.cost);
    }
    // the woven app profiled every call
    assert_eq!(*probes.borrow(), 3);
    // dynamic weaving created exactly one version and the cached calls are
    // no more expensive than the first (which paid for specialization
    // dispatch) — and much cheaper than a generic run would be
    assert_eq!(runtime.version_count("kernel"), 1);
    assert!(costs[1] <= costs[0]);
    assert_eq!(costs[1], costs[2], "steady state is deterministic");

    // compare against a generic (never-specializing) deployment
    let mut plain_flow = ToolFlow::new(scenario::DYNAMIC_KERNEL, &all_aspects()).unwrap();
    plain_flow
        .weave("ProfileArguments", &[DslValue::from("kernel")])
        .unwrap();
    let mut plain = plain_flow.deploy();
    plain.register_host("profile_args", Box::new(|_| Ok(Value::Unit)));
    let (_, generic_stats) = plain
        .call("run", &[Value::from(vec![0.5; 24]), Value::Int(24)])
        .unwrap();
    assert!(
        costs[2] < generic_stats.cost,
        "specialized steady-state {} must beat generic {}",
        costs[2],
        generic_stats.cost
    );
}

#[test]
fn f1_flow_is_reusable_across_aspect_orders() {
    // weaving order: specialization first, profiling second — the
    // profiling aspect then also instruments nothing new (call sites are
    // unchanged), and the flow still works
    let mut flow = ToolFlow::new(scenario::DYNAMIC_KERNEL, &all_aspects()).unwrap();
    flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
        .unwrap();
    flow.weave("ProfileArguments", &[DslValue::from("kernel")])
        .unwrap();
    let mut runtime = flow.deploy();
    runtime.register_host("profile_args", Box::new(|_| Ok(Value::Unit)));
    let (value, _) = runtime
        .call("run", &[Value::from(vec![1.0; 8]), Value::Int(8)])
        .unwrap();
    assert_eq!(value, Value::Float(8.0));
    assert_eq!(runtime.version_count("kernel"), 1);
}

#[test]
fn f1_woven_source_round_trips_through_the_parser() {
    let mut flow = ToolFlow::new(scenario::MATVEC_KERNEL, FIG3_UNROLL_INNERMOST_LOOPS).unwrap();
    flow.weave(
        "UnrollInnermostLoops",
        &[DslValue::FuncRef("matvec8".into()), DslValue::Int(16)],
    )
    .unwrap();
    let source = flow.emit_source();
    // the inner 8-iteration loop is unrolled; the outer one remains
    let reparsed = antarex::ir::parse_program(&source).unwrap();
    let loops = antarex::ir::analysis::loops(&reparsed.function("matvec8").unwrap().body);
    assert_eq!(loops.len(), 1, "only the outer loop survives:\n{source}");
}
