//! Property-based tests on the core invariants: parser/printer round
//! trips, semantic preservation of weaver transforms, design-space
//! enumeration, quantization monotonicity, event-queue ordering and SLA
//! accounting.
//!
//! The properties are exercised with seeded random case generation (the
//! workspace's deterministic [`rand`] shim) rather than proptest, which
//! is unavailable offline: each test draws a fixed number of cases from
//! a fixed seed, so failures reproduce exactly.

use antarex::ir::interp::{ExecEnv, Interp};
use antarex::ir::types::quantize_mantissa;
use antarex::ir::value::Value;
use antarex::ir::{parse_program, printer::print_program, NodePath};
use antarex::sim::des::EventQueue;
use antarex::tuner::knob::Knob;
use antarex::tuner::space::DesignSpace;
use antarex::weaver::transform::fold::fold_block;
use antarex::weaver::transform::unroll::unroll_full;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a random straight-line-plus-loop mini-C function source over
/// variables `x`, `y` and accumulator `s`.
fn arb_kernel(rng: &mut StdRng) -> String {
    let exprs = [
        "x + y",
        "x * 2 - y",
        "x * x + 3",
        "(x - y) * (x + y)",
        "x % (y + 107)", // y in -50..50: never zero
    ];
    let e = *exprs.choose(rng).expect("non-empty");
    let trip = rng.gen_range(0usize..20);
    let threshold = rng.gen_range(-20i64..20);
    format!(
        "int f(int x, int y) {{
             int s = 0;
             for (int i = 0; i < {trip}; i++) {{ s += i + x; }}
             if (x > {threshold}) {{ s += {e}; }} else {{ s -= {e}; }}
             return s;
         }}"
    )
}

fn run_f(program: &antarex::ir::Program, x: i64, y: i64) -> Value {
    Interp::new(program.clone())
        .call("f", &[Value::Int(x), Value::Int(y)], &mut ExecEnv::new())
        .expect("execution succeeds")
}

/// print(parse(print(p))) == print(p): printing is a fixed point.
#[test]
fn printer_parser_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xA51);
    for _ in 0..64 {
        let src = arb_kernel(&mut rng);
        let program = parse_program(&src).unwrap();
        let once = print_program(&program);
        let reparsed = parse_program(&once).unwrap();
        assert_eq!(program, reparsed, "round trip of:\n{src}");
        assert_eq!(once, print_program(&reparsed));
    }
}

/// Constant folding never changes results.
#[test]
fn folding_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xA52);
    for _ in 0..64 {
        let src = arb_kernel(&mut rng);
        let x = rng.gen_range(-50i64..50);
        let y = rng.gen_range(-50i64..50);
        let program = parse_program(&src).unwrap();
        let mut folded = program.clone();
        folded
            .edit_function("f", |f| f.body = fold_block(&f.body))
            .unwrap();
        assert_eq!(
            run_f(&program, x, y),
            run_f(&folded, x, y),
            "folding changed f({x}, {y}) for:\n{src}"
        );
    }
}

/// Full unrolling never changes results and removes the loop.
#[test]
fn unrolling_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xA53);
    for _ in 0..64 {
        let src = arb_kernel(&mut rng);
        let x = rng.gen_range(-50i64..50);
        let y = rng.gen_range(-50i64..50);
        let program = parse_program(&src).unwrap();
        let mut unrolled = program.clone();
        unrolled
            .edit_function("f", |f| {
                unroll_full(&mut f.body, &NodePath::root(1)).unwrap();
            })
            .unwrap();
        assert!(
            antarex::ir::analysis::loops(&unrolled.function("f").unwrap().body).is_empty(),
            "loop survived unrolling in:\n{src}"
        );
        assert_eq!(run_f(&program, x, y), run_f(&unrolled, x, y));
    }
}

/// Quantization: idempotent, magnitude-bounded, monotone in bits.
#[test]
fn quantization_properties() {
    let mut rng = StdRng::seed_from_u64(0xA54);
    for _ in 0..256 {
        let x = rng.gen_range(-1e12f64..1e12);
        let bits = rng.gen_range(1u8..53);
        let q = quantize_mantissa(x, bits);
        assert_eq!(quantize_mantissa(q, bits), q, "not idempotent at {bits}");
        let err = (q - x).abs();
        let bound = x.abs() * 2.0f64.powi(-(i32::from(bits))) + f64::MIN_POSITIVE;
        assert!(err <= bound, "err {err} > bound {bound}");
        if bits < 52 {
            let finer = quantize_mantissa(x, bits + 1);
            assert!((finer - x).abs() <= err + f64::EPSILON * x.abs());
        }
    }
}

/// Design-space enumeration: size matches, configs are distinct and
/// admissible, and config_at agrees with iteration order.
#[test]
fn design_space_enumeration() {
    let mut rng = StdRng::seed_from_u64(0xA55);
    for _ in 0..32 {
        let a_hi = rng.gen_range(1i64..6);
        let step = rng.gen_range(1i64..3);
        let levels = rng.gen_range(1usize..4);
        let space = DesignSpace::new(vec![
            Knob::int("a", 0, a_hi, step),
            Knob::choice("v", (0..levels).map(|i| format!("c{i}"))),
        ]);
        let all: Vec<_> = space.iter().collect();
        assert_eq!(all.len() as u128, space.size());
        for (i, config) in all.iter().enumerate() {
            assert!(space.contains(config));
            assert_eq!(config, &space.config_at(i as u128));
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

/// Event queue: pops are globally time-ordered and FIFO within ties.
#[test]
fn event_queue_ordering() {
    let mut rng = StdRng::seed_from_u64(0xA56);
    for _ in 0..64 {
        let count = rng.gen_range(1usize..40);
        let times: Vec<u32> = (0..count).map(|_| rng.gen_range(0u32..100)).collect();
        let mut queue = EventQueue::new();
        for (seq, t) in times.iter().enumerate() {
            queue.schedule(f64::from(*t), seq);
        }
        let mut last: (f64, usize) = (-1.0, 0);
        while let Some((t, seq)) = queue.pop() {
            assert!(t >= last.0);
            if t == last.0 {
                assert!(seq > last.1, "FIFO violated at t={t}");
            }
            last = (t, seq);
        }
    }
}

/// SLA violation accounting: rate is consistent with direct counting.
#[test]
fn sla_counting() {
    let mut rng = StdRng::seed_from_u64(0xA57);
    for _ in 0..64 {
        let count = rng.gen_range(1usize..50);
        let values: Vec<f64> = (0..count).map(|_| rng.gen_range(0.0f64..2.0)).collect();
        let mut sla = antarex::monitor::Sla::upper_bound("m", 1.0);
        let mut manual = 0u64;
        for (i, v) in values.iter().enumerate() {
            if !sla.check(i as f64, *v) {
                manual += 1;
            }
        }
        assert_eq!(sla.report().violations, manual);
        assert_eq!(sla.report().checked, values.len() as u64);
    }
}

/// Fault schedules are a pure function of (config, nodes, horizon):
/// identical seeds yield identical schedules, different seeds differ.
#[test]
fn fault_schedules_deterministic_per_seed() {
    use antarex::sim::faults::{FaultConfig, FaultSchedule};
    let mut rng = StdRng::seed_from_u64(0xA5B);
    for _ in 0..24 {
        let seed: u64 = rng.gen();
        let rate = rng.gen_range(0.5f64..8.0);
        let nodes = rng.gen_range(1usize..12);
        let horizon = rng.gen_range(3600.0f64..86_400.0);
        let config = FaultConfig::exascale(seed, rate);
        let a = FaultSchedule::generate(&config, nodes, horizon);
        let b = FaultSchedule::generate(&config, nodes, horizon);
        assert_eq!(a, b, "same inputs must replay identically");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.summary(), b.summary());
        let other = FaultSchedule::generate(&FaultConfig::exascale(seed ^ 1, rate), nodes, horizon);
        assert_ne!(a.digest(), other.digest(), "seed must matter");
    }
}

/// Checkpoint/restart conservation: however the crashes fall, the run
/// completes exactly the requested work, wall clock covers it, and the
/// waste/overhead accounts are non-negative and consistent.
#[test]
fn checkpoint_restart_never_loses_completed_work() {
    use antarex::rtrm::checkpoint::{crash_source, run_to_completion, CheckpointPolicy};
    let mut rng = StdRng::seed_from_u64(0xA5C);
    for case in 0..48 {
        let work_s = rng.gen_range(500.0f64..5000.0);
        let interval = rng.gen_range(50.0f64..1500.0);
        let cost = rng.gen_range(0.0f64..20.0);
        let restart = rng.gen_range(0.0f64..60.0);
        let mtbf = rng.gen_range(200.0f64..4000.0);
        let policy = if case % 5 == 0 {
            CheckpointPolicy::none(restart)
        } else {
            CheckpointPolicy::every(interval, cost, restart)
        };
        // crash train long enough to outlive any sane wall clock
        let mut crashes = Vec::new();
        let mut t = 0.0;
        for _ in 0..64 {
            t += rng.gen_range(0.2 * mtbf..1.8 * mtbf);
            crashes.push(t);
        }
        let run = run_to_completion(work_s, policy, crash_source(crashes));
        assert_eq!(run.completed_work_s, work_s, "work must complete exactly");
        assert!(run.wasted_work_s >= 0.0);
        assert!(run.checkpoint_overhead_s >= 0.0);
        assert!(run.restart_overhead_s >= 0.0);
        assert!(
            run.wall_clock_s + 1e-6
                >= work_s + run.wasted_work_s + run.checkpoint_overhead_s + run.restart_overhead_s,
            "wall clock must cover every account"
        );
        assert!((0.0..1.0).contains(&run.overhead_fraction().min(1.0 - f64::EPSILON)));
    }
}

/// Random printable garbage for the robustness tests.
fn arb_garbage(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| {
            // printable ASCII plus newline, as in the original "[ -~\n]"
            if rng.gen_bool(0.05) {
                '\n'
            } else {
                char::from(rng.gen_range(0x20u8..0x7F))
            }
        })
        .collect()
}

/// The mini-C parser returns errors, never panics, on arbitrary input.
#[test]
fn mini_c_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xA58);
    for _ in 0..256 {
        let input = arb_garbage(&mut rng, 200);
        let _ = parse_program(&input);
        let _ = antarex::ir::parse_expr(&input);
        let _ = antarex::ir::parse_stmts(&input);
    }
}

/// The DSL front end returns errors, never panics, on arbitrary input.
#[test]
fn dsl_parser_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xA59);
    for _ in 0..256 {
        let input = arb_garbage(&mut rng, 200);
        let _ = antarex::dsl::parse_aspects(&input);
    }
}

/// Near-miss aspect sources (mutations of a valid one) never panic.
#[test]
fn dsl_parser_survives_mutations() {
    let mut rng = StdRng::seed_from_u64(0xA5A);
    let base = antarex::dsl::figures::FIG4_SPECIALIZE_KERNEL;
    for _ in 0..256 {
        let cut = rng.gen_range(0usize..200).min(base.len());
        let insert = arb_garbage(&mut rng, 5).replace('\n', " ");
        // splice garbage at a UTF-8 safe position
        let mut pos = cut;
        while !base.is_char_boundary(pos) {
            pos -= 1;
        }
        let mutated = format!("{}{}{}", &base[..pos], insert, &base[pos..]);
        let _ = antarex::dsl::parse_aspects(&mutated);
    }
}
