//! Property-based tests (proptest) on the core invariants:
//! parser/printer round trips, semantic preservation of weaver
//! transforms, design-space enumeration, quantization monotonicity, and
//! event-queue ordering.

use antarex::ir::interp::{ExecEnv, Interp};
use antarex::ir::types::quantize_mantissa;
use antarex::ir::value::Value;
use antarex::ir::{parse_program, printer::print_program, NodePath};
use antarex::sim::des::EventQueue;
use antarex::tuner::knob::Knob;
use antarex::tuner::space::DesignSpace;
use antarex::weaver::transform::fold::fold_block;
use antarex::weaver::transform::unroll::unroll_full;
use proptest::prelude::*;

/// Generates a random straight-line-plus-loop mini-C function source over
/// variables `x`, `y` and accumulator `s`.
fn arb_kernel() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        Just("x + y".to_string()),
        Just("x * 2 - y".to_string()),
        Just("x * x + 3".to_string()),
        Just("(x - y) * (x + y)".to_string()),
        Just("x % (y + 107)".to_string()), // y in -50..50: never zero
    ];
    let trip = 0usize..20;
    let threshold = -20i64..20;
    (expr, trip, threshold).prop_map(|(e, trip, threshold)| {
        format!(
            "int f(int x, int y) {{
                 int s = 0;
                 for (int i = 0; i < {trip}; i++) {{ s += i + x; }}
                 if (x > {threshold}) {{ s += {e}; }} else {{ s -= {e}; }}
                 return s;
             }}"
        )
    })
}

fn run_f(src_or_prog: &antarex::ir::Program, x: i64, y: i64) -> Value {
    Interp::new(src_or_prog.clone())
        .call("f", &[Value::Int(x), Value::Int(y)], &mut ExecEnv::new())
        .expect("execution succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(print(p))) == print(p): printing is a fixed point.
    #[test]
    fn printer_parser_round_trip(src in arb_kernel()) {
        let program = parse_program(&src).unwrap();
        let once = print_program(&program);
        let reparsed = parse_program(&once).unwrap();
        prop_assert_eq!(&program, &reparsed);
        prop_assert_eq!(once, print_program(&reparsed));
    }

    /// Constant folding never changes results.
    #[test]
    fn folding_preserves_semantics(src in arb_kernel(), x in -50i64..50, y in -50i64..50) {
        let program = parse_program(&src).unwrap();
        let mut folded = program.clone();
        folded.edit_function("f", |f| f.body = fold_block(&f.body)).unwrap();
        prop_assert_eq!(run_f(&program, x, y), run_f(&folded, x, y));
    }

    /// Full unrolling never changes results and removes the loop.
    #[test]
    fn unrolling_preserves_semantics(src in arb_kernel(), x in -50i64..50, y in -50i64..50) {
        let program = parse_program(&src).unwrap();
        let mut unrolled = program.clone();
        unrolled
            .edit_function("f", |f| {
                unroll_full(&mut f.body, &NodePath::root(1)).unwrap();
            })
            .unwrap();
        prop_assert!(antarex::ir::analysis::loops(
            &unrolled.function("f").unwrap().body).is_empty());
        prop_assert_eq!(run_f(&program, x, y), run_f(&unrolled, x, y));
    }

    /// Quantization: idempotent, magnitude-bounded, monotone in bits.
    #[test]
    fn quantization_properties(x in -1e12f64..1e12, bits in 1u8..=52) {
        let q = quantize_mantissa(x, bits);
        // idempotent
        prop_assert_eq!(quantize_mantissa(q, bits), q);
        // relative error bounded by one ulp at that width
        let err = (q - x).abs();
        let bound = x.abs() * 2.0f64.powi(-(i32::from(bits))) + f64::MIN_POSITIVE;
        prop_assert!(err <= bound, "err {} > bound {}", err, bound);
        // more bits never increase the error
        if bits < 52 {
            let finer = quantize_mantissa(x, bits + 1);
            prop_assert!((finer - x).abs() <= err + f64::EPSILON * x.abs());
        }
    }

    /// Design-space enumeration: size matches, configs are distinct and
    /// admissible, and config_at agrees with iteration order.
    #[test]
    fn design_space_enumeration(
        a_hi in 1i64..6,
        step in 1i64..3,
        levels in 1usize..4,
    ) {
        let space = DesignSpace::new(vec![
            Knob::int("a", 0, a_hi, step),
            Knob::choice("v", (0..levels).map(|i| format!("c{i}"))),
        ]);
        let all: Vec<_> = space.iter().collect();
        prop_assert_eq!(all.len() as u128, space.size());
        for (i, config) in all.iter().enumerate() {
            prop_assert!(space.contains(config));
            prop_assert_eq!(config, &space.config_at(i as u128));
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }

    /// Event queue: pops are globally time-ordered and FIFO within ties.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u32..100, 1..40)) {
        let mut queue = EventQueue::new();
        for (seq, t) in times.iter().enumerate() {
            queue.schedule(f64::from(*t), seq);
        }
        let mut last: (f64, usize) = (-1.0, 0);
        while let Some((t, seq)) = queue.pop() {
            prop_assert!(t >= last.0);
            if t == last.0 {
                prop_assert!(seq > last.1, "FIFO violated at t={}", t);
            }
            last = (t, seq);
        }
    }

    /// SLA violation accounting: rate is consistent with direct counting.
    #[test]
    fn sla_counting(values in proptest::collection::vec(0.0f64..2.0, 1..50)) {
        let mut sla = antarex::monitor::Sla::upper_bound("m", 1.0);
        let mut manual = 0u64;
        for (i, v) in values.iter().enumerate() {
            if !sla.check(i as f64, *v) {
                manual += 1;
            }
        }
        prop_assert_eq!(sla.report().violations, manual);
        prop_assert_eq!(sla.report().checked, values.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The mini-C parser returns errors, never panics, on arbitrary input.
    #[test]
    fn mini_c_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = parse_program(&input);
        let _ = antarex::ir::parse_expr(&input);
        let _ = antarex::ir::parse_stmts(&input);
    }

    /// The DSL front end returns errors, never panics, on arbitrary input.
    #[test]
    fn dsl_parser_never_panics(input in "[ -~\\n]{0,200}") {
        let _ = antarex::dsl::parse_aspects(&input);
    }

    /// Near-miss aspect sources (mutations of a valid one) never panic.
    #[test]
    fn dsl_parser_survives_mutations(cut in 0usize..200, insert in "[ -~]{0,5}") {
        let base = antarex::dsl::figures::FIG4_SPECIALIZE_KERNEL;
        let cut = cut.min(base.len());
        // splice garbage at a UTF-8 safe position
        let mut pos = cut;
        while !base.is_char_boundary(pos) { pos -= 1; }
        let mutated = format!("{}{}{}", &base[..pos], insert, &base[pos..]);
        let _ = antarex::dsl::parse_aspects(&mutated);
    }
}
