//! Integration: the two use cases end to end (experiments U1, U2).

use antarex::apps::docking::{generate_library, generate_pocket, DockingCampaign, Ligand};
use antarex::apps::nav::{NavigationServer, RoadNetwork, TrafficModel};
use antarex::monitor::Sla;
use antarex::rtrm::dispatch::{run_task_pool, DispatchStrategy};
use antarex::sim::node::{Node, NodeSpec};
use antarex::sim::workload::{exponential, rush_hour_profile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// U1 — §VII-a: dynamic load balancing and heterogeneity-aware placement
/// fix the imbalance of the docking sweep.
#[test]
fn u1_docking_dispatch_strategies_rank_correctly() {
    let mut rng = StdRng::seed_from_u64(31);
    let pocket = generate_pocket(30, &mut rng);
    let mut library = generate_library(400, 24, &mut rng);
    library.sort_by_key(Ligand::size); // catalog order
    let campaign = DockingCampaign::new(library, pocket, 128, 5);
    let tasks = campaign.as_tasks();

    let pool = || -> Vec<Node> {
        (0..6)
            .map(|i| {
                if i < 2 {
                    Node::nominal(NodeSpec::cineca_accelerated(), i)
                } else {
                    Node::nominal(NodeSpec::cineca_xeon(), i)
                }
            })
            .collect()
    };

    let mut nodes = pool();
    let static_run = run_task_pool(&mut nodes, &tasks, DispatchStrategy::StaticPartition);
    let mut nodes = pool();
    let dynamic_run = run_task_pool(&mut nodes, &tasks, DispatchStrategy::DynamicGreedy);
    let mut nodes = pool();
    let aware_run = run_task_pool(&mut nodes, &tasks, DispatchStrategy::HeterogeneityAware);

    // the paper's ordering: static worst, dynamic better, hetero-aware best
    assert!(
        dynamic_run.makespan_s < static_run.makespan_s,
        "dynamic {} !< static {}",
        dynamic_run.makespan_s,
        static_run.makespan_s
    );
    assert!(
        aware_run.makespan_s <= dynamic_run.makespan_s * 1.05,
        "aware {} vs dynamic {}",
        aware_run.makespan_s,
        dynamic_run.makespan_s
    );
    // dynamic balances the devices
    assert!(dynamic_run.imbalance() < static_run.imbalance());
    // every strategy did all the work
    for outcome in [&static_run, &dynamic_run, &aware_run] {
        assert_eq!(outcome.device_tasks.iter().sum::<usize>(), tasks.len());
    }
}

/// U1 quality: the screening itself produces stable hits regardless of
/// where it was scheduled (scheduling must not change science).
#[test]
fn u1_docking_results_are_schedule_independent() {
    let mut rng = StdRng::seed_from_u64(32);
    let pocket = generate_pocket(20, &mut rng);
    let library = generate_library(80, 20, &mut rng);
    let campaign = DockingCampaign::new(library, pocket, 16, 3);
    let hits_a = campaign.run().top_hits(10);
    let hits_b = campaign.run().top_hits(10);
    assert_eq!(hits_a, hits_b);
}

/// U2 — §VII-b: the adaptive navigation server holds its latency SLA
/// through rush hour at a fraction of the violations of the fixed server,
/// while recovering quality off-peak.
#[test]
fn u2_adaptive_navigation_beats_fixed_quality_under_load() {
    let run_day = |adaptive: bool| -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(33);
        let network = RoadNetwork::city_grid(12, &mut rng);
        let traffic = TrafficModel::weekday();
        let mut server = NavigationServer::new(network, traffic, 1);
        server.set_alternatives(8);
        let mut sla = Sla::upper_bound("latency", 0.5);
        let mut quality = 0.0;
        let mut served = 0u64;
        let mut time = 6.0 * 3600.0;
        while time < 10.0 * 3600.0 {
            let rate = 0.35 * rush_hour_profile(time, 6.0);
            let gap = exponential(&mut rng, rate);
            server.drain(gap);
            time += gap;
            let outcome = server.serve(time, &mut rng);
            sla.check(time, outcome.latency_s);
            quality += outcome.alternatives as f64;
            served += 1;
            if adaptive && served.is_multiple_of(20) {
                let recent = sla
                    .history()
                    .window_since(time - 300.0)
                    .iter()
                    .map(|s| s.value)
                    .fold(0.0, f64::max);
                let k = server.alternatives();
                if recent > 0.4 && k > 1 {
                    server.set_alternatives(k - 1);
                } else if recent < 0.15 && k < 8 {
                    server.set_alternatives(k + 1);
                }
            }
        }
        (sla.report().violation_rate(), quality / served as f64)
    };

    let (fixed_violations, fixed_quality) = run_day(false);
    let (adaptive_violations, adaptive_quality) = run_day(true);
    assert!(
        adaptive_violations < fixed_violations * 0.7,
        "adaptive {adaptive_violations:.3} vs fixed {fixed_violations:.3}"
    );
    // quality was genuinely traded, not free
    assert!(adaptive_quality < fixed_quality);
    assert!(adaptive_quality > 1.0, "some quality retained");
}

/// U2 infrastructure: routes reflect live traffic.
#[test]
fn u2_planner_reacts_to_congestion() {
    let mut rng = StdRng::seed_from_u64(34);
    let network = RoadNetwork::city_grid(14, &mut rng);
    let traffic = TrafficModel::weekday();
    use antarex::apps::nav::shortest_path;
    let origin = 0;
    let dest = network.len() - 1;
    let night = shortest_path(&network, &traffic, origin, dest, 3.0 * 3600.0, true).unwrap();
    let rush = shortest_path(&network, &traffic, origin, dest, 8.0 * 3600.0, true).unwrap();
    assert!(rush.travel_time_s > night.travel_time_s);
}

/// U1 + mARGOt data features: the best `poses` knob depends on molecule
/// size, and the feature-aware manager picks accordingly.
#[test]
fn u1_feature_aware_pose_selection() {
    use antarex::tuner::features::FeatureManager;
    use antarex::tuner::goal::{Constraint, Objective};
    use antarex::tuner::{Configuration, KnobValue, KnowledgeBase, OperatingPoint};

    let mut rng = StdRng::seed_from_u64(40);
    let pocket = generate_pocket(25, &mut rng);
    let library = generate_library(120, 24, &mut rng);

    // split the library by size; measure quality of few vs many poses
    // per size class against a high-pose reference
    let mut manager = FeatureManager::new(Objective::minimize("work"), 1);
    manager.add_constraint(Constraint::at_least("quality", 0.4));
    for (lo, hi) in [(0usize, 22usize), (22, usize::MAX)] {
        let class: Vec<Ligand> = library
            .iter()
            .filter(|l| l.size() >= lo && l.size() < hi)
            .cloned()
            .collect();
        let mean_size = class.iter().map(Ligand::size).sum::<usize>() as f64 / class.len() as f64;
        let reference = DockingCampaign::new(class.clone(), pocket.clone(), 96, 9).run();
        let mut kb = KnowledgeBase::new();
        for poses in [4usize, 16, 48] {
            let result = DockingCampaign::new(class.clone(), pocket.clone(), poses, 9).run();
            let mut config = Configuration::new();
            config.set("poses", KnobValue::Int(poses as i64));
            kb.push(OperatingPoint::new(
                config,
                [
                    ("work".to_string(), result.total_interactions as f64),
                    ("quality".to_string(), result.hit_overlap(&reference, 12)),
                ],
            ));
        }
        manager.add_cluster(vec![mean_size], kb);
    }

    // selection is input-dependent and feasible for both classes
    let (small_cfg, small_cluster) = manager.select(&[15.0]).expect("feasible");
    let (large_cfg, large_cluster) = manager.select(&[60.0]).expect("feasible");
    assert_ne!(small_cluster, large_cluster);
    assert!(small_cfg.get_int("poses").unwrap() >= 4);
    assert!(large_cfg.get_int("poses").unwrap() >= 4);
}

/// U2 recovery: after the rush subsides, the adaptive server climbs back
/// toward full quality (the "restore at night" half of the story).
#[test]
fn u2_quality_recovers_off_peak() {
    let mut rng = StdRng::seed_from_u64(55);
    let network = RoadNetwork::city_grid(10, &mut rng);
    let mut server = NavigationServer::new(network, TrafficModel::weekday(), 1);
    server.set_alternatives(8);
    let mut sla = Sla::upper_bound("latency", 0.5);

    let run_window = |server: &mut NavigationServer,
                      start_h: f64,
                      end_h: f64,
                      rate: f64,
                      rng: &mut StdRng,
                      sla: &mut Sla| {
        let mut time = start_h * 3600.0;
        let mut served = 0u64;
        while time < end_h * 3600.0 {
            let gap = exponential(rng, rate);
            server.drain(gap);
            time += gap;
            let outcome = server.serve(time, rng);
            sla.check(time, outcome.latency_s);
            served += 1;
            if served.is_multiple_of(10) {
                let recent = sla
                    .history()
                    .window_since(time - 300.0)
                    .iter()
                    .map(|s| s.value)
                    .fold(0.0, f64::max);
                let k = server.alternatives();
                if recent > 0.4 && k > 1 {
                    server.set_alternatives(k - 1);
                } else if recent < 0.15 && k < 8 {
                    server.set_alternatives(k + 1);
                }
            }
        }
    };

    // heavy window: the controller sheds quality
    run_window(&mut server, 8.0, 9.0, 2.5, &mut rng, &mut sla);
    let rush_quality = server.alternatives();
    assert!(
        rush_quality < 8,
        "rush must shed quality, at k={rush_quality}"
    );
    // quiet window: it climbs back
    run_window(&mut server, 22.0, 23.5, 0.1, &mut rng, &mut sla);
    let night_quality = server.alternatives();
    assert!(
        night_quality > rush_quality,
        "quality must recover off-peak: rush {rush_quality} -> night {night_quality}"
    );
}
