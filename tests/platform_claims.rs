//! Integration: the paper's quantitative claims hold on the simulated
//! platform (experiments C1–C5) — shapes, not absolute values.

use antarex::core::exascale::{amdahl_speedup, ExascaleProjection, EXAFLOPS};
use antarex::rtrm::governor::{run_with_governor, Governor, GovernorKind};
use antarex::sim::cooling::{ambient_temp_c, CoolingPlant, SUMMER_DAY, WINTER_DAY};
use antarex::sim::job::WorkUnit;
use antarex::sim::node::{Node, NodeSpec};
use antarex::sim::variability::ProcessVariation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// C1 — §I: heterogeneous efficiency ≈ 3× homogeneous
/// (paper: 7,032 vs 2,304 MFLOPS/W on the June 2015 Green500).
#[test]
fn c1_heterogeneous_is_about_three_times_homogeneous() {
    let work = WorkUnit::compute_bound(2e13);

    let mut homo = Node::nominal(NodeSpec::cineca_xeon(), 0);
    let homo_outcome = homo.execute(&work);
    let homo_eff = homo_outcome.mflops_per_watt(work.flops);

    let mut hetero = Node::nominal(NodeSpec::cineca_accelerated(), 1);
    let halves = work.split(2);
    let a = hetero.execute_offloaded(&halves[0], 0);
    let b = hetero.execute_offloaded(&halves[1], 1);
    let hetero_eff = work.flops / 1e6 / (a.energy_j + b.energy_j);

    let ratio = hetero_eff / homo_eff;
    assert!(
        (2.2..4.2).contains(&ratio),
        "heterogeneous/homogeneous efficiency ratio {ratio:.2} not ≈ 3x \
         (hetero {hetero_eff:.0}, homo {homo_eff:.0} MFLOPS/W)"
    );
}

/// C2 — §V: ≈15% energy variation across nominally identical components.
#[test]
fn c2_population_energy_spread_near_fifteen_percent() {
    let mut rng = StdRng::seed_from_u64(161);
    let work = WorkUnit::with_intensity(2e12, 4.0);
    let energies: Vec<f64> = (0..100)
        .map(|i| {
            let mut node = Node::with_variation(
                NodeSpec::cineca_xeon(),
                i,
                ProcessVariation::sample(&mut rng),
            );
            node.execute(&work).energy_j
        })
        .collect();
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = energies.iter().cloned().fold(0.0f64, f64::max);
    let spread = (max - min) / mean;
    assert!(
        (0.08..0.35).contains(&spread),
        "population energy spread {spread:.3}, expected near the paper's 15%"
    );
}

/// C3 — §V: the optimal operating point saves 18–50% node energy vs the
/// Linux governor, depending on the application profile.
#[test]
fn c3_optimal_operating_point_savings_band() {
    let profiles = [
        WorkUnit::memory_bound(3e11),
        WorkUnit::with_intensity(3e11, 1.0),
        WorkUnit::with_intensity(5e11, 3.0),
    ];
    let mut savings = Vec::new();
    for profile in &profiles {
        let work = vec![*profile; 6];
        let mut n1 = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let (_, e_linux) = run_with_governor(
            &mut n1,
            &mut Governor::new(GovernorKind::Performance),
            &work,
        );
        let mut n2 = Node::nominal(NodeSpec::cineca_xeon(), 1);
        let (_, e_opt) = run_with_governor(
            &mut n2,
            &mut Governor::new(GovernorKind::EnergyOptimal),
            &work,
        );
        savings.push(1.0 - e_opt / e_linux);
    }
    let max_saving = savings.iter().cloned().fold(0.0, f64::max);
    let min_saving = savings.iter().cloned().fold(1.0, f64::min);
    assert!(
        max_saving >= 0.30,
        "memory-bound saving should approach the top of the 18-50% band, got {savings:?}"
    );
    assert!(
        min_saving >= 0.0 && max_saving <= 0.60,
        "savings out of plausible range: {savings:?}"
    );
    // at least one mixed profile inside the paper's band
    assert!(
        savings.iter().any(|s| (0.18..=0.50).contains(s)),
        "no profile inside the 18-50% band: {savings:?}"
    );
}

/// C4 — §V: >10% PUE degradation winter → summer.
#[test]
fn c4_pue_seasonal_loss_exceeds_ten_percent() {
    let plant = CoolingPlant::european_datacenter();
    let winter = plant.pue(1e6, ambient_temp_c(WINTER_DAY));
    let summer = plant.pue(1e6, ambient_temp_c(SUMMER_DAY));
    let loss = (summer - winter) / winter;
    assert!(loss > 0.10, "seasonal PUE loss {loss:.3} <= 10%");
    assert!(loss < 0.40, "seasonal PUE loss {loss:.3} implausibly large");
}

/// C5 — §I: at 2015-era efficiency, an exaFLOPS machine misses the 20 MW
/// envelope by roughly two orders of magnitude; use-case scaling follows
/// Amdahl.
#[test]
fn c5_exascale_projection_gap() {
    // measure the simulated heterogeneous node
    let work = WorkUnit::compute_bound(1e13);
    let mut node = Node::nominal(NodeSpec::cineca_accelerated(), 0);
    let halves = work.split(2);
    let a = node.execute_offloaded(&halves[0], 0);
    let b = node.execute_offloaded(&halves[1], 1);
    let time = a.time_s.max(b.time_s);
    let gflops = work.flops / 1e9 / time;
    let power = (a.energy_j + b.energy_j) / time;

    let projection = ExascaleProjection::new(gflops, power, 1.25);
    assert!(!projection.fits_envelope());
    let gap = projection.efficiency_gap();
    assert!(
        (10.0..300.0).contains(&gap),
        "efficiency gap {gap:.0}x should be order(s) of magnitude"
    );
    let projected_mw = projection.projected_power_w(EXAFLOPS) / 1e6;
    assert!(projected_mw > 100.0, "projected {projected_mw:.0} MW");

    // the docking use case is embarrassingly parallel (tiny serial part):
    // it keeps scaling well toward exascale node counts
    let nodes = projection.nodes_needed(EXAFLOPS);
    let speedup = amdahl_speedup(1e-7, nodes);
    assert!(
        speedup > 0.5 * nodes,
        "docking-style scaling holds at {nodes:.0} nodes"
    );
}
