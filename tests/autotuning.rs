//! Integration: autotuning over *woven code* — the knob space includes
//! code transformations (unroll factor) and precision, measured on the
//! interpreter's cost model (experiments A1/A2 end-to-end shapes).

use antarex::ir::interp::{ExecEnv, Interp};
use antarex::ir::value::Value;
use antarex::ir::{parse_program, NodePath};
use antarex::precision::tuner::{PrecisionTuner, TunerOptions};
use antarex::tuner::dse::explore;
use antarex::tuner::goal::Objective;
use antarex::tuner::knob::Knob;
use antarex::tuner::search::bandit::Bandit;
use antarex::tuner::search::exhaustive::Exhaustive;
use antarex::tuner::space::{Configuration, DesignSpace};
use antarex::weaver::transform::unroll::unroll_by_factor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const KERNEL: &str = "double saxpy(double a[], double b[], int n) {
    double s = 0.0;
    for (int i = 0; i < 96; i++) { s += a[i] * 1.5 + b[i]; }
    return s;
}";

/// Cost of the kernel with a given unroll factor applied by the weaver.
fn measured_cost(unroll: u64) -> f64 {
    let mut program = parse_program(KERNEL).unwrap();
    if unroll > 1 {
        program
            .edit_function("saxpy", |f| {
                unroll_by_factor(&mut f.body, &NodePath::root(1), unroll).unwrap();
            })
            .unwrap();
    }
    let mut env = ExecEnv::new();
    Interp::new(program)
        .call(
            "saxpy",
            &[
                Value::from(vec![1.0; 96]),
                Value::from(vec![2.0; 96]),
                Value::Int(96),
            ],
            &mut env,
        )
        .unwrap();
    env.stats.cost as f64
}

#[test]
fn a1_tuning_the_unroll_knob_finds_a_real_winner() {
    let space = DesignSpace::new(vec![Knob::int("unroll", 1, 32, 1)]);
    let mut rng = StdRng::seed_from_u64(1);
    let report = explore(
        &space,
        Box::new(Exhaustive::new()),
        &Objective::minimize("cost"),
        64,
        &mut rng,
        |config: &Configuration| -> BTreeMap<String, f64> {
            let unroll = config.get_int("unroll").unwrap() as u64;
            [("cost".to_string(), measured_cost(unroll))].into()
        },
    );
    let best = report.best.unwrap();
    let best_unroll = best.get_int("unroll").unwrap();
    assert!(best_unroll > 1, "unrolling must pay off, got {best_unroll}");
    // measured monotone gain up to the full factor region
    assert!(measured_cost(best_unroll as u64) < measured_cost(1) * 0.9);
}

#[test]
fn a1_grey_box_space_converges_faster_than_black_box() {
    // grey-box: annotations restrict the unroll knob to powers of two —
    // 6 candidates instead of 32
    let black = DesignSpace::new(vec![Knob::int("unroll", 1, 32, 1)]);
    let grey = black.restrict("unroll", |v| {
        v.as_int().is_some_and(|i| i > 0 && (i & (i - 1)) == 0)
    });
    assert!(grey.size() < black.size() / 4);

    let evaluate = |config: &Configuration| -> BTreeMap<String, f64> {
        let unroll = config.get_int("unroll").unwrap() as u64;
        [("cost".to_string(), measured_cost(unroll))].into()
    };

    let budget = 8;
    let best_of = |report: &antarex::tuner::dse::DseReport| {
        report
            .knowledge
            .points()
            .iter()
            .filter_map(|p| p.metric("cost"))
            .fold(f64::INFINITY, f64::min)
    };
    // grey-box is deterministic (exhaustive over the shrunk space)
    let mut rng = StdRng::seed_from_u64(7);
    let grey_best = best_of(&explore(
        &grey,
        Box::new(Exhaustive::new()),
        &Objective::minimize("cost"),
        budget,
        &mut rng,
        evaluate,
    ));
    // black-box is stochastic: average its best over several seeds
    let mut black_sum = 0.0;
    let seeds = 5u64;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        black_sum += best_of(&explore(
            &black,
            Box::new(Bandit::default_ensemble()),
            &Objective::minimize("cost"),
            budget,
            &mut rng,
            evaluate,
        ));
    }
    let black_mean = black_sum / seeds as f64;
    assert!(
        grey_best <= black_mean * 1.02,
        "grey-box {grey_best} vs black-box mean {black_mean} at budget {budget}"
    );
}

#[test]
fn a2_precision_tuning_composes_with_the_pipeline() {
    let program = parse_program(KERNEL).unwrap();
    let inputs: Vec<Vec<Value>> = (0..4)
        .map(|k| {
            vec![
                Value::from((0..96).map(|i| 0.01 * (i + k) as f64).collect::<Vec<f64>>()),
                Value::from(vec![0.5; 96]),
                Value::Int(96),
            ]
        })
        .collect();
    let outcome = PrecisionTuner::new(program, "saxpy", inputs)
        .tune(&TunerOptions {
            error_budget: 1e-3,
            max_sweeps: 6,
        })
        .unwrap();
    assert!(outcome.max_rel_error <= 1e-3);
    assert!(outcome.energy_ratio < 0.9, "ratio {}", outcome.energy_ratio);
    // the tuned program still parses and prints
    let text = antarex::ir::printer::print_program(&outcome.program);
    assert!(antarex::ir::parse_program(&text).is_ok());
}

/// The paper's third knob kind: *code variants*. Three variants of the
/// same kernel are produced by weaver transforms, registered as a
/// categorical knob, and the tuner picks the cheapest by measurement.
#[test]
fn code_variant_knob_selects_the_best_transform() {
    use antarex::weaver::transform::tile::tile;
    use antarex::weaver::transform::unroll::unroll_by_factor;

    // build the variants
    let base = parse_program(KERNEL).unwrap();
    let mut unrolled = base.clone();
    unrolled
        .edit_function("saxpy", |f| {
            unroll_by_factor(&mut f.body, &NodePath::root(1), 8).unwrap();
        })
        .unwrap();
    let mut tiled = base.clone();
    tiled
        .edit_function("saxpy", |f| {
            tile(&mut f.body, &NodePath::root(1), 16).unwrap();
        })
        .unwrap();
    let variants: Vec<(&str, antarex::ir::Program)> =
        vec![("scalar", base), ("unroll8", unrolled), ("tile16", tiled)];

    let cost_of = |program: &antarex::ir::Program| -> f64 {
        let mut env = ExecEnv::new();
        Interp::new(program.clone())
            .call(
                "saxpy",
                &[
                    Value::from(vec![1.0; 96]),
                    Value::from(vec![2.0; 96]),
                    Value::Int(96),
                ],
                &mut env,
            )
            .unwrap();
        env.stats.cost as f64
    };

    let space = DesignSpace::new(vec![Knob::choice(
        "variant",
        variants.iter().map(|(n, _)| n.to_string()),
    )]);
    let mut rng = StdRng::seed_from_u64(3);
    let report = explore(
        &space,
        Box::new(Exhaustive::new()),
        &Objective::minimize("cost"),
        10,
        &mut rng,
        |config: &Configuration| -> BTreeMap<String, f64> {
            let name = config.get_choice("variant").unwrap();
            let program = &variants.iter().find(|(n, _)| *n == name).unwrap().1;
            [("cost".to_string(), cost_of(program))].into()
        },
    );
    let best = report.best.unwrap();
    assert_eq!(
        best.get_choice("variant"),
        Some("unroll8"),
        "unrolling sheds loop overhead; tiling alone adds a nest"
    );
    // and the variants all compute the same value (code-variant safety)
    let mut results = Vec::new();
    for (_, program) in &variants {
        let out = Interp::new(program.clone())
            .call(
                "saxpy",
                &[
                    Value::from(vec![1.0; 96]),
                    Value::from(vec![2.0; 96]),
                    Value::Int(96),
                ],
                &mut ExecEnv::new(),
            )
            .unwrap();
        results.push(out);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}
