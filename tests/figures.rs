//! Integration: the paper's three aspect listings (Figs. 2–4), verbatim,
//! woven and executed end to end (experiments F2, F3, F4).

use antarex::dsl::figures::{
    FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
};
use antarex::dsl::interp::Weaver;
use antarex::dsl::{parse_aspects, DslValue};
use antarex::ir::interp::{ExecEnv, Interp};
use antarex::ir::value::Value;
use antarex::ir::{parse_program, printer::print_program};
use std::cell::RefCell;
use std::rc::Rc;

/// F2: the ProfileArguments aspect gathers "information about argument
/// values and their frequency" as the paper describes.
#[test]
fn f2_profile_arguments_collects_value_frequencies() {
    let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
    let mut program = parse_program(
        "double kernel(double a[], int size) { return size; }
         void sweep(double buf[]) {
             for (int r = 0; r < 5; r++) { kernel(buf, 64); }
             kernel(buf, 128);
         }",
    )
    .unwrap();
    Weaver::new(lib)
        .weave(
            &mut program,
            "ProfileArguments",
            &[DslValue::from("kernel")],
        )
        .unwrap();

    let mut interp = Interp::new(program);
    // histogram of the `size` argument, exactly what the aspect motivates
    let histogram: Rc<RefCell<std::collections::BTreeMap<i64, u32>>> =
        Rc::new(RefCell::new(std::collections::BTreeMap::new()));
    let sink = Rc::clone(&histogram);
    interp.register_host(
        "profile_args",
        Box::new(move |args| {
            // args: name, location, actual values (array, size)
            if let Some(Value::Int(size)) = args.last() {
                *sink.borrow_mut().entry(*size).or_insert(0) += 1;
            }
            Ok(Value::Unit)
        }),
    );
    interp
        .call("sweep", &[Value::from(vec![1.0; 4])], &mut ExecEnv::new())
        .unwrap();
    let histogram = histogram.borrow();
    assert_eq!(histogram.get(&64), Some(&5));
    assert_eq!(histogram.get(&128), Some(&1));
}

/// F3: unrolling eligibility exactly follows the aspect's condition
/// (`isInnermost && numIter <= threshold`) and the speedup is measurable.
#[test]
fn f3_unroll_speedup_vs_threshold() {
    let source = "int work() {
        int s = 0;
        for (int i = 0; i < 4; i++) { s += i; }
        for (int i = 0; i < 16; i++) { s += i * 2; }
        for (int i = 0; i < 64; i++) { s += i * 3; }
        return s;
    }";
    let expected: i64 = (0..4).sum::<i64>()
        + (0..16).map(|i| i * 2).sum::<i64>()
        + (0..64).map(|i| i * 3).sum::<i64>();

    let mut previous_cost = u64::MAX;
    for threshold in [0i64, 4, 16, 64] {
        let lib = parse_aspects(FIG3_UNROLL_INNERMOST_LOOPS).unwrap();
        let mut program = parse_program(source).unwrap();
        Weaver::new(lib)
            .weave(
                &mut program,
                "UnrollInnermostLoops",
                &[DslValue::FuncRef("work".into()), DslValue::Int(threshold)],
            )
            .unwrap();
        let remaining = antarex::ir::analysis::loops(&program.function("work").unwrap().body).len();
        let expected_remaining = match threshold {
            0 => 3,
            4 => 2,
            16 => 1,
            _ => 0,
        };
        assert_eq!(remaining, expected_remaining, "threshold {threshold}");

        let mut env = ExecEnv::new();
        let out = Interp::new(program).call("work", &[], &mut env).unwrap();
        assert_eq!(
            out,
            Value::Int(expected),
            "semantics at threshold {threshold}"
        );
        assert!(
            env.stats.cost <= previous_cost,
            "cost must not grow as the threshold rises"
        );
        previous_cost = env.stats.cost;
    }
}

/// F4: the dynamic-weaving aspect specializes only in `[lowT, highT]`,
/// reuses versions, and the specialized call is cheaper than the generic.
#[test]
fn f4_dynamic_specialization_range_and_reuse() {
    let lib = parse_aspects(&format!(
        "{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}"
    ))
    .unwrap();
    let mut program = parse_program(
        "double kernel(double a[], int size) {
             double s = 0.0;
             for (int i = 0; i < size; i++) { s += a[i]; }
             return s;
         }
         double run(double buf[], int n) { return kernel(buf, n); }",
    )
    .unwrap();
    let mut weaver = Weaver::new(lib);
    weaver
        .weave(
            &mut program,
            "SpecializeKernel",
            &[DslValue::Int(8), DslValue::Int(32)],
        )
        .unwrap();
    let store = weaver.store();
    let mut interp = Interp::new(program);
    interp.set_dispatcher(Box::new(weaver.into_dynamic()));

    // below, inside (twice), above the range
    for (n, expect_specialized) in [(4usize, false), (16, true), (16, true), (64, false)] {
        let buf = Value::from(vec![1.0; n]);
        let out = interp
            .call("run", &[buf, Value::Int(n as i64)], &mut ExecEnv::new())
            .unwrap();
        assert_eq!(out, Value::Float(n as f64));
        let name = format!("kernel__size_{n}");
        assert_eq!(
            interp.program().contains(&name),
            expect_specialized,
            "size {n}"
        );
    }
    assert_eq!(store.borrow().version_count("kernel"), 1);
    let (hits, _) = store.borrow().stats("kernel");
    assert!(hits >= 2, "second in-range call must hit the cache");
}

/// The woven program is still valid source: print → parse → print is a
/// fixed point.
#[test]
fn woven_source_printing_is_stable() {
    let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
    let mut program = parse_program(
        "double kernel(double a[], int n) { return a[0] + n; }
         void app(double buf[]) { kernel(buf, 10); }",
    )
    .unwrap();
    Weaver::new(lib)
        .weave(
            &mut program,
            "ProfileArguments",
            &[DslValue::from("kernel")],
        )
        .unwrap();
    let once = print_program(&program);
    let twice = print_program(&parse_program(&once).unwrap());
    assert_eq!(once, twice);
}

/// Transformation sequences (the LARA strength the paper cites): tile a
/// dynamic-free loop, then unroll the innermost intra-tile loop by the
/// tile factor — composed purely in the DSL.
#[test]
fn transformation_sequence_tile_then_unroll() {
    let lib = parse_aspects(
        "aspectdef TileAndUnroll
           input $func, size end
           select $func.loop{type=='for'} end
           apply
             do LoopTile(size);
           end
           condition $loop.numIter >= 16 end
           select $func.loop{type=='for'} end
           apply
             do LoopUnroll('partial', size);
           end
           condition !$loop.isInnermost == false && $loop.numIter >= 16 end
         end",
    )
    .unwrap();
    let mut program =
        parse_program("int f() { int s = 0; for (int i = 0; i < 64; i++) { s += i; } return s; }")
            .unwrap();
    let result = Weaver::new(lib).weave(
        &mut program,
        "TileAndUnroll",
        &[
            antarex::dsl::DslValue::FuncRef("f".into()),
            antarex::dsl::DslValue::Int(8),
        ],
    );
    // the second apply may not match (inner loop bounds are symbolic),
    // but the sequence must weave without error and preserve semantics
    result.unwrap();
    let mut env = ExecEnv::new();
    let out = Interp::new(program).call("f", &[], &mut env).unwrap();
    assert_eq!(out, Value::Int((0..64).sum()));
}
