//! Use Case 2 (paper §VII-b): the self-adaptive navigation system.
//!
//! A server-side route planner answers requests over a synthetic city
//! under a rush-hour load profile. Two configurations face the same day:
//!
//! * **fixed** — always computes 8 alternative routes (best quality), and
//!   drowns in queueing delay at rush hour;
//! * **adaptive (ANTAREX)** — an mARGOt-style manager holds a 0.5 s
//!   latency SLA by dialling the alternatives knob down under load and
//!   back up when the roads clear.
//!
//! Run with: `cargo run --example navigation`

use antarex::apps::nav::{NavigationServer, RoadNetwork, TrafficModel};
use antarex::monitor::Sla;
use antarex::sim::workload::{exponential, rush_hour_profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

const SLA_LATENCY_S: f64 = 0.5;

fn simulate_day(adaptive: bool, seed: u64) -> (Sla, f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let network = RoadNetwork::city_grid(14, &mut rng);
    let traffic = TrafficModel::weekday().with_incidents(12, network.len(), &mut rng);
    let mut server = NavigationServer::new(network, traffic, 1);
    server.set_alternatives(8);

    let mut sla = Sla::upper_bound("latency", SLA_LATENCY_S);
    let mut quality_sum = 0.0;
    let mut served = 0u64;
    let mut time = 6.0 * 3600.0; // start at 06:00
    let base_rate = 0.3; // requests/s at night
    while time < 12.0 * 3600.0 {
        let rate = base_rate * rush_hour_profile(time, 6.0);
        let gap = exponential(&mut rng, rate);
        server.drain(gap);
        time += gap;
        let outcome = server.serve(time, &mut rng);
        sla.check(time, outcome.latency_s);
        quality_sum += outcome.alternatives as f64;
        served += 1;

        if adaptive && served.is_multiple_of(25) {
            // the CADA loop: compare recent latency to the SLA and move
            // the knob one step (decide + act)
            let recent = sla
                .history()
                .window_since(time - 300.0)
                .iter()
                .map(|s| s.value)
                .fold(0.0, f64::max);
            let k = server.alternatives();
            if recent > SLA_LATENCY_S * 0.8 && k > 1 {
                server.set_alternatives(k - 1);
            } else if recent < SLA_LATENCY_S * 0.3 && k < 8 {
                server.set_alternatives(k + 1);
            }
        }
    }
    (sla, quality_sum / served as f64, served)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== Use Case 2: self-adaptive navigation under rush-hour load ===\n");
    println!("one morning, 06:00-12:00, rush peak 6x at 08:00");
    println!("SLA: request latency <= {SLA_LATENCY_S} s\n");
    println!(
        "{:<10} {:>9} {:>12} {:>16} {:>14}",
        "policy", "requests", "violations", "violation rate", "mean quality"
    );
    for (label, adaptive) in [("fixed", false), ("adaptive", true)] {
        let (sla, mean_quality, served) = simulate_day(adaptive, 2016);
        let report = sla.report();
        println!(
            "{label:<10} {served:>9} {:>12} {:>15.1}% {:>14.2}",
            report.violations,
            100.0 * report.violation_rate(),
            mean_quality
        );
    }
    println!("\nThe adaptive server sheds route alternatives during rush hour to");
    println!("hold the latency SLA, then restores full quality at night — the");
    println!("paper's server-side/client-side balancing, enacted by the ANTAREX");
    println!("collect-analyse-decide-act loop.");
    Ok(())
}
