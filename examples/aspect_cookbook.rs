//! A cookbook of every weaver action, driven entirely from the DSL.
//!
//! The ANTAREX DSL separates *what to change* (the aspect) from *the code
//! being changed* (mini-C). This example walks one kernel through the full
//! action vocabulary — `insert`, `do LoopTile`, `do LoopUnroll`,
//! `do Inline`, and the Fig. 4 dynamic `Specialize`/`AddVersion` pair —
//! printing the woven source after each step.
//!
//! Run with: `cargo run --example aspect_cookbook`

use antarex::core::flow::ToolFlow;
use antarex::dsl::DslValue;
use antarex::ir::value::Value;
use std::error::Error;

const APP: &str = "double weight(double x) { return x * 0.5 + 1.0; }
double kernel(double a[], int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s += weight(a[i]); }
    return s;
}
double run(double buf[], int n) { return kernel(buf, n); }";

const ASPECTS: &str = "
aspectdef Instrument
  input funcName end
  select fCall end
  apply
    insert before %{probe('[[funcName]]', [[$fCall.argList]]);}%;
  end
  condition $fCall.name == funcName end
end

aspectdef InlineWeights
  select fCall{'weight'} end
  apply
    do Inline();
  end
end

aspectdef TileFixedLoops
  input $func, size end
  select $func.loop{type=='for'} end
  apply
    do LoopTile(size);
  end
  condition $loop.numIter >= 16 end
end

aspectdef UnrollInnermostLoops
  input $func, threshold end
  select $func.loop{type=='for'} end
  apply
    do LoopUnroll('full');
  end
  condition
    $loop.isInnermost && $loop.numIter <= threshold
  end
end

aspectdef SpecializeKernel
  input lowT, highT end
  call spCall: PrepareSpecialize('kernel','size');
  select fCall{'kernel'}.arg{'size'} end
  apply dynamic
    call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);
    call UnrollInnermostLoops(spOut.$func, $arg.runtimeValue);
    call AddVersion(spCall, spOut.$func, $arg.runtimeValue);
  end
  condition
    $arg.runtimeValue >= lowT && $arg.runtimeValue <= highT
  end
end
";

fn main() -> Result<(), Box<dyn Error>> {
    let mut flow = ToolFlow::new(APP, ASPECTS)?;

    println!("=== 1. insert: Fig. 2-style instrumentation ===");
    flow.weave("Instrument", &[DslValue::from("kernel")])?;
    show(&flow, "run");

    println!("=== 2. Inline: expand the weight() helper into the loop ===");
    flow.weave("InlineWeights", &[])?;
    show(&flow, "kernel");

    println!("=== 3. dynamic specialization plan (Fig. 4) ===");
    flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])?;
    println!(
        "captured {} dynamic plan(s); versions table prepared for `kernel`\n",
        flow.weaver().dynamic_plans().len()
    );

    println!("=== 4. runtime: dynamic weave on first in-range call ===");
    let mut runtime = flow.deploy();
    runtime.register_host("probe", Box::new(|_| Ok(Value::Unit)));
    let buf = Value::from(vec![0.5; 32]);
    let (value, stats) = runtime.call("run", &[buf.clone(), Value::Int(32)])?;
    println!(
        "first call:  value={value} cost={} loop_iters={}",
        stats.cost, stats.loop_iters
    );
    let (_, stats) = runtime.call("run", &[buf, Value::Int(32)])?;
    println!(
        "second call: cached specialized version, cost={} loop_iters={}",
        stats.cost, stats.loop_iters
    );
    println!(
        "\nfinal program functions: {:?}",
        runtime.program().function_names()
    );
    Ok(())
}

fn show(flow: &ToolFlow, function: &str) {
    let program = flow.program();
    if let Some(f) = program.function(function) {
        println!("{}", antarex::ir::printer::print_function(f));
    }
}
