//! Quickstart: the full ANTAREX tool flow (paper Fig. 1) in one file.
//!
//! 1. Write the *functional* code in mini-C.
//! 2. Write the *extra-functional* strategy in the ANTAREX DSL — here the
//!    paper's own Fig. 2 (profiling) and Fig. 4 + Fig. 3 (dynamic
//!    specialization + unrolling) aspects, verbatim.
//! 3. Weave at design time, deploy, and watch the runtime adapt: the
//!    first call with an in-range `size` synthesizes a specialized,
//!    fully-unrolled kernel version; later calls ride the version cache.
//!
//! Run with: `cargo run --example quickstart`

use antarex::core::flow::ToolFlow;
use antarex::dsl::figures::{
    FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
};
use antarex::dsl::DslValue;
use antarex::ir::value::Value;
use std::cell::RefCell;
use std::error::Error;
use std::rc::Rc;

const APPLICATION: &str = "double kernel(double a[], int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
    return s;
}
double run(double buf[], int n) {
    return kernel(buf, n);
}";

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== ANTAREX quickstart: the Fig. 1 tool flow ===\n");

    // -- design time ------------------------------------------------------
    let aspects = format!(
        "{FIG2_PROFILE_ARGUMENTS}\n{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}"
    );
    let mut flow = ToolFlow::new(APPLICATION, &aspects)?;

    // weave the paper's Fig. 2 profiling aspect (static)
    flow.weave("ProfileArguments", &[DslValue::from("kernel")])?;
    // weave the paper's Fig. 4 specialization aspect (dynamic: captured)
    flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])?;

    println!("--- woven source (source-to-source output) ---");
    println!("{}", flow.emit_source());

    // -- runtime ----------------------------------------------------------
    let mut runtime = flow.deploy();
    let profile_log = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&profile_log);
    runtime.register_host(
        "profile_args",
        Box::new(move |args| {
            sink.borrow_mut()
                .push(format!("{:?}", &args[..2.min(args.len())]));
            Ok(Value::Unit)
        }),
    );

    println!("--- runtime: dynamic specialization in action ---");
    for (call, size) in [(1, 16usize), (2, 16), (3, 16), (4, 128)].into_iter() {
        let buf = Value::from(vec![0.5; size]);
        let (value, stats) = runtime.call("run", &[buf, Value::Int(size as i64)])?;
        println!(
            "call {call}: size={size:<4} result={value}  cost={:<6} loop_iters={:<3} versions={}",
            stats.cost,
            stats.loop_iters,
            runtime.version_count("kernel"),
        );
    }
    let (hits, misses) = runtime.dispatch_stats("kernel");
    println!("\nversion-cache: {hits} hits / {misses} misses");
    println!(
        "profiling hook fired {} times (Fig. 2 instrumentation)",
        profile_log.borrow().len()
    );
    println!(
        "program now holds: {:?}",
        runtime.program().function_names()
    );
    println!("\nsize=16 was specialized + fully unrolled (in [lowT=4, highT=64]);");
    println!("size=128 stayed generic (out of range) — exactly the paper's Fig. 4.");
    Ok(())
}
