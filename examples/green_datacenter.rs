//! The runtime resource & power manager at work (paper §V).
//!
//! Reproduces the three physical effects the paper builds its RTRM case
//! on, live on the simulated platform:
//!
//! 1. per-application **optimal operating points** vs the Linux
//!    governors (the 18–50% energy claim),
//! 2. **manufacturing variability** across nominally identical nodes
//!    (the ~15% claim),
//! 3. **seasonal cooling efficiency** (the >10% PUE claim), including the
//!    MS3-style "do less when it's too hot" admission policy.
//!
//! Run with: `cargo run --example green_datacenter`

use antarex::rtrm::governor::{run_with_governor, Governor, GovernorKind};
use antarex::rtrm::thermal_ctrl::Ms3Admission;
use antarex::sim::cooling::{ambient_temp_c, CoolingPlant, SUMMER_DAY, WINTER_DAY};
use antarex::sim::job::WorkUnit;
use antarex::sim::node::{Node, NodeSpec};
use antarex::sim::variability::ProcessVariation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== The ANTAREX runtime resource & power manager ===\n");

    // --- 1. governors vs the optimal operating point ---------------------
    println!("--- DVFS governors on three application profiles ---");
    let profiles = [
        ("memory-bound", vec![WorkUnit::memory_bound(2e11); 6]),
        ("mixed", vec![WorkUnit::with_intensity(5e11, 2.0); 6]),
        ("compute-bound", vec![WorkUnit::compute_bound(1e12); 6]),
    ];
    println!(
        "{:<14} {:>13} {:>13} {:>13} {:>16}",
        "profile", "performance", "ondemand", "optimal", "saving vs perf"
    );
    for (label, work) in &profiles {
        let mut energies = Vec::new();
        for kind in [
            GovernorKind::Performance,
            GovernorKind::Ondemand,
            GovernorKind::EnergyOptimal,
        ] {
            let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
            let (_, energy) = run_with_governor(&mut node, &mut Governor::new(kind), work);
            energies.push(energy);
        }
        println!(
            "{label:<14} {:>11.1} kJ {:>11.1} kJ {:>11.1} kJ {:>15.1}%",
            energies[0] / 1e3,
            energies[1] / 1e3,
            energies[2] / 1e3,
            100.0 * (1.0 - energies[2] / energies[0])
        );
    }

    // --- 2. manufacturing variability ------------------------------------
    println!("\n--- the same job on 24 'identical' nodes ---");
    let mut rng = StdRng::seed_from_u64(1);
    let work = WorkUnit::with_intensity(2e12, 4.0);
    let energies: Vec<f64> = (0..24)
        .map(|i| {
            let mut node = Node::with_variation(
                NodeSpec::cineca_xeon(),
                i,
                ProcessVariation::sample(&mut rng),
            );
            node.execute(&work).energy_j
        })
        .collect();
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = energies.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "energy: min {:.1} kJ / mean {:.1} kJ / max {:.1} kJ  -> spread {:.0}%",
        min / 1e3,
        mean / 1e3,
        max / 1e3,
        100.0 * (max - min) / mean
    );

    // --- 3. seasons, PUE and MS3 admission --------------------------------
    println!("\n--- cooling efficiency across the year ---");
    let plant = CoolingPlant::european_datacenter();
    let ms3 = Ms3Admission::mediterranean();
    println!(
        "{:<10} {:>10} {:>8} {:>18}",
        "day", "ambient", "PUE", "MS3 admitted load"
    );
    for (label, day) in [
        ("winter", WINTER_DAY),
        ("spring", 105),
        ("summer", SUMMER_DAY),
    ] {
        let ambient = ambient_temp_c(day);
        println!(
            "{label:<10} {ambient:>8.1} C {:>8.3} {:>17.0}%",
            plant.pue(1e6, ambient),
            100.0 * ms3.admitted_fraction(ambient)
        );
    }
    let winter = plant.pue(1e6, ambient_temp_c(WINTER_DAY));
    let summer = plant.pue(1e6, ambient_temp_c(SUMMER_DAY));
    println!(
        "\nwinter -> summer PUE degradation: {:.1}% (paper: > 10%)",
        100.0 * (summer - winter) / winter
    );
    Ok(())
}
