//! Precision autotuning (paper §IV): trade arithmetic precision for
//! energy under an output-quality budget.
//!
//! The interpreter quantizes every store to a variable's declared mantissa
//! width and charges FP energy ∝ (bits/52)² per flop, so lowering a
//! declaration from `double` to `float10` has a measurable energy effect
//! and a measurable quality effect. The tuner profiles the parameters'
//! dynamic ranges, then greedily lowers each variable as far as the error
//! budget allows.
//!
//! Run with: `cargo run --example precision_tuning`

use antarex::ir::parse_program;
use antarex::ir::value::Value;
use antarex::precision::profile::RangeProfile;
use antarex::precision::tuner::{PrecisionTuner, TunerOptions};
use std::error::Error;

const KERNEL: &str = "double blend(double signal[], double weights[], int n) {
    double acc = 0.0;
    double norm = 0.0;
    for (int i = 0; i < n; i++) {
        acc += signal[i] * weights[i];
        norm += weights[i];
    }
    return acc / norm;
}";

fn main() -> Result<(), Box<dyn Error>> {
    println!("=== precision autotuning on a weighted-blend kernel ===\n");
    let program = parse_program(KERNEL)?;

    // a representative input set: smooth signals, normalized weights
    let inputs: Vec<Vec<Value>> = (1..=6)
        .map(|k| {
            let signal: Vec<f64> = (0..48)
                .map(|i| (0.1 * (i + k) as f64).sin() * 20.0 + 25.0)
                .collect();
            let weights: Vec<f64> = (0..48).map(|i| 1.0 / (1.0 + i as f64)).collect();
            vec![Value::from(signal), Value::from(weights), Value::Int(48)]
        })
        .collect();

    // dynamic-range profiling (the paper's "data acquired at runtime")
    let profile = RangeProfile::of(program.function("blend").unwrap(), &inputs);
    println!("--- parameter dynamic ranges ---");
    for param in profile.tuning_order() {
        let range = profile.range(param).unwrap();
        println!(
            "{param:<10} magnitude [{:.3}, {:.1}]  dynamic range {:.1} bits",
            range.min_magnitude,
            range.max_magnitude,
            range.dynamic_range_bits()
        );
    }

    println!("\n--- greedy mantissa-width lowering per error budget ---");
    println!(
        "{:>10} {:>14} {:>14}   per-variable bits",
        "budget", "energy ratio", "max rel err"
    );
    let tuner = PrecisionTuner::new(program, "blend", inputs);
    for budget in [1e-10, 1e-6, 1e-3, 1e-1] {
        let outcome = tuner.tune(&TunerOptions {
            error_budget: budget,
            max_sweeps: 8,
        })?;
        let bits: Vec<String> = outcome
            .assignment
            .iter()
            .map(|(name, bits)| format!("{name}={bits}"))
            .collect();
        println!(
            "{budget:>10.0e} {:>14.3} {:>14.2e}   {}",
            outcome.energy_ratio,
            outcome.max_rel_error,
            bits.join(" ")
        );
    }
    println!("\nlower budgets keep full precision; looser budgets shed most of the");
    println!("FP energy — the power/quality trade-off the paper's §IV targets.");
    Ok(())
}
