//! Use Case 1 (paper §VII-a): computer-accelerated drug discovery.
//!
//! A synthetic LiGen-style screening campaign runs on a simulated
//! CINECA-like heterogeneous cluster. The example shows the two ANTAREX
//! levers for this use case:
//!
//! 1. **Dynamic load balancing / task placement** — the paper's stated
//!    challenge: per-ligand cost is wildly imbalanced, so static
//!    partitioning wastes the cluster; self-scheduling and
//!    heterogeneity-aware dispatch recover it.
//! 2. **Application autotuning** — the `poses` knob trades screening
//!    quality for throughput; a design-time DSE builds the knowledge base
//!    and the mARGOt-style manager picks the best point under a quality
//!    SLA.
//!
//! Run with: `cargo run --example drug_discovery`

use antarex::apps::docking::{generate_library, generate_pocket, DockingCampaign};
use antarex::rtrm::dispatch::{run_task_pool, DispatchStrategy};
use antarex::sim::node::{Node, NodeSpec};
use antarex::tuner::goal::{Constraint, Objective};
use antarex::tuner::{AppManager, Configuration, KnobValue, KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    println!("=== Use Case 1: drug discovery on a heterogeneous cluster ===\n");

    // a screening library with realistic size imbalance
    let pocket = generate_pocket(30, &mut rng);
    let mut library = generate_library(600, 24, &mut rng);
    // catalogs are sorted by molecular weight: the worst case for static
    // partitioning
    library.sort_by_key(antarex::apps::docking::Ligand::size);
    // production screening samples poses exhaustively; the quality sweep
    // below uses reduced settings on the real scorer
    let campaign = DockingCampaign::new(library.clone(), pocket.clone(), 20_000, 7);
    let tasks = campaign.as_tasks();

    // --- dispatch strategies on 4 accelerated + 4 CPU nodes -------------
    println!(
        "--- task placement ({} ligands, 12 devices) ---",
        tasks.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "strategy", "makespan [s]", "energy [kJ]", "imbalance"
    );
    for strategy in DispatchStrategy::all() {
        let mut nodes: Vec<Node> = (0..8)
            .map(|i| {
                if i < 4 {
                    Node::nominal(NodeSpec::cineca_accelerated(), i)
                } else {
                    Node::nominal(NodeSpec::cineca_xeon(), i)
                }
            })
            .collect();
        let outcome = run_task_pool(&mut nodes, &tasks, strategy);
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>10.2}",
            strategy.name(),
            outcome.makespan_s,
            outcome.energy_j / 1e3,
            outcome.imbalance()
        );
    }

    // --- the poses knob: quality vs throughput ---------------------------
    println!("\n--- autotuning the `poses` knob (quality vs screening time) ---");
    let reference = DockingCampaign::new(library.clone(), pocket.clone(), 64, 7).run();
    let mut kb = KnowledgeBase::new();
    println!(
        "{:>6} {:>14} {:>12}",
        "poses", "interactions", "hit overlap"
    );
    for poses in [2usize, 4, 8, 16, 32, 64] {
        let result = DockingCampaign::new(library.clone(), pocket.clone(), poses, 7).run();
        let overlap = result.hit_overlap(&reference, 20);
        println!(
            "{poses:>6} {:>14} {:>12.2}",
            result.total_interactions, overlap
        );
        let mut config = Configuration::new();
        config.set("poses", KnobValue::Int(poses as i64));
        kb.push(OperatingPoint::new(
            config,
            [
                ("work".to_string(), result.total_interactions as f64),
                ("quality".to_string(), overlap),
            ],
        ));
    }

    // the mARGOt-style manager: cheapest point that keeps >= 70% of hits
    let mut manager = AppManager::new(kb, Objective::minimize("work"));
    manager.add_constraint(Constraint::at_least("quality", 0.7));
    let chosen = manager.select().expect("a feasible operating point exists");
    println!(
        "\nANTAREX manager picks poses = {} (cheapest point with >= 70% hit overlap)",
        chosen.get_int("poses").unwrap()
    );
    Ok(())
}
