//! # antarex — umbrella crate
//!
//! A from-scratch Rust reproduction of the system described in
//! *"AutoTuning and Adaptivity appRoach for Energy efficient eXascale HPC
//! systems: the ANTAREX Approach"* (Silvano et al., DATE 2016).
//!
//! This crate re-exports the whole workspace under one namespace and
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). Start with:
//!
//! * [`dsl`] — the LARA-dialect aspect language (the paper's Figs. 2–4
//!   parse and run verbatim; see [`dsl::figures`]);
//! * [`core`] — the Fig. 1 tool flow: weave → deploy → adapt;
//! * [`tuner`] — the grey-box application autotuner;
//! * [`sim`] + [`rtrm`] — the simulated heterogeneous platform and its
//!   runtime resource/power manager;
//! * [`apps`] — the two driving use cases (drug discovery, navigation);
//! * [`serve`] — the multi-tenant autotuning service (sharded sessions,
//!   parallel evaluation, memoized design points);
//! * [`obs`] — the deterministic tracing + metrics plane the serving
//!   stack reports through (worker-invariant spans, log-bucketed
//!   histograms, Prometheus-style exposition, SLO burn rates).
//!
//! ```
//! use antarex::core::flow::ToolFlow;
//! use antarex::dsl::figures::FIG3_UNROLL_INNERMOST_LOOPS;
//! use antarex::dsl::DslValue;
//!
//! # fn main() -> Result<(), antarex::core::FlowError> {
//! let mut flow = ToolFlow::new(
//!     antarex::core::scenario::SUMSQ_KERNEL,
//!     FIG3_UNROLL_INNERMOST_LOOPS,
//! )?;
//! flow.weave(
//!     "UnrollInnermostLoops",
//!     &[DslValue::FuncRef("sumsq16".into()), DslValue::Int(32)],
//! )?;
//! assert!(!flow.emit_source().contains("for ("));
//! # Ok(())
//! # }
//! ```

pub use antarex_apps as apps;
pub use antarex_core as core;
pub use antarex_dsl as dsl;
pub use antarex_ir as ir;
pub use antarex_monitor as monitor;
pub use antarex_obs as obs;
pub use antarex_precision as precision;
pub use antarex_rtrm as rtrm;
pub use antarex_serve as serve;
pub use antarex_sim as sim;
pub use antarex_tuner as tuner;
pub use antarex_weaver as weaver;
