//! Per-chip manufacturing (process) variability.
//!
//! Paper §V: "different instances of the same nominal component execute
//! the same application with 15% of variation in the energy-consumption"
//! (citing the Eurora characterization). Variability enters through two
//! correlated lognormal factors: the leakage factor (slow/leaky vs fast/
//! tight silicon) and an efficiency factor on dynamic power. Parameters
//! are calibrated so a population of nominal nodes running the same job
//! shows an energy spread of roughly 15% (validated by experiment C2).

use rand::Rng;

/// The process "corner" of one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Multiplier on leakage power (lognormal around 1.0).
    pub leakage_factor: f64,
    /// Multiplier on effective capacitance / dynamic power.
    pub dynamic_factor: f64,
    /// Multiplier on achievable frequency (fast silicon clocks slightly
    /// higher at the same voltage; we use it for efficiency accounting,
    /// not overclocking).
    pub frequency_factor: f64,
}

impl ProcessVariation {
    /// The nominal (typical-typical) corner.
    pub fn nominal() -> Self {
        ProcessVariation {
            leakage_factor: 1.0,
            dynamic_factor: 1.0,
            frequency_factor: 1.0,
        }
    }

    /// Samples a chip from the population.
    ///
    /// Leakage is lognormal with σ ≈ 0.30 (leakage varies wildly between
    /// dies), dynamic power lognormal with σ ≈ 0.05, and the two are
    /// anti-correlated with frequency capability: leaky chips are fast.
    pub fn sample(rng: &mut impl Rng) -> Self {
        let z_leak = gaussian(rng);
        let z_dyn = gaussian(rng);
        let leakage_factor = (0.30 * z_leak - 0.045).exp();
        let dynamic_factor = (0.05 * z_dyn).exp();
        // fast silicon leaks more: positive correlation, small magnitude
        let frequency_factor = 1.0 + 0.02 * z_leak;
        ProcessVariation {
            leakage_factor,
            dynamic_factor,
            frequency_factor: frequency_factor.clamp(0.9, 1.1),
        }
    }

    /// Samples a deterministic population of `count` chips: chip `i`
    /// always gets the same corner for a given `seed`, independent of
    /// how (or on how many threads) the rest of the population is
    /// consumed. Cluster campaigns use this so per-node variability
    /// never depends on iteration order.
    pub fn population(seed: u64, count: usize) -> Vec<Self> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        (0..count)
            .map(|i| {
                // splitmix64 over (seed, index) gives an independent
                // stream per chip
                let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                Self::sample(&mut StdRng::seed_from_u64(z))
            })
            .collect()
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Standard normal draw via Box–Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_is_identity() {
        let v = ProcessVariation::nominal();
        assert_eq!(v.leakage_factor, 1.0);
        assert_eq!(v.dynamic_factor, 1.0);
    }

    #[test]
    fn population_statistics() {
        let mut rng = StdRng::seed_from_u64(1234);
        let samples: Vec<ProcessVariation> = (0..2000)
            .map(|_| ProcessVariation::sample(&mut rng))
            .collect();
        let mean_leak: f64 =
            samples.iter().map(|v| v.leakage_factor).sum::<f64>() / samples.len() as f64;
        assert!((mean_leak - 1.0).abs() < 0.05, "mean leakage {mean_leak}");
        let min = samples
            .iter()
            .map(|v| v.leakage_factor)
            .fold(f64::INFINITY, f64::min);
        let max = samples.iter().map(|v| v.leakage_factor).fold(0.0, f64::max);
        assert!(min < 0.7 && max > 1.5, "leakage spread [{min}, {max}]");
        // dynamic factor is tighter
        let dmin = samples
            .iter()
            .map(|v| v.dynamic_factor)
            .fold(f64::INFINITY, f64::min);
        let dmax = samples.iter().map(|v| v.dynamic_factor).fold(0.0, f64::max);
        assert!(dmin > 0.8 && dmax < 1.25, "dynamic spread [{dmin}, {dmax}]");
    }

    #[test]
    fn frequency_factor_clamped() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let v = ProcessVariation::sample(&mut rng);
            assert!((0.9..=1.1).contains(&v.frequency_factor));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ProcessVariation::sample(&mut StdRng::seed_from_u64(9));
        let b = ProcessVariation::sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn population_is_deterministic_and_prefix_stable() {
        let a = ProcessVariation::population(42, 64);
        let b = ProcessVariation::population(42, 64);
        assert_eq!(a, b);
        // a smaller population is a prefix of a larger one: chip i's
        // corner does not depend on the cluster size
        let big = ProcessVariation::population(42, 256);
        assert_eq!(&big[..64], &a[..]);
        // different seeds give different silicon
        let c = ProcessVariation::population(43, 64);
        assert_ne!(a, c);
        // and the spread is real: not all chips identical
        assert!(a
            .iter()
            .any(|v| (v.leakage_factor - a[0].leakage_factor).abs() > 1e-6));
    }
}
