//! Compute-node model: roofline execution, DVFS, power, thermals.
//!
//! A node executes [`WorkUnit`]s under a roofline model — execution time is
//! the max of compute time (frequency-dependent) and memory time
//! (frequency-independent) — while integrating power (dynamic + leakage at
//! the evolving junction temperature) into energy. This is the model
//! behind the governor experiment (C3): on memory-bound work, raising the
//! frequency barely helps time but inflates `V²f` power, so the
//! energy-optimal P-state sits well below the `performance` governor's
//! choice.

use crate::accelerator::AcceleratorSpec;
use crate::dvfs::{PState, PStateTable};
use crate::job::WorkUnit;
use crate::power::PowerParams;
use crate::thermal::ThermalModel;
use crate::variability::ProcessVariation;

/// Static description of a node model.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Model name.
    pub name: String,
    /// CPU sockets.
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Double-precision flops per core per cycle (sustained, SIMD+FMA).
    pub flops_per_core_cycle: f64,
    /// Node memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Available P-states.
    pub pstates: PStateTable,
    /// Per-socket power parameters.
    pub socket_power: PowerParams,
    /// Attached accelerators.
    pub accelerators: Vec<AcceleratorSpec>,
}

impl NodeSpec {
    /// A CINECA-like CPU-only node: 2 × 12-core Xeon Haswell, 68 GB/s.
    pub fn cineca_xeon() -> Self {
        NodeSpec {
            name: "cineca-xeon".into(),
            sockets: 2,
            cores_per_socket: 12,
            flops_per_core_cycle: 4.0,
            mem_bw_gbs: 68.0,
            pstates: PStateTable::xeon_haswell(),
            socket_power: PowerParams::xeon_socket(),
            accelerators: vec![],
        }
    }

    /// A CINECA-like accelerated node: the Xeon pair plus two GPGPUs
    /// (the NeXtScale drug-discovery partition).
    pub fn cineca_accelerated() -> Self {
        let mut spec = Self::cineca_xeon();
        spec.name = "cineca-accelerated".into();
        spec.accelerators = vec![AcceleratorSpec::tesla_k40(), AcceleratorSpec::tesla_k40()];
        spec
    }

    /// An IT4I Salomon-like node: the Xeon pair plus two Xeon Phi MICs.
    pub fn salomon_phi() -> Self {
        let mut spec = Self::cineca_xeon();
        spec.name = "salomon-phi".into();
        spec.accelerators = vec![
            AcceleratorSpec::xeon_phi_7120(),
            AcceleratorSpec::xeon_phi_7120(),
        ];
        spec
    }

    /// Total CPU cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Peak CPU throughput at a given frequency, GFLOP/s.
    pub fn cpu_peak_gflops(&self, freq_ghz: f64) -> f64 {
        self.cores() as f64 * self.flops_per_core_cycle * freq_ghz
    }
}

/// Outcome of executing one work unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock time, seconds.
    pub time_s: f64,
    /// Energy consumed (node-level, IT only), joules.
    pub energy_j: f64,
    /// Mean power over the execution, watts.
    pub avg_power_w: f64,
    /// Junction temperature at completion, °C.
    pub final_temp_c: f64,
}

impl ExecOutcome {
    /// Achieved efficiency, MFLOPS per watt, given the flops performed.
    pub fn mflops_per_watt(&self, flops: f64) -> f64 {
        if self.energy_j == 0.0 {
            return 0.0;
        }
        flops / 1e6 / self.energy_j * 1.0 // MFLOP / J == MFLOPS/W
    }
}

/// A node instance: a spec stamped with a process corner, carrying DVFS
/// and thermal state and an energy meter.
#[derive(Debug, Clone)]
pub struct Node {
    id: usize,
    spec: NodeSpec,
    variation: ProcessVariation,
    pstate_index: usize,
    thermal: ThermalModel,
    inlet_temp_c: f64,
    busy_s: f64,
    energy_j: f64,
    flops_done: f64,
}

impl Node {
    /// Creates a node at the nominal process corner.
    pub fn nominal(spec: NodeSpec, id: usize) -> Self {
        Self::with_variation(spec, id, ProcessVariation::nominal())
    }

    /// Creates a node with an explicit process corner.
    pub fn with_variation(spec: NodeSpec, id: usize, variation: ProcessVariation) -> Self {
        let inlet = 26.0;
        let pstate_index = spec.pstates.max_index();
        Node {
            id,
            spec,
            variation,
            pstate_index,
            thermal: ThermalModel::server_node(inlet),
            inlet_temp_c: inlet,
            busy_s: 0.0,
            energy_j: 0.0,
            flops_done: 0.0,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's specification.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The node's process corner.
    pub fn variation(&self) -> ProcessVariation {
        self.variation
    }

    /// Sets the inlet (rack) air temperature, °C.
    pub fn set_inlet_temp(&mut self, temp_c: f64) {
        self.inlet_temp_c = temp_c;
    }

    /// Current inlet temperature.
    pub fn inlet_temp_c(&self) -> f64 {
        self.inlet_temp_c
    }

    /// Current junction temperature.
    pub fn temp_c(&self) -> f64 {
        self.thermal.temp_c()
    }

    /// Selects a P-state by index (0 = slowest).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set_pstate(&mut self, index: usize) {
        assert!(index < self.spec.pstates.len(), "P-state out of range");
        self.pstate_index = index;
    }

    /// Current P-state index.
    pub fn pstate_index(&self) -> usize {
        self.pstate_index
    }

    /// Current P-state.
    pub fn pstate(&self) -> PState {
        self.spec.pstates.state(self.pstate_index)
    }

    /// Total busy time so far, seconds.
    pub fn busy_s(&self) -> f64 {
        self.busy_s
    }

    /// Total energy consumed so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total useful flops performed so far.
    pub fn flops_done(&self) -> f64 {
        self.flops_done
    }

    /// Lifetime efficiency, MFLOPS/W.
    pub fn lifetime_mflops_per_watt(&self) -> f64 {
        if self.energy_j == 0.0 {
            0.0
        } else {
            self.flops_done / 1e6 / self.energy_j
        }
    }

    /// Predicted steady-state junction temperature at the given P-state
    /// and activity (fixed-point over the leakage–temperature coupling).
    /// Model-predictive thermal controllers use this to pick the fastest
    /// thermally-safe operating point.
    pub fn steady_temp_at(&self, pstate_index: usize, activity: f64) -> f64 {
        let pstate = self.spec.pstates.state(pstate_index);
        let mut temp = self.thermal.temp_c();
        for _ in 0..12 {
            let socket = self.spec.socket_power.constant_w
                + self.spec.socket_power.dynamic_w(pstate, activity)
                    * self.variation.dynamic_factor
                + self
                    .spec
                    .socket_power
                    .leakage_w(temp, self.variation.leakage_factor);
            let power = socket * self.spec.sockets as f64;
            temp = self.thermal.steady_state_c(power, self.inlet_temp_c);
        }
        temp
    }

    /// Executes a work unit on the CPU cores at the current P-state.
    pub fn execute(&mut self, work: &WorkUnit) -> ExecOutcome {
        let pstate = self.pstate();
        let compute_s = work.flops / (self.spec.cpu_peak_gflops(pstate.freq_ghz) * 1e9);
        let memory_s = work.bytes / (self.spec.mem_bw_gbs * 1e9);
        let time_s = compute_s.max(memory_s).max(1e-12);
        // cores stall on memory but still clock and issue: a floor of 25%
        // switching activity remains even for pure streaming kernels
        let activity = (0.25 + 0.75 * compute_s / time_s).clamp(0.0, 1.0);
        let outcome = self.integrate(pstate, activity, time_s, 0.0);
        self.flops_done += work.flops;
        outcome
    }

    /// Executes a work unit offloaded to accelerator `index`; the host
    /// CPU idles at low activity while the device runs.
    ///
    /// # Panics
    ///
    /// Panics if the accelerator index is out of range.
    pub fn execute_offloaded(&mut self, work: &WorkUnit, index: usize) -> ExecOutcome {
        let accel = self.spec.accelerators[index];
        let time_s = accel.exec_time_s(work.flops, work.bytes).max(1e-12);
        let accel_power = accel.power_w(1.0);
        let pstate = self.pstate();
        let outcome = self.integrate(pstate, 0.05, time_s, accel_power);
        self.flops_done += work.flops;
        outcome
    }

    /// Idles the node for `dt` seconds (cores at minimal activity,
    /// accelerators at idle power), cooling toward the inlet temperature.
    pub fn idle(&mut self, dt: f64) -> ExecOutcome {
        let pstate = self.spec.pstates.slowest();
        let accel_idle: f64 = self.spec.accelerators.iter().map(|a| a.idle_w).sum();
        self.integrate(pstate, 0.0, dt, accel_idle)
    }

    /// Integrates power and thermal state over an interval.
    fn integrate(
        &mut self,
        pstate: PState,
        activity: f64,
        time_s: f64,
        extra_power_w: f64,
    ) -> ExecOutcome {
        // step the RC model; coarse steps are exact per step, but leakage
        // depends on temperature, so subdivide long intervals
        let steps = ((time_s / 20.0).ceil() as usize).clamp(1, 32);
        let dt = time_s / steps as f64;
        let mut energy = 0.0;
        for _ in 0..steps {
            let temp = self.thermal.temp_c();
            let socket_w = self.spec.socket_power.constant_w
                + self.spec.socket_power.dynamic_w(pstate, activity)
                    * self.variation.dynamic_factor
                + self
                    .spec
                    .socket_power
                    .leakage_w(temp, self.variation.leakage_factor);
            let power = socket_w * self.spec.sockets as f64 + extra_power_w;
            self.thermal.step(power, self.inlet_temp_c, dt);
            energy += power * dt;
        }
        self.busy_s += time_s;
        self.energy_j += energy;
        ExecOutcome {
            time_s,
            energy_j: energy,
            avg_power_w: energy / time_s,
            final_temp_c: self.thermal.temp_c(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compute_time_scales_with_frequency() {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let work = WorkUnit::compute_bound(1e12);
        node.set_pstate(node.spec().pstates.max_index());
        let fast = node.execute(&work);
        node.set_pstate(0);
        let slow = node.execute(&work);
        let freq_ratio =
            node.spec().pstates.fastest().freq_ghz / node.spec().pstates.slowest().freq_ghz;
        assert!((slow.time_s / fast.time_s - freq_ratio).abs() < 0.01);
    }

    #[test]
    fn memory_bound_time_is_frequency_insensitive() {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let work = WorkUnit::memory_bound(1e11);
        node.set_pstate(node.spec().pstates.max_index());
        let fast = node.execute(&work);
        node.set_pstate(0);
        let slow = node.execute(&work);
        assert!((slow.time_s / fast.time_s - 1.0).abs() < 1e-9);
        // ... but the fast run burned more power
        assert!(fast.avg_power_w > slow.avg_power_w);
    }

    #[test]
    fn memory_bound_energy_optimum_is_a_low_pstate() {
        let spec = NodeSpec::cineca_xeon();
        let work = WorkUnit::memory_bound(5e11);
        let mut energies = Vec::new();
        for idx in 0..spec.pstates.len() {
            let mut node = Node::nominal(spec.clone(), 0);
            node.set_pstate(idx);
            energies.push(node.execute(&work).energy_j);
        }
        let best = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(best < spec.pstates.len() / 2, "optimum at index {best}");
        // savings vs fastest P-state are substantial
        let saving = 1.0 - energies[best] / energies[spec.pstates.len() - 1];
        assert!(saving > 0.15, "saving {saving}");
    }

    #[test]
    fn compute_bound_optimum_is_not_the_slowest_pstate() {
        // racing pays off when leakage+constant power dominates idle time
        let spec = NodeSpec::cineca_xeon();
        let work = WorkUnit::compute_bound(5e12);
        let mut energies = Vec::new();
        for idx in 0..spec.pstates.len() {
            let mut node = Node::nominal(spec.clone(), 0);
            node.set_pstate(idx);
            energies.push(node.execute(&work).energy_j);
        }
        let best = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(best > 0, "constant power must penalize crawling");
    }

    #[test]
    fn offload_beats_cpu_on_compute_bound_work() {
        let mut node = Node::nominal(NodeSpec::cineca_accelerated(), 0);
        let work = WorkUnit::compute_bound(1e13);
        let gpu = node.execute_offloaded(&work, 0);
        let mut cpu_node = Node::nominal(NodeSpec::cineca_xeon(), 1);
        let cpu = cpu_node.execute(&work);
        assert!(
            gpu.time_s < cpu.time_s / 2.0,
            "gpu {} vs cpu {}",
            gpu.time_s,
            cpu.time_s
        );
        assert!(
            gpu.mflops_per_watt(work.flops) > 2.0 * cpu.mflops_per_watt(work.flops),
            "gpu efficiency must dominate"
        );
    }

    #[test]
    fn heterogeneous_efficiency_is_about_3x_homogeneous() {
        // the paper's §I claim: ~7032 vs ~2304 MFLOPS/W (x3).
        let work = WorkUnit::compute_bound(1e13);
        let mut hetero = Node::nominal(NodeSpec::cineca_accelerated(), 0);
        // spread work over both accelerators
        let halves = work.split(2);
        let a = hetero.execute_offloaded(&halves[0], 0);
        let b = hetero.execute_offloaded(&halves[1], 1);
        let hetero_eff = work.flops / 1e6 / (a.energy_j + b.energy_j);
        let mut homo = Node::nominal(NodeSpec::cineca_xeon(), 1);
        let c = homo.execute(&work);
        let homo_eff = c.mflops_per_watt(work.flops);
        let ratio = hetero_eff / homo_eff;
        assert!(
            (2.0..5.0).contains(&ratio),
            "hetero {hetero_eff:.0} vs homo {homo_eff:.0} MFLOPS/W, ratio {ratio:.2}"
        );
    }

    #[test]
    fn leaky_nodes_burn_more_energy() {
        let spec = NodeSpec::cineca_xeon();
        let work = WorkUnit::compute_bound(1e12);
        let mut leaky = Node::with_variation(
            spec.clone(),
            0,
            ProcessVariation {
                leakage_factor: 1.5,
                dynamic_factor: 1.0,
                frequency_factor: 1.0,
            },
        );
        let mut tight = Node::with_variation(
            spec,
            1,
            ProcessVariation {
                leakage_factor: 0.7,
                dynamic_factor: 1.0,
                frequency_factor: 1.0,
            },
        );
        assert!(leaky.execute(&work).energy_j > tight.execute(&work).energy_j);
    }

    #[test]
    fn population_energy_spread_is_roughly_15_percent() {
        // the paper's §V claim (C2): same job, nominally identical nodes,
        // ~15% energy variation.
        let mut rng = StdRng::seed_from_u64(2024);
        let spec = NodeSpec::cineca_xeon();
        let work = WorkUnit::with_intensity(1e12, 4.0);
        let energies: Vec<f64> = (0..200)
            .map(|i| {
                let mut node =
                    Node::with_variation(spec.clone(), i, ProcessVariation::sample(&mut rng));
                node.execute(&work).energy_j
            })
            .collect();
        let mean = energies.iter().sum::<f64>() / energies.len() as f64;
        let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = energies.iter().cloned().fold(0.0, f64::max);
        let spread = (max - min) / mean;
        assert!(
            (0.08..0.40).contains(&spread),
            "energy spread {spread:.3} outside the plausible band around 15%"
        );
    }

    #[test]
    fn thermal_state_rises_under_load_and_recovers_when_idle() {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let start = node.temp_c();
        node.execute(&WorkUnit::compute_bound(5e13));
        let hot = node.temp_c();
        assert!(
            hot > start + 10.0,
            "load must heat the node: {start} -> {hot}"
        );
        node.idle(1000.0);
        assert!(node.temp_c() < hot - 10.0, "idle must cool down");
    }

    #[test]
    fn meters_accumulate() {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.execute(&WorkUnit::compute_bound(1e12));
        node.execute(&WorkUnit::compute_bound(1e12));
        assert!(node.busy_s() > 0.0);
        assert!(node.energy_j() > 0.0);
        assert_eq!(node.flops_done(), 2e12);
        assert!(node.lifetime_mflops_per_watt() > 0.0);
    }
}
