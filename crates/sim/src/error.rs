//! Typed errors for the physical models.
//!
//! The simulator sits under control loops that must keep running when a
//! sensor lies or a config carries a NaN; panicking constructors are
//! fine for test fixtures but not for a facility controller that
//! re-derives its cooling budget every step. Model entry points that
//! can be fed bad numbers offer `try_` variants returning [`SimError`],
//! while the legacy panicking forms remain as thin wrappers.

use std::fmt;

/// An invalid input to one of the physical models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// A quantity that must be finite was NaN or infinite.
    NonFinite {
        /// Which quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A quantity fell outside its physically meaningful range.
    OutOfRange {
        /// Which quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A quantity that must be strictly positive was not.
    NonPositive {
        /// Which quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            SimError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} = {value} outside [{min}, {max}]"),
            SimError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NonFinite {
            what: "ambient temperature",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("ambient temperature"));
        let e = SimError::OutOfRange {
            what: "ambient temperature",
            value: 99.0,
            min: -40.0,
            max: 60.0,
        };
        assert!(e.to_string().contains("[-40, 60]"));
        let e = SimError::NonPositive {
            what: "capacitance",
            value: 0.0,
        };
        assert!(e.to_string().contains("positive"));
    }
}
