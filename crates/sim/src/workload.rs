//! Workload generators.
//!
//! The drug-discovery use case (paper §VII-a) is "massively parallel, but
//! demonstrates unpredictable imbalances in the computational time,
//! since the verification of each point in the solution space requires a
//! widely varying time" — a heavy-tailed per-task cost distribution. The
//! navigation use case (§VII-b) sees a time-varying request load with
//! rush-hour peaks.

use crate::job::{Job, Task, WorkUnit};
use rand::Rng;

/// Standard normal draw via Box–Muller.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal draw with the given log-scale parameters.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * gaussian(rng)).exp()
}

/// Exponential draw with the given rate (events per unit time).
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Generates `count` uniform tasks of `flops` each at intensity
/// `flops_per_byte`.
pub fn uniform_tasks(count: usize, flops: f64, flops_per_byte: f64) -> Vec<Task> {
    (0..count)
        .map(|i| Task {
            id: i as u64,
            work: WorkUnit::with_intensity(flops, flops_per_byte),
        })
        .collect()
}

/// Generates a heavy-tailed docking-like sweep: lognormal per-task flops
/// around `median_flops` with log-σ `sigma` (σ ≈ 1.0 gives the ~50×
/// head-to-tail spread typical of docking scoring).
pub fn docking_tasks(count: usize, median_flops: f64, sigma: f64, rng: &mut impl Rng) -> Vec<Task> {
    (0..count)
        .map(|i| Task {
            id: i as u64,
            work: WorkUnit::with_intensity(median_flops * lognormal(rng, 0.0, sigma), 8.0),
        })
        .collect()
}

/// Generates Poisson job arrivals over `[0, horizon_s]` at `rate_per_s`,
/// each requesting `nodes` nodes with the given per-node work.
pub fn poisson_jobs(
    rate_per_s: f64,
    horizon_s: f64,
    nodes: usize,
    work_per_node: WorkUnit,
    rng: &mut impl Rng,
) -> Vec<Job> {
    let mut jobs = Vec::new();
    let mut t = 0.0;
    let mut id = 0;
    loop {
        t += exponential(rng, rate_per_s);
        if t > horizon_s {
            break;
        }
        jobs.push(Job::new(id, t, nodes, work_per_node));
        id += 1;
    }
    jobs
}

/// Request intensity multiplier over a day with two rush hours
/// (07–09 and 16–19), between 1.0 (night) and `peak` at the rush peaks.
pub fn rush_hour_profile(time_of_day_s: f64, peak: f64) -> f64 {
    let hour = (time_of_day_s / 3600.0).rem_euclid(24.0);
    let bump = |center: f64, width: f64| -> f64 {
        let d = (hour - center) / width;
        (-d * d).exp()
    };
    1.0 + (peak - 1.0) * (bump(8.0, 1.2) + bump(17.5, 1.6)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn docking_tasks_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(99);
        let tasks = docking_tasks(2000, 1e9, 1.0, &mut rng);
        let mut flops: Vec<f64> = tasks.iter().map(|t| t.work.flops).collect();
        flops.sort_by(f64::total_cmp);
        let median = flops[flops.len() / 2];
        let p99 = flops[(flops.len() as f64 * 0.99) as usize];
        assert!((0.7e9..1.4e9).contains(&median), "median {median}");
        assert!(p99 / median > 5.0, "tail ratio {}", p99 / median);
        // mean exceeds median (right skew)
        let mean = flops.iter().sum::<f64>() / flops.len() as f64;
        assert!(mean > median);
    }

    #[test]
    fn uniform_tasks_are_uniform() {
        let tasks = uniform_tasks(10, 5e8, 4.0);
        assert_eq!(tasks.len(), 10);
        assert!(tasks.iter().all(|t| t.work.flops == 5e8));
        assert_eq!(tasks[3].id, 3);
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let jobs = poisson_jobs(0.1, 1000.0, 2, WorkUnit::compute_bound(1e12), &mut rng);
        assert!(!jobs.is_empty());
        assert!(jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(jobs.iter().all(|j| j.arrival_s <= 1000.0));
        // expected count ~100
        assert!((50..170).contains(&jobs.len()), "{} arrivals", jobs.len());
    }

    #[test]
    fn rush_hour_profile_peaks_at_rush() {
        let morning_rush = rush_hour_profile(8.0 * 3600.0, 5.0);
        let night = rush_hour_profile(3.0 * 3600.0, 5.0);
        let evening_rush = rush_hour_profile(17.5 * 3600.0, 5.0);
        assert!(morning_rush > 4.0);
        assert!(evening_rush > 4.0);
        assert!(night < 1.2);
        // wraps around midnight
        assert!((rush_hour_profile(0.0, 5.0) - rush_hour_profile(24.0 * 3600.0, 5.0)).abs() < 1e-9);
    }

    #[test]
    fn distributions_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let mean_exp: f64 = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean_exp - 0.5).abs() < 0.02, "exp mean {mean_exp}");
        let mean_gauss: f64 = (0..n).map(|_| gaussian(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean_gauss.abs() < 0.03, "gauss mean {mean_gauss}");
    }
}
