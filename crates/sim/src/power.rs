//! Node power model: dynamic CV²f plus temperature-dependent leakage.
//!
//! The two mechanisms behind the paper's §V numbers:
//!
//! * dynamic power `P_dyn = C_eff · V² · f · activity` — cubic-ish in
//!   frequency under DVFS, which is why racing to idle wastes energy on
//!   memory-bound codes;
//! * static power `P_leak = P₀ · κ^((T - T₀)/10) · process` — exponential
//!   in temperature and scaled by the per-chip process factor, the source
//!   of the ≈15% node-to-node energy variation on nominally identical
//!   parts.

use crate::dvfs::PState;

/// Power-model parameters of one socket/node component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Effective switched capacitance term: watts per (V² · GHz) at full
    /// activity.
    pub ceff_w_per_v2_ghz: f64,
    /// Nominal leakage power at reference temperature, in watts.
    pub leak_w_at_ref: f64,
    /// Reference temperature for leakage, °C.
    pub ref_temp_c: f64,
    /// Leakage multiplier per +10 °C (κ; silicon is typically 1.2–1.5).
    pub leak_kappa_per_10c: f64,
    /// Uncore/board constant power in watts (fans, VRs, DRAM refresh).
    pub constant_w: f64,
}

impl PowerParams {
    /// Parameters loosely calibrated on a 12-core Xeon E5 v3 socket:
    /// ≈45 W idle, ≈140 W at 3.0 GHz / 1.25 V full activity. The constant
    /// (uncore/board) share is deliberately significant: it is what makes
    /// race-to-idle competitive on compute-bound work, so the
    /// energy-optimal P-state genuinely depends on the workload — the
    /// effect the paper's runtime manager exploits.
    pub fn xeon_socket() -> Self {
        PowerParams {
            ceff_w_per_v2_ghz: 18.0,
            leak_w_at_ref: 12.0,
            ref_temp_c: 50.0,
            leak_kappa_per_10c: 1.35,
            constant_w: 35.0,
        }
    }

    /// Dynamic power at a P-state and activity factor (0..=1).
    pub fn dynamic_w(&self, pstate: PState, activity: f64) -> f64 {
        self.ceff_w_per_v2_ghz * pstate.voltage.powi(2) * pstate.freq_ghz * activity.clamp(0.0, 1.0)
    }

    /// Leakage power at junction temperature `temp_c`, scaled by the
    /// per-chip `process_factor` (1.0 = nominal).
    ///
    /// The evaluation temperature saturates at 105 °C: beyond that point
    /// real parts hit thermal protection, and an unclamped exponential
    /// would make the leakage–temperature feedback loop diverge.
    pub fn leakage_w(&self, temp_c: f64, process_factor: f64) -> f64 {
        let temp_c = temp_c.clamp(-25.0, 105.0);
        self.leak_w_at_ref
            * self
                .leak_kappa_per_10c
                .powf((temp_c - self.ref_temp_c) / 10.0)
            * process_factor
    }

    /// Total power.
    pub fn total_w(&self, pstate: PState, activity: f64, temp_c: f64, process_factor: f64) -> f64 {
        self.constant_w + self.dynamic_w(pstate, activity) + self.leakage_w(temp_c, process_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::PStateTable;

    #[test]
    fn dynamic_power_grows_superlinearly_with_frequency() {
        let params = PowerParams::xeon_socket();
        let table = PStateTable::xeon_haswell();
        let slow = params.dynamic_w(table.slowest(), 1.0);
        let fast = params.dynamic_w(table.fastest(), 1.0);
        let freq_ratio = table.fastest().freq_ghz / table.slowest().freq_ghz;
        assert!(
            fast / slow > freq_ratio * 1.5,
            "V² scaling must make power superlinear: {fast}/{slow}"
        );
    }

    #[test]
    fn xeon_socket_is_calibrated() {
        let params = PowerParams::xeon_socket();
        let table = PStateTable::xeon_haswell();
        let tdp = params.total_w(table.fastest(), 1.0, 70.0, 1.0);
        assert!((100.0..170.0).contains(&tdp), "full-load power {tdp} W");
        let idle = params.total_w(table.slowest(), 0.0, 40.0, 1.0);
        assert!((30.0..60.0).contains(&idle), "idle power {idle} W");
    }

    #[test]
    fn leakage_doubles_every_25ish_degrees() {
        let params = PowerParams::xeon_socket();
        let at50 = params.leakage_w(50.0, 1.0);
        let at75 = params.leakage_w(75.0, 1.0);
        assert!(
            at75 / at50 > 1.8 && at75 / at50 < 2.5,
            "ratio {}",
            at75 / at50
        );
    }

    #[test]
    fn process_factor_scales_leakage_linearly() {
        let params = PowerParams::xeon_socket();
        assert!((params.leakage_w(60.0, 1.3) / params.leakage_w(60.0, 1.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn activity_clamps() {
        let params = PowerParams::xeon_socket();
        let table = PStateTable::xeon_haswell();
        assert_eq!(
            params.dynamic_w(table.fastest(), 2.0),
            params.dynamic_w(table.fastest(), 1.0)
        );
        assert_eq!(params.dynamic_w(table.fastest(), -1.0), 0.0);
    }
}
