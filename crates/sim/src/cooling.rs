//! Cooling plant, seasonal ambient temperature and PUE accounting.
//!
//! Paper §V: "environmental conditions, such as ambient temperature, can
//! significantly change the overall cooling efficiency of a supercomputer,
//! causing more than 10% Power usage effectiveness (PUE) loss when
//! transitioning from winter to summer" (citing the MS3 scheduler work).
//! The plant here combines free cooling (cheap, available when the
//! outside air is cold enough) with a chiller whose coefficient of
//! performance degrades as the condenser-side (ambient) temperature
//! rises.
//!
//! Every public method sanitizes ambient temperature: finite inputs are
//! clamped to the physically meaningful [`AMBIENT_MIN_C`]..[`AMBIENT_MAX_C`]
//! band; NaN/∞ fall back to assume-worst ([`AMBIENT_MAX_C`]) so a lying
//! weather sensor can only shrink the budget, never blow the cap. The
//! `try_` variants return [`SimError`] instead for callers that want to
//! reject bad telemetry explicitly.

use crate::error::SimError;

/// Coldest ambient temperature the models accept, °C.
pub const AMBIENT_MIN_C: f64 = -40.0;
/// Hottest ambient temperature the models accept, °C — also the
/// assume-worst fallback for non-finite readings.
pub const AMBIENT_MAX_C: f64 = 60.0;

/// Clamps a finite ambient reading into the accepted band; non-finite
/// readings fall back to assume-worst ([`AMBIENT_MAX_C`]).
pub fn sanitize_ambient_c(ambient_c: f64) -> f64 {
    if ambient_c.is_finite() {
        ambient_c.clamp(AMBIENT_MIN_C, AMBIENT_MAX_C)
    } else {
        AMBIENT_MAX_C
    }
}

/// Validates an ambient reading: non-finite or out-of-band values are a
/// typed [`SimError`].
pub fn check_ambient_c(ambient_c: f64) -> Result<f64, SimError> {
    if !ambient_c.is_finite() {
        return Err(SimError::NonFinite {
            what: "ambient temperature",
            value: ambient_c,
        });
    }
    if !(AMBIENT_MIN_C..=AMBIENT_MAX_C).contains(&ambient_c) {
        return Err(SimError::OutOfRange {
            what: "ambient temperature",
            value: ambient_c,
            min: AMBIENT_MIN_C,
            max: AMBIENT_MAX_C,
        });
    }
    Ok(ambient_c)
}

/// Cooling-plant parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingPlant {
    /// Ambient temperature below which free cooling covers the full load.
    pub free_cooling_limit_c: f64,
    /// Fan/pump power as a fraction of IT power under free cooling.
    pub free_cooling_overhead: f64,
    /// Carnot efficiency fraction of the chiller (real chillers achieve
    /// 40–60% of the Carnot COP).
    pub chiller_carnot_fraction: f64,
    /// Chilled-water supply temperature, °C.
    pub chw_supply_c: f64,
    /// Facility distribution overhead (UPS, lighting) as a fraction of IT
    /// power, always present.
    pub distribution_overhead: f64,
}

impl CoolingPlant {
    /// A modern European data centre: free cooling up to 14 °C ambient,
    /// 18 °C chilled water, 45% of Carnot, 8% distribution losses.
    pub fn european_datacenter() -> Self {
        CoolingPlant {
            free_cooling_limit_c: 14.0,
            free_cooling_overhead: 0.06,
            chiller_carnot_fraction: 0.45,
            chw_supply_c: 18.0,
            distribution_overhead: 0.08,
        }
    }

    /// Chiller coefficient of performance at the given ambient
    /// temperature (∞ is never returned; COP is clamped to `[1, 20]`,
    /// so the efficiency stays finite even near the free-cooling
    /// crossover where the temperature lift collapses).
    pub fn chiller_cop(&self, ambient_c: f64) -> f64 {
        let ambient_c = sanitize_ambient_c(ambient_c);
        let t_cold = self.chw_supply_c + 273.15;
        // condenser runs ~10 °C above ambient
        let t_hot = ambient_c + 10.0 + 273.15;
        let lift = (t_hot - t_cold).max(1.0);
        (self.chiller_carnot_fraction * t_cold / lift).clamp(1.0, 20.0)
    }

    /// Non-IT facility power as a fraction of IT power at the given
    /// ambient temperature (fans + chiller share + distribution). In
    /// this linear plant model the fraction is load-independent, which
    /// makes it the natural currency for budget arithmetic:
    /// `facility_power = it_power · (1 + overhead_fraction)`.
    pub fn overhead_fraction(&self, ambient_c: f64) -> f64 {
        let ambient_c = sanitize_ambient_c(ambient_c);
        let chiller_share = ((ambient_c - self.free_cooling_limit_c) / 10.0).clamp(0.0, 1.0);
        let chiller = chiller_share / self.chiller_cop(ambient_c);
        self.free_cooling_overhead + chiller + self.distribution_overhead
    }

    /// Validating variant of [`overhead_fraction`](Self::overhead_fraction):
    /// rejects non-finite or out-of-band ambient readings instead of
    /// assuming worst.
    pub fn try_overhead_fraction(&self, ambient_c: f64) -> Result<f64, SimError> {
        check_ambient_c(ambient_c).map(|a| self.overhead_fraction(a))
    }

    /// The IT power that fits under a total facility cap at the given
    /// ambient temperature: `cap / (1 + overhead_fraction)`. A hot
    /// afternoon raises the cooling overhead, so the same facility cap
    /// buys less compute.
    pub fn it_budget_w(&self, facility_cap_w: f64, ambient_c: f64) -> f64 {
        let cap = if facility_cap_w.is_finite() {
            facility_cap_w.max(0.0)
        } else {
            0.0
        };
        cap / (1.0 + self.overhead_fraction(ambient_c))
    }

    /// Validating variant of [`it_budget_w`](Self::it_budget_w).
    pub fn try_it_budget_w(&self, facility_cap_w: f64, ambient_c: f64) -> Result<f64, SimError> {
        if !facility_cap_w.is_finite() {
            return Err(SimError::NonFinite {
                what: "facility cap",
                value: facility_cap_w,
            });
        }
        if facility_cap_w <= 0.0 {
            return Err(SimError::NonPositive {
                what: "facility cap",
                value: facility_cap_w,
            });
        }
        check_ambient_c(ambient_c).map(|a| self.it_budget_w(facility_cap_w, a))
    }

    /// Cooling power drawn to remove `it_power_w` of heat at the given
    /// ambient temperature.
    pub fn cooling_power_w(&self, it_power_w: f64, ambient_c: f64) -> f64 {
        let ambient_c = sanitize_ambient_c(ambient_c);
        if ambient_c <= self.free_cooling_limit_c {
            return it_power_w * self.free_cooling_overhead;
        }
        // partial free cooling tapers off linearly over a 10 °C band
        let chiller_share = ((ambient_c - self.free_cooling_limit_c) / 10.0).clamp(0.0, 1.0);
        let chiller_power = it_power_w * chiller_share / self.chiller_cop(ambient_c);
        let fan_power = it_power_w * self.free_cooling_overhead;
        chiller_power + fan_power
    }

    /// Power usage effectiveness at the given ambient temperature:
    /// `(IT + cooling + distribution) / IT`.
    pub fn pue(&self, it_power_w: f64, ambient_c: f64) -> f64 {
        if it_power_w <= 0.0 {
            return f64::INFINITY;
        }
        let cooling = self.cooling_power_w(it_power_w, ambient_c);
        let distribution = it_power_w * self.distribution_overhead;
        (it_power_w + cooling + distribution) / it_power_w
    }

    /// Facility energy drawn to deliver `it_energy_j` of IT work at the
    /// given ambient: `it · (1 + overhead_fraction)`. Because the plant
    /// model's overhead fraction is load-independent, energy scales the
    /// same way power does — this is the joule-domain form the serving
    /// tier's energy-attribution meter uses.
    pub fn facility_energy_j(&self, it_energy_j: f64, ambient_c: f64) -> f64 {
        let it = if it_energy_j.is_finite() {
            it_energy_j.max(0.0)
        } else {
            0.0
        };
        it * (1.0 + self.overhead_fraction(ambient_c))
    }
}

/// Mean daily ambient temperature (°C) for a day of the year in a
/// continental European climate: a sinusoid from ≈2 °C (late January) to
/// ≈26 °C (late July).
pub fn ambient_temp_c(day_of_year: u32) -> f64 {
    let day = f64::from(day_of_year % 365);
    // minimum around day 25, maximum around day 207
    14.0 + 12.0 * ((day - 207.0) / 365.0 * std::f64::consts::TAU).cos()
}

/// Representative winter day (mid-January).
pub const WINTER_DAY: u32 = 15;
/// Representative summer day (mid-July).
pub const SUMMER_DAY: u32 = 196;

/// Ambient temperature during a heat-wave afternoon: ramps smoothly
/// from `start_c` to `peak_c` over `ramp_s` seconds (smoothstep, so the
/// controller sees a continuous derivative), then holds the peak.
pub fn heat_wave_ambient_c(time_s: f64, start_c: f64, peak_c: f64, ramp_s: f64) -> f64 {
    let start_c = sanitize_ambient_c(start_c);
    let peak_c = sanitize_ambient_c(peak_c);
    if !time_s.is_finite() || !ramp_s.is_finite() || ramp_s <= 0.0 {
        return peak_c;
    }
    let x = (time_s / ramp_s).clamp(0.0, 1.0);
    let s = x * x * (3.0 - 2.0 * x);
    start_c + (peak_c - start_c) * s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facility_energy_matches_overhead_fraction() {
        let plant = CoolingPlant::european_datacenter();
        let ambient = 20.0;
        let facility = plant.facility_energy_j(100.0, ambient);
        let expected = 100.0 * (1.0 + plant.overhead_fraction(ambient));
        assert_eq!(facility, expected);
        assert!(facility > 100.0, "overhead is strictly positive");
        assert_eq!(plant.facility_energy_j(-5.0, ambient), 0.0);
        assert_eq!(plant.facility_energy_j(f64::NAN, ambient), 0.0);
    }

    #[test]
    fn seasons_have_the_right_shape() {
        let winter = ambient_temp_c(WINTER_DAY);
        let summer = ambient_temp_c(SUMMER_DAY);
        assert!(winter < 8.0, "winter {winter}");
        assert!(summer > 22.0, "summer {summer}");
        // continuous across the year boundary
        assert!((ambient_temp_c(364) - ambient_temp_c(0)).abs() < 0.5);
    }

    #[test]
    fn cop_degrades_with_ambient() {
        let plant = CoolingPlant::european_datacenter();
        assert!(plant.chiller_cop(15.0) > plant.chiller_cop(35.0));
        assert!(plant.chiller_cop(35.0) >= 1.0);
    }

    #[test]
    fn winter_pue_beats_summer_by_over_10_percent() {
        // the paper's §V claim (C4)
        let plant = CoolingPlant::european_datacenter();
        let it = 1e6; // 1 MW of IT load
        let winter = plant.pue(it, ambient_temp_c(WINTER_DAY));
        let summer = plant.pue(it, ambient_temp_c(SUMMER_DAY));
        assert!(winter < summer);
        let loss = (summer - winter) / winter;
        assert!(
            loss > 0.10,
            "summer PUE {summer:.3} vs winter {winter:.3}: loss {loss:.3} <= 10%"
        );
        // both stay in a realistic band
        assert!((1.05..1.35).contains(&winter), "winter PUE {winter}");
        assert!((1.15..1.7).contains(&summer), "summer PUE {summer}");
    }

    #[test]
    fn free_cooling_is_cheap() {
        let plant = CoolingPlant::european_datacenter();
        let cold = plant.cooling_power_w(1e6, 5.0);
        let hot = plant.cooling_power_w(1e6, 30.0);
        assert!(cold < 0.1e6);
        assert!(hot > 2.0 * cold);
    }

    #[test]
    fn pue_of_zero_it_power_is_infinite() {
        let plant = CoolingPlant::european_datacenter();
        assert!(plant.pue(0.0, 20.0).is_infinite());
    }

    #[test]
    fn non_finite_ambient_assumes_worst() {
        let plant = CoolingPlant::european_datacenter();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                plant.overhead_fraction(bad),
                plant.overhead_fraction(AMBIENT_MAX_C)
            );
            assert_eq!(plant.chiller_cop(bad), plant.chiller_cop(AMBIENT_MAX_C));
            assert_eq!(
                plant.cooling_power_w(1e6, bad),
                plant.cooling_power_w(1e6, AMBIENT_MAX_C)
            );
            assert!(plant.try_overhead_fraction(bad).is_err());
        }
        // sub-zero and absurd ambients clamp instead of extrapolating
        assert_eq!(
            plant.overhead_fraction(-200.0),
            plant.overhead_fraction(AMBIENT_MIN_C)
        );
        assert_eq!(
            plant.overhead_fraction(500.0),
            plant.overhead_fraction(AMBIENT_MAX_C)
        );
        assert!(plant.try_overhead_fraction(-200.0).is_err());
        assert!(plant.try_overhead_fraction(20.0).is_ok());
    }

    #[test]
    fn it_budget_rejects_bad_caps() {
        let plant = CoolingPlant::european_datacenter();
        assert!(plant.try_it_budget_w(f64::NAN, 20.0).is_err());
        assert!(plant.try_it_budget_w(0.0, 20.0).is_err());
        assert!(plant.try_it_budget_w(-5.0, 20.0).is_err());
        assert!(plant.try_it_budget_w(1e6, f64::NAN).is_err());
        let ok = plant.try_it_budget_w(1e6, 20.0).unwrap();
        assert!(ok > 0.0 && ok < 1e6);
        // assume-worst fallback in the plain method
        assert_eq!(plant.it_budget_w(f64::NAN, 20.0), 0.0);
        assert_eq!(
            plant.it_budget_w(1e6, f64::NAN),
            plant.it_budget_w(1e6, AMBIENT_MAX_C)
        );
    }

    /// Property: over the full accepted ambient band (including the
    /// free-cooling crossover at 14 °C and the taper knee at 24 °C),
    /// efficiency stays finite and monotone — overhead never decreases
    /// with ambient, COP never increases, and the usable IT budget under
    /// a fixed cap never grows on a hotter day.
    #[test]
    fn efficiency_is_finite_and_monotone_over_ambient_sweep() {
        let plant = CoolingPlant::european_datacenter();
        let cap = 1.6e6;
        let mut prev_overhead = f64::NEG_INFINITY;
        let mut prev_cop = f64::INFINITY;
        let mut prev_budget = f64::INFINITY;
        let mut a = AMBIENT_MIN_C;
        while a <= AMBIENT_MAX_C {
            let overhead = plant.overhead_fraction(a);
            let cop = plant.chiller_cop(a);
            let budget = plant.it_budget_w(cap, a);
            let pue = plant.pue(1e6, a);
            assert!(
                overhead.is_finite() && overhead >= 0.0,
                "overhead at {a}: {overhead}"
            );
            assert!((1.0..=20.0).contains(&cop), "cop at {a}: {cop}");
            assert!(
                budget.is_finite() && budget > 0.0,
                "budget at {a}: {budget}"
            );
            assert!(pue.is_finite() && pue >= 1.0, "pue at {a}: {pue}");
            assert!(overhead >= prev_overhead - 1e-12, "overhead dips at {a}");
            assert!(cop <= prev_cop + 1e-12, "cop rises at {a}");
            assert!(budget <= prev_budget + 1e-9, "budget grows at {a}");
            prev_overhead = overhead;
            prev_cop = cop;
            prev_budget = budget;
            a += 0.125;
        }
    }

    #[test]
    fn heat_wave_ramp_is_smooth_and_bounded() {
        let (start, peak, ramp) = (14.0, 33.0, 5400.0);
        assert_eq!(heat_wave_ambient_c(0.0, start, peak, ramp), start);
        assert_eq!(heat_wave_ambient_c(ramp, start, peak, ramp), peak);
        assert_eq!(heat_wave_ambient_c(ramp * 3.0, start, peak, ramp), peak);
        let mut prev = start;
        let mut t = 0.0;
        while t <= ramp {
            let a = heat_wave_ambient_c(t, start, peak, ramp);
            assert!((start..=peak).contains(&a));
            assert!(a >= prev - 1e-12, "ramp must be monotone");
            prev = a;
            t += 30.0;
        }
        // degenerate inputs collapse to the (sanitized) peak
        assert_eq!(heat_wave_ambient_c(f64::NAN, start, peak, ramp), peak);
        assert_eq!(heat_wave_ambient_c(100.0, start, peak, 0.0), peak);
        assert_eq!(
            heat_wave_ambient_c(ramp, start, f64::NAN, ramp),
            AMBIENT_MAX_C
        );
    }
}
