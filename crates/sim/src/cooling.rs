//! Cooling plant, seasonal ambient temperature and PUE accounting.
//!
//! Paper §V: "environmental conditions, such as ambient temperature, can
//! significantly change the overall cooling efficiency of a supercomputer,
//! causing more than 10% Power usage effectiveness (PUE) loss when
//! transitioning from winter to summer" (citing the MS3 scheduler work).
//! The plant here combines free cooling (cheap, available when the
//! outside air is cold enough) with a chiller whose coefficient of
//! performance degrades as the condenser-side (ambient) temperature
//! rises.

/// Cooling-plant parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolingPlant {
    /// Ambient temperature below which free cooling covers the full load.
    pub free_cooling_limit_c: f64,
    /// Fan/pump power as a fraction of IT power under free cooling.
    pub free_cooling_overhead: f64,
    /// Carnot efficiency fraction of the chiller (real chillers achieve
    /// 40–60% of the Carnot COP).
    pub chiller_carnot_fraction: f64,
    /// Chilled-water supply temperature, °C.
    pub chw_supply_c: f64,
    /// Facility distribution overhead (UPS, lighting) as a fraction of IT
    /// power, always present.
    pub distribution_overhead: f64,
}

impl CoolingPlant {
    /// A modern European data centre: free cooling up to 14 °C ambient,
    /// 18 °C chilled water, 45% of Carnot, 8% distribution losses.
    pub fn european_datacenter() -> Self {
        CoolingPlant {
            free_cooling_limit_c: 14.0,
            free_cooling_overhead: 0.06,
            chiller_carnot_fraction: 0.45,
            chw_supply_c: 18.0,
            distribution_overhead: 0.08,
        }
    }

    /// Chiller coefficient of performance at the given ambient
    /// temperature (∞ is never returned; COP is clamped to `[1, 20]`).
    pub fn chiller_cop(&self, ambient_c: f64) -> f64 {
        let t_cold = self.chw_supply_c + 273.15;
        // condenser runs ~10 °C above ambient
        let t_hot = ambient_c + 10.0 + 273.15;
        let lift = (t_hot - t_cold).max(1.0);
        (self.chiller_carnot_fraction * t_cold / lift).clamp(1.0, 20.0)
    }

    /// Cooling power drawn to remove `it_power_w` of heat at the given
    /// ambient temperature.
    pub fn cooling_power_w(&self, it_power_w: f64, ambient_c: f64) -> f64 {
        if ambient_c <= self.free_cooling_limit_c {
            return it_power_w * self.free_cooling_overhead;
        }
        // partial free cooling tapers off linearly over a 10 °C band
        let chiller_share = ((ambient_c - self.free_cooling_limit_c) / 10.0).clamp(0.0, 1.0);
        let free_share = 1.0 - chiller_share;
        let chiller_power = it_power_w * chiller_share / self.chiller_cop(ambient_c);
        let fan_power = it_power_w * self.free_cooling_overhead;
        chiller_power + fan_power + free_share * 0.0
    }

    /// Power usage effectiveness at the given ambient temperature:
    /// `(IT + cooling + distribution) / IT`.
    pub fn pue(&self, it_power_w: f64, ambient_c: f64) -> f64 {
        if it_power_w <= 0.0 {
            return f64::INFINITY;
        }
        let cooling = self.cooling_power_w(it_power_w, ambient_c);
        let distribution = it_power_w * self.distribution_overhead;
        (it_power_w + cooling + distribution) / it_power_w
    }
}

/// Mean daily ambient temperature (°C) for a day of the year in a
/// continental European climate: a sinusoid from ≈2 °C (late January) to
/// ≈26 °C (late July).
pub fn ambient_temp_c(day_of_year: u32) -> f64 {
    let day = f64::from(day_of_year % 365);
    // minimum around day 25, maximum around day 207
    14.0 + 12.0 * ((day - 207.0) / 365.0 * std::f64::consts::TAU).cos()
}

/// Representative winter day (mid-January).
pub const WINTER_DAY: u32 = 15;
/// Representative summer day (mid-July).
pub const SUMMER_DAY: u32 = 196;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasons_have_the_right_shape() {
        let winter = ambient_temp_c(WINTER_DAY);
        let summer = ambient_temp_c(SUMMER_DAY);
        assert!(winter < 8.0, "winter {winter}");
        assert!(summer > 22.0, "summer {summer}");
        // continuous across the year boundary
        assert!((ambient_temp_c(364) - ambient_temp_c(0)).abs() < 0.5);
    }

    #[test]
    fn cop_degrades_with_ambient() {
        let plant = CoolingPlant::european_datacenter();
        assert!(plant.chiller_cop(15.0) > plant.chiller_cop(35.0));
        assert!(plant.chiller_cop(35.0) >= 1.0);
    }

    #[test]
    fn winter_pue_beats_summer_by_over_10_percent() {
        // the paper's §V claim (C4)
        let plant = CoolingPlant::european_datacenter();
        let it = 1e6; // 1 MW of IT load
        let winter = plant.pue(it, ambient_temp_c(WINTER_DAY));
        let summer = plant.pue(it, ambient_temp_c(SUMMER_DAY));
        assert!(winter < summer);
        let loss = (summer - winter) / winter;
        assert!(
            loss > 0.10,
            "summer PUE {summer:.3} vs winter {winter:.3}: loss {loss:.3} <= 10%"
        );
        // both stay in a realistic band
        assert!((1.05..1.35).contains(&winter), "winter PUE {winter}");
        assert!((1.15..1.7).contains(&summer), "summer PUE {summer}");
    }

    #[test]
    fn free_cooling_is_cheap() {
        let plant = CoolingPlant::european_datacenter();
        let cold = plant.cooling_power_w(1e6, 5.0);
        let hot = plant.cooling_power_w(1e6, 30.0);
        assert!(cold < 0.1e6);
        assert!(hot > 2.0 * cold);
    }

    #[test]
    fn pue_of_zero_it_power_is_infinite() {
        let plant = CoolingPlant::european_datacenter();
        assert!(plant.pue(0.0, 20.0).is_infinite());
    }
}
