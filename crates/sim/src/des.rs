//! Deterministic discrete-event engine.
//!
//! A small, generic event queue: events are ordered by time, with a
//! monotonically increasing sequence number breaking ties so that events
//! scheduled earlier fire earlier (FIFO at equal timestamps) — the
//! property every scheduler in `antarex-rtrm` relies on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with a simulation clock.
///
/// # Examples
///
/// ```
/// use antarex_sim::des::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(2.0, "later");
/// queue.schedule(1.0, "sooner");
/// assert_eq!(queue.pop(), Some((1.0, "sooner")));
/// assert_eq!(queue.now(), 1.0);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules an event at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current clock (events
    /// cannot fire in the past).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule at {time} before current time {}",
            self.now
        );
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules an event `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.time;
        Some((scheduled.time, scheduled.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events until the queue empties or `until` is reached,
    /// calling `handle` for each; `handle` may schedule follow-up events.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, until: f64, mut handle: impl FnMut(&mut Self, f64, E)) -> usize {
        let mut processed = 0;
        while let Some(time) = self.peek_time() {
            if time > until {
                break;
            }
            let (time, event) = self.pop().expect("peeked");
            handle(self, time, event);
            processed += 1;
        }
        processed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        assert_eq!(q.pop(), Some((2.0, 'b')));
        assert_eq!(q.pop(), Some((3.0, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(1.0, ());
        let mut last = 0.0;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn run_until_processes_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule(0.0, 3u32); // countdown event: reschedules itself
        let mut fired = Vec::new();
        let processed = q.run_until(100.0, |q, t, remaining| {
            fired.push((t, remaining));
            if remaining > 0 {
                q.schedule_in(1.0, remaining - 1);
            }
        });
        assert_eq!(processed, 4);
        assert_eq!(fired, vec![(0.0, 3), (1.0, 2), (2.0, 1), (3.0, 0)]);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.schedule(10.0, ());
        let processed = q.run_until(5.0, |_, _, ()| {});
        assert_eq!(processed, 1);
        assert_eq!(q.len(), 1, "the t=10 event remains");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "base");
        q.pop();
        q.schedule_in(3.0, "rel");
        assert_eq!(q.peek_time(), Some(5.0));
    }
}
