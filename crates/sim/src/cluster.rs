//! Cluster: a population of nodes plus the facility around them.

use crate::cooling::CoolingPlant;
use crate::node::{Node, NodeSpec};
use crate::variability::ProcessVariation;
use rand::Rng;

/// A cluster of (possibly heterogeneous) nodes behind one cooling plant.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    plant: CoolingPlant,
    ambient_c: f64,
}

impl Cluster {
    /// Builds a homogeneous cluster of `count` nodes from one spec, each
    /// stamped with a sampled process corner.
    pub fn homogeneous(spec: NodeSpec, count: usize, rng: &mut impl Rng) -> Self {
        let nodes = (0..count)
            .map(|i| Node::with_variation(spec.clone(), i, ProcessVariation::sample(rng)))
            .collect();
        Cluster {
            nodes,
            plant: CoolingPlant::european_datacenter(),
            ambient_c: 14.0,
        }
    }

    /// Builds a cluster from explicit nodes.
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        Cluster {
            nodes,
            plant: CoolingPlant::european_datacenter(),
            ambient_c: 14.0,
        }
    }

    /// Replaces the cooling plant.
    pub fn with_plant(mut self, plant: CoolingPlant) -> Self {
        self.plant = plant;
        self
    }

    /// Sets the outside ambient temperature and propagates a derived
    /// inlet temperature to every node (inlet tracks ambient above the
    /// free-cooling limit).
    pub fn set_ambient(&mut self, ambient_c: f64) {
        self.ambient_c = ambient_c;
        let inlet = 18.0 + (ambient_c - 18.0).max(0.0) * 0.5 + 6.0;
        for node in &mut self.nodes {
            node.set_inlet_temp(inlet);
        }
    }

    /// Current ambient temperature.
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// The cooling plant.
    pub fn plant(&self) -> &CoolingPlant {
        &self.plant
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable node access.
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// One node by id.
    pub fn node(&self, id: usize) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// Mutable access to one node.
    pub fn node_mut(&mut self, id: usize) -> Option<&mut Node> {
        self.nodes.get_mut(id)
    }

    /// Total IT energy consumed so far, joules.
    pub fn it_energy_j(&self) -> f64 {
        self.nodes.iter().map(Node::energy_j).sum()
    }

    /// Total useful flops performed so far.
    pub fn flops_done(&self) -> f64 {
        self.nodes.iter().map(Node::flops_done).sum()
    }

    /// Facility energy (IT × PUE at the current ambient) for a given IT
    /// energy, joules.
    pub fn facility_energy_j(&self, it_energy_j: f64) -> f64 {
        // energy-weighted PUE at constant ambient: scale by instantaneous
        // PUE computed at a representative 70% load
        let representative_power = 1.0;
        it_energy_j * self.plant.pue(representative_power, self.ambient_c)
    }

    /// Cluster-level efficiency so far, MFLOPS per facility watt.
    pub fn facility_mflops_per_watt(&self) -> f64 {
        let it = self.it_energy_j();
        if it == 0.0 {
            return 0.0;
        }
        self.flops_done() / 1e6 / self.facility_energy_j(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkUnit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_cluster_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = Cluster::homogeneous(NodeSpec::cineca_xeon(), 16, &mut rng);
        assert_eq!(cluster.len(), 16);
        // corners differ between nodes
        let l0 = cluster.node(0).unwrap().variation().leakage_factor;
        let l1 = cluster.node(1).unwrap().variation().leakage_factor;
        assert_ne!(l0, l1);
    }

    #[test]
    fn ambient_propagates_to_inlets() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut cluster = Cluster::homogeneous(NodeSpec::cineca_xeon(), 4, &mut rng);
        cluster.set_ambient(30.0);
        let hot_inlet = cluster.node(0).unwrap().inlet_temp_c();
        cluster.set_ambient(5.0);
        let cold_inlet = cluster.node(0).unwrap().inlet_temp_c();
        assert!(hot_inlet > cold_inlet);
    }

    #[test]
    fn energy_accounting_aggregates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cluster = Cluster::homogeneous(NodeSpec::cineca_xeon(), 4, &mut rng);
        for node in cluster.nodes_mut() {
            node.execute(&WorkUnit::compute_bound(1e12));
        }
        assert!(cluster.it_energy_j() > 0.0);
        assert_eq!(cluster.flops_done(), 4e12);
        assert!(cluster.facility_energy_j(cluster.it_energy_j()) > cluster.it_energy_j());
        assert!(cluster.facility_mflops_per_watt() > 0.0);
    }

    #[test]
    fn summer_facility_energy_exceeds_winter() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cluster = Cluster::homogeneous(NodeSpec::cineca_xeon(), 2, &mut rng);
        cluster.set_ambient(crate::cooling::ambient_temp_c(crate::cooling::WINTER_DAY));
        let winter = cluster.facility_energy_j(1e9);
        cluster.set_ambient(crate::cooling::ambient_temp_c(crate::cooling::SUMMER_DAY));
        let summer = cluster.facility_energy_j(1e9);
        assert!(summer / winter > 1.10);
    }
}
