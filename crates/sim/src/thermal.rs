//! First-order RC thermal model.
//!
//! Junction temperature follows `C · dT/dt = P − (T − T_env)/R`: power
//! heats the die, the heatsink path (resistance `R`) drains heat toward
//! the node inlet temperature. The exponential step solution keeps the
//! integration exact for piecewise-constant power, so long executions can
//! be stepped coarsely without drift.

use crate::error::SimError;

/// RC thermal parameters and state of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Thermal resistance junction→inlet, °C per watt.
    pub resistance_c_per_w: f64,
    /// Thermal capacitance, joules per °C.
    pub capacitance_j_per_c: f64,
    /// Current junction temperature, °C.
    temp_c: f64,
}

impl ThermalModel {
    /// Creates a model at thermal equilibrium with `env_temp_c`.
    ///
    /// # Panics
    ///
    /// Panics unless resistance and capacitance are positive.
    pub fn new(resistance_c_per_w: f64, capacitance_j_per_c: f64, env_temp_c: f64) -> Self {
        Self::try_new(resistance_c_per_w, capacitance_j_per_c, env_temp_c)
            .expect("valid thermal parameters")
    }

    /// Creates a model at thermal equilibrium with `env_temp_c`,
    /// rejecting non-finite or non-positive parameters with a typed
    /// error instead of panicking.
    pub fn try_new(
        resistance_c_per_w: f64,
        capacitance_j_per_c: f64,
        env_temp_c: f64,
    ) -> Result<Self, SimError> {
        for (what, value) in [
            ("thermal resistance", resistance_c_per_w),
            ("thermal capacitance", capacitance_j_per_c),
            ("environment temperature", env_temp_c),
        ] {
            if !value.is_finite() {
                return Err(SimError::NonFinite { what, value });
            }
        }
        if resistance_c_per_w <= 0.0 {
            return Err(SimError::NonPositive {
                what: "thermal resistance must be positive",
                value: resistance_c_per_w,
            });
        }
        if capacitance_j_per_c <= 0.0 {
            return Err(SimError::NonPositive {
                what: "thermal capacitance must be positive",
                value: capacitance_j_per_c,
            });
        }
        Ok(ThermalModel {
            resistance_c_per_w,
            capacitance_j_per_c,
            temp_c: env_temp_c,
        })
    }

    /// A server-node heatsink: 0.25 °C/W and a ≈50 s time constant.
    pub fn server_node(env_temp_c: f64) -> Self {
        ThermalModel::new(0.25, 200.0, env_temp_c)
    }

    /// Current junction temperature.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Steady-state temperature for constant `power_w` and `env_temp_c`.
    pub fn steady_state_c(&self, power_w: f64, env_temp_c: f64) -> f64 {
        env_temp_c + self.resistance_c_per_w * power_w
    }

    /// Advances the model by `dt` seconds with constant `power_w` and
    /// environment `env_temp_c` (exact exponential update).
    ///
    /// Non-finite or negative inputs leave the state untouched and
    /// return the current temperature — a single NaN power sample must
    /// not poison the junction state for the rest of the run.
    pub fn step(&mut self, power_w: f64, env_temp_c: f64, dt: f64) -> f64 {
        if !power_w.is_finite() || !env_temp_c.is_finite() || !dt.is_finite() || dt < 0.0 {
            return self.temp_c;
        }
        let target = self.steady_state_c(power_w, env_temp_c);
        let tau = self.resistance_c_per_w * self.capacitance_j_per_c;
        let decay = (-dt / tau).exp();
        self.temp_c = target + (self.temp_c - target) * decay;
        self.temp_c
    }

    /// Resets the junction to `temp_c` (e.g. after a long idle).
    pub fn reset(&mut self, temp_c: f64) {
        self.temp_c = temp_c;
    }

    /// Thermal time constant `R·C`, seconds.
    pub fn time_constant_s(&self) -> f64 {
        self.resistance_c_per_w * self.capacitance_j_per_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_steady_state() {
        let mut model = ThermalModel::server_node(25.0);
        let steady = model.steady_state_c(200.0, 25.0);
        assert!((steady - 75.0).abs() < 1e-9);
        for _ in 0..100 {
            model.step(200.0, 25.0, 10.0);
        }
        assert!((model.temp_c() - steady).abs() < 0.1);
    }

    #[test]
    fn heats_and_cools_monotonically() {
        let mut model = ThermalModel::server_node(25.0);
        let mut last = model.temp_c();
        for _ in 0..20 {
            let t = model.step(150.0, 25.0, 5.0);
            assert!(t >= last, "heating must be monotone");
            last = t;
        }
        for _ in 0..20 {
            let t = model.step(0.0, 25.0, 5.0);
            assert!(t <= last, "cooling must be monotone");
            last = t;
        }
    }

    #[test]
    fn exponential_step_is_exact_regardless_of_dt() {
        let mut fine = ThermalModel::server_node(25.0);
        let mut coarse = ThermalModel::server_node(25.0);
        for _ in 0..1000 {
            fine.step(120.0, 25.0, 0.1);
        }
        coarse.step(120.0, 25.0, 100.0);
        assert!((fine.temp_c() - coarse.temp_c()).abs() < 1e-6);
    }

    #[test]
    fn hotter_ambient_means_hotter_junction() {
        let mut winter = ThermalModel::server_node(18.0);
        let mut summer = ThermalModel::server_node(32.0);
        for _ in 0..50 {
            winter.step(180.0, 18.0, 10.0);
            summer.step(180.0, 32.0, 10.0);
        }
        assert!(summer.temp_c() - winter.temp_c() > 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_params_rejected() {
        let _ = ThermalModel::new(0.0, 100.0, 25.0);
    }

    #[test]
    fn try_new_rejects_bad_parameters_with_typed_errors() {
        assert!(ThermalModel::try_new(0.25, 200.0, 25.0).is_ok());
        assert!(ThermalModel::try_new(0.0, 200.0, 25.0).is_err());
        assert!(ThermalModel::try_new(-1.0, 200.0, 25.0).is_err());
        assert!(ThermalModel::try_new(0.25, 0.0, 25.0).is_err());
        assert!(ThermalModel::try_new(f64::NAN, 200.0, 25.0).is_err());
        assert!(ThermalModel::try_new(0.25, f64::INFINITY, 25.0).is_err());
        assert!(ThermalModel::try_new(0.25, 200.0, f64::NAN).is_err());
    }

    #[test]
    fn nan_inputs_do_not_poison_the_junction_state() {
        let mut model = ThermalModel::server_node(25.0);
        model.step(180.0, 25.0, 60.0);
        let before = model.temp_c();
        assert_eq!(model.step(f64::NAN, 25.0, 10.0), before);
        assert_eq!(model.step(180.0, f64::NAN, 10.0), before);
        assert_eq!(model.step(180.0, 25.0, f64::NAN), before);
        assert_eq!(model.step(180.0, 25.0, -5.0), before);
        assert!(model.temp_c().is_finite());
        // a good sample afterwards resumes the exact trajectory
        let t = model.step(180.0, 25.0, 10.0);
        assert!(t.is_finite() && t > before);
    }
}
