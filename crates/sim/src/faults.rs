//! Deterministic, seed-driven fault injection for the simulated platform.
//!
//! Exascale machines fail constantly: the mean time between failures
//! shrinks as the node count grows, sensors drop out or freeze, power
//! rails glitch, interconnects degrade, and "gray" nodes silently run
//! slow. This module pre-computes a complete, reproducible
//! [`FaultSchedule`] for a simulated run — Weibull-distributed node
//! crashes with repair, transient sensor dropouts and stuck-at readings,
//! power-rail spikes, interconnect degradation windows, and slow-node
//! gray failures — so that every layer above the simulator (governors,
//! power capping, checkpointing schedulers, the CADA loop, the nav
//! server) can be exercised under realistic disturbance.
//!
//! Design rules:
//!
//! * **Deterministic.** The schedule is a pure function of
//!   ([`FaultConfig`], node count, horizon). Identical seeds yield
//!   byte-identical schedules, forever.
//! * **Pure.** The injector never touches simulator state. It answers
//!   point-in-time queries ([`FaultSchedule::node_alive`],
//!   [`FaultSchedule::sensor_effect`], ...) and leaves the response to
//!   the consuming layer — the injector cannot know what a "stuck"
//!   sensor last read, so it reports *that* a sensor froze and since
//!   when, and the monitor holds the value.
//! * **Zero means zero.** A rate of 0 (or [`FaultConfig::none`])
//!   produces an empty schedule, and every query returns the fault-free
//!   answer, so fault-rate-0 experiments are bit-identical to runs that
//!   never imported this module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Tunable fault model for one simulated run.
///
/// All rates are per-node unless stated otherwise; a rate (or MTBF) of
/// zero disables that fault class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the fault stream (independent of the workload seed).
    pub seed: u64,
    /// Mean time between crashes per node, seconds. 0 disables crashes.
    pub node_mtbf_s: f64,
    /// Weibull shape `k` for crash inter-arrival times. `k = 1` is the
    /// classic exponential/Poisson model; `k < 1` captures infant
    /// mortality, `k > 1` wear-out.
    pub weibull_shape: f64,
    /// Downtime after a crash before the node rejoins, seconds.
    pub repair_time_s: f64,
    /// Mean time between sensor dropouts per node, seconds. 0 disables.
    pub sensor_mtbf_s: f64,
    /// Duration of one sensor fault, seconds.
    pub sensor_outage_s: f64,
    /// Probability a sensor fault manifests as a stuck-at (frozen)
    /// reading rather than a missing one.
    pub stuck_fraction: f64,
    /// Mean time between power-rail spikes per node, seconds. 0 disables.
    pub power_spike_mtbf_s: f64,
    /// Extra draw during a spike, watts.
    pub power_spike_w: f64,
    /// Spike duration, seconds.
    pub power_spike_s: f64,
    /// Mean time between interconnect degradation windows (whole
    /// cluster), seconds. 0 disables.
    pub link_mtbf_s: f64,
    /// Bandwidth multiplier while degraded (e.g. 0.25 = quarter speed).
    pub link_factor: f64,
    /// Degradation window duration, seconds.
    pub link_outage_s: f64,
    /// Mean time between gray failures (slow node, no crash) per node,
    /// seconds. 0 disables.
    pub gray_mtbf_s: f64,
    /// Execution slowdown while gray (e.g. 2.0 = half speed).
    pub gray_slowdown: f64,
    /// Gray episode duration, seconds.
    pub gray_duration_s: f64,
    /// Mean time between silent data-corruption windows per node,
    /// seconds — episodes where results computed on the node come back
    /// bit-flipped (DRAM/ALU upsets). 0 disables.
    pub corrupt_mtbf_s: f64,
    /// Duration of one corruption window, seconds.
    pub corrupt_window_s: f64,
}

impl FaultConfig {
    /// A fault-free configuration: every class disabled.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            node_mtbf_s: 0.0,
            weibull_shape: 1.0,
            repair_time_s: 120.0,
            sensor_mtbf_s: 0.0,
            sensor_outage_s: 30.0,
            stuck_fraction: 0.3,
            power_spike_mtbf_s: 0.0,
            power_spike_w: 60.0,
            power_spike_s: 5.0,
            link_mtbf_s: 0.0,
            link_factor: 0.25,
            link_outage_s: 60.0,
            gray_mtbf_s: 0.0,
            gray_slowdown: 2.0,
            gray_duration_s: 300.0,
            corrupt_mtbf_s: 0.0,
            corrupt_window_s: 5.0,
        }
    }

    /// A representative harsh-exascale profile with every fault class
    /// enabled, scaled by `rate`: `rate = 1` gives node crashes every
    /// ~6 h, sensor faults hourly, and occasional rail/link/gray events;
    /// `rate = 2` doubles every event frequency; `rate = 0` disables
    /// everything (equivalent to [`FaultConfig::none`]).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn exascale(seed: u64, rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite, >= 0");
        let mtbf = |base_s: f64| if rate == 0.0 { 0.0 } else { base_s / rate };
        FaultConfig {
            seed,
            node_mtbf_s: mtbf(6.0 * 3600.0),
            weibull_shape: 0.7, // infant mortality dominates in practice
            repair_time_s: 120.0,
            sensor_mtbf_s: mtbf(3600.0),
            sensor_outage_s: 30.0,
            stuck_fraction: 0.3,
            power_spike_mtbf_s: mtbf(2.0 * 3600.0),
            power_spike_w: 60.0,
            power_spike_s: 5.0,
            link_mtbf_s: mtbf(4.0 * 3600.0),
            link_factor: 0.25,
            link_outage_s: 60.0,
            gray_mtbf_s: mtbf(8.0 * 3600.0),
            gray_slowdown: 2.0,
            gray_duration_s: 300.0,
            corrupt_mtbf_s: mtbf(12.0 * 3600.0),
            corrupt_window_s: 5.0,
        }
    }
}

/// One class of injected fault, with its effect window where relevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node dies, losing in-flight (uncheckpointed) work.
    NodeCrash {
        /// Crashed node id.
        node: usize,
    },
    /// The node rejoins after repair.
    NodeRepair {
        /// Repaired node id.
        node: usize,
    },
    /// The node's thermal/power sensor returns nothing until `until_s`.
    SensorDropout {
        /// Affected node id.
        node: usize,
        /// End of the outage, seconds.
        until_s: f64,
    },
    /// The node's sensor freezes at its last reading until `until_s`.
    SensorStuck {
        /// Affected node id.
        node: usize,
        /// End of the stuck window, seconds.
        until_s: f64,
    },
    /// The node draws `extra_w` additional watts until `until_s`.
    PowerSpike {
        /// Affected node id.
        node: usize,
        /// Additional draw, watts.
        extra_w: f64,
        /// End of the spike, seconds.
        until_s: f64,
    },
    /// Cluster interconnect bandwidth is multiplied by `factor` until
    /// `until_s`.
    LinkDegraded {
        /// Bandwidth multiplier in `(0, 1]`.
        factor: f64,
        /// End of the degradation, seconds.
        until_s: f64,
    },
    /// The node silently runs `slowdown`× slower until `until_s`.
    GraySlowdown {
        /// Affected node id.
        node: usize,
        /// Execution-time multiplier, > 1.
        slowdown: f64,
        /// End of the episode, seconds.
        until_s: f64,
    },
    /// Results computed on the node come back bit-flipped until
    /// `until_s` (silent data corruption; the consuming layer decides
    /// whether its integrity checks catch it).
    DataCorruption {
        /// Affected node id.
        node: usize,
        /// End of the corruption window, seconds.
        until_s: f64,
    },
}

impl FaultKind {
    fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "crash",
            FaultKind::NodeRepair { .. } => "repair",
            FaultKind::SensorDropout { .. } => "sensor-dropout",
            FaultKind::SensorStuck { .. } => "sensor-stuck",
            FaultKind::PowerSpike { .. } => "power-spike",
            FaultKind::LinkDegraded { .. } => "link-degraded",
            FaultKind::GraySlowdown { .. } => "gray-slowdown",
            FaultKind::DataCorruption { .. } => "data-corruption",
        }
    }
}

/// A timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Injection time, seconds.
    pub time_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// What a consumer should expect from a sensor at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorEffect {
    /// The sensor reads normally.
    Ok,
    /// The sensor returns nothing (reading is missing).
    Dropped,
    /// The sensor repeats whatever it last read at `since_s`; the
    /// monitor owns that value, the injector only reports the freeze.
    StuckSince(f64),
}

/// The complete, immutable fault timeline of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    nodes: usize,
    horizon_s: f64,
}

impl FaultSchedule {
    /// Generates the schedule for `nodes` nodes over `[0, horizon_s)`.
    ///
    /// Deterministic: the same (`config`, `nodes`, `horizon_s`) triple
    /// always produces the identical event list.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not positive and finite, or if the config
    /// contains non-finite rates.
    pub fn generate(config: &FaultConfig, nodes: usize, horizon_s: f64) -> Self {
        assert!(
            horizon_s > 0.0 && horizon_s.is_finite(),
            "horizon must be positive and finite"
        );
        let mut events: Vec<FaultEvent> = Vec::new();

        // Each (fault class, node) pair draws from its own SplitMix-derived
        // stream so adding a class or a node never perturbs the others.
        let stream = |class: u64, node: u64| -> StdRng {
            StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(class.wrapping_mul(0x2545_F491_4F6C_DD1D))
                    .wrapping_add(node),
            )
        };

        for node in 0..nodes {
            // crashes: Weibull renewal process with repair downtime
            if config.node_mtbf_s > 0.0 {
                let mut rng = stream(1, node as u64);
                let scale = weibull_scale(config.node_mtbf_s, config.weibull_shape);
                let mut t = 0.0;
                loop {
                    t += weibull_sample(&mut rng, config.weibull_shape, scale);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        kind: FaultKind::NodeCrash { node },
                    });
                    t += config.repair_time_s;
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        kind: FaultKind::NodeRepair { node },
                    });
                }
            }

            // sensor faults: Poisson arrivals, dropout or stuck-at
            if config.sensor_mtbf_s > 0.0 {
                let mut rng = stream(2, node as u64);
                let mut t = 0.0;
                loop {
                    t += exponential_sample(&mut rng, config.sensor_mtbf_s);
                    if t >= horizon_s {
                        break;
                    }
                    let until_s = t + config.sensor_outage_s;
                    let kind = if rng.gen_bool(config.stuck_fraction) {
                        FaultKind::SensorStuck { node, until_s }
                    } else {
                        FaultKind::SensorDropout { node, until_s }
                    };
                    events.push(FaultEvent { time_s: t, kind });
                    t = until_s;
                }
            }

            // power-rail spikes
            if config.power_spike_mtbf_s > 0.0 {
                let mut rng = stream(3, node as u64);
                let mut t = 0.0;
                loop {
                    t += exponential_sample(&mut rng, config.power_spike_mtbf_s);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        kind: FaultKind::PowerSpike {
                            node,
                            extra_w: config.power_spike_w,
                            until_s: t + config.power_spike_s,
                        },
                    });
                    t += config.power_spike_s;
                }
            }

            // gray failures
            if config.gray_mtbf_s > 0.0 {
                let mut rng = stream(4, node as u64);
                let mut t = 0.0;
                loop {
                    t += exponential_sample(&mut rng, config.gray_mtbf_s);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        kind: FaultKind::GraySlowdown {
                            node,
                            slowdown: config.gray_slowdown,
                            until_s: t + config.gray_duration_s,
                        },
                    });
                    t += config.gray_duration_s;
                }
            }

            // silent data-corruption windows
            if config.corrupt_mtbf_s > 0.0 {
                let mut rng = stream(6, node as u64);
                let mut t = 0.0;
                loop {
                    t += exponential_sample(&mut rng, config.corrupt_mtbf_s);
                    if t >= horizon_s {
                        break;
                    }
                    events.push(FaultEvent {
                        time_s: t,
                        kind: FaultKind::DataCorruption {
                            node,
                            until_s: t + config.corrupt_window_s,
                        },
                    });
                    t += config.corrupt_window_s;
                }
            }
        }

        // interconnect: one cluster-wide stream
        if config.link_mtbf_s > 0.0 {
            let mut rng = stream(5, 0);
            let mut t = 0.0;
            loop {
                t += exponential_sample(&mut rng, config.link_mtbf_s);
                if t >= horizon_s {
                    break;
                }
                events.push(FaultEvent {
                    time_s: t,
                    kind: FaultKind::LinkDegraded {
                        factor: config.link_factor,
                        until_s: t + config.link_outage_s,
                    },
                });
                t += config.link_outage_s;
            }
        }

        // deterministic global order: time, then node, then class label
        events.sort_by(|a, b| {
            a.time_s
                .total_cmp(&b.time_s)
                .then_with(|| event_node(a).cmp(&event_node(b)))
                .then_with(|| a.kind.label().cmp(b.kind.label()))
        });

        FaultSchedule {
            events,
            nodes,
            horizon_s,
        }
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no faults were scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Node count the schedule was generated for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Horizon the schedule covers, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Is `node` up at time `t` (not between a crash and its repair)?
    pub fn node_alive(&self, node: usize, t: f64) -> bool {
        let mut alive = true;
        for event in &self.events {
            if event.time_s > t {
                break;
            }
            match event.kind {
                FaultKind::NodeCrash { node: n } if n == node => alive = false,
                FaultKind::NodeRepair { node: n } if n == node => alive = true,
                _ => {}
            }
        }
        alive
    }

    /// Crash times of `node` within `[from_s, to_s)`.
    pub fn crashes_between(&self, node: usize, from_s: f64, to_s: f64) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.time_s >= from_s && e.time_s < to_s)
            .filter_map(|e| match e.kind {
                FaultKind::NodeCrash { node: n } if n == node => Some(e.time_s),
                _ => None,
            })
            .collect()
    }

    /// Crash times of any node within `[from_s, to_s)` — the events a
    /// coordinated (all-nodes) checkpoint scheme must survive.
    pub fn any_crash_between(&self, from_s: f64, to_s: f64) -> Vec<f64> {
        self.events
            .iter()
            .filter(|e| e.time_s >= from_s && e.time_s < to_s)
            .filter_map(|e| match e.kind {
                FaultKind::NodeCrash { .. } => Some(e.time_s),
                _ => None,
            })
            .collect()
    }

    /// What the sensor of `node` does at time `t`.
    pub fn sensor_effect(&self, node: usize, t: f64) -> SensorEffect {
        // last wins when windows overlap (later fault supersedes)
        let mut effect = SensorEffect::Ok;
        for event in &self.events {
            if event.time_s > t {
                break;
            }
            match event.kind {
                FaultKind::SensorDropout { node: n, until_s } if n == node && t < until_s => {
                    effect = SensorEffect::Dropped;
                }
                FaultKind::SensorStuck { node: n, until_s } if n == node && t < until_s => {
                    effect = SensorEffect::StuckSince(event.time_s);
                }
                _ => {}
            }
        }
        effect
    }

    /// Extra power drawn by `node` at time `t` from active rail spikes,
    /// watts.
    pub fn power_extra_w(&self, node: usize, t: f64) -> f64 {
        self.events
            .iter()
            .take_while(|e| e.time_s <= t)
            .filter_map(|e| match e.kind {
                FaultKind::PowerSpike {
                    node: n,
                    extra_w,
                    until_s,
                } if n == node && t < until_s => Some(extra_w),
                _ => None,
            })
            .sum()
    }

    /// Interconnect bandwidth multiplier at time `t` (1.0 = healthy).
    pub fn link_factor(&self, t: f64) -> f64 {
        self.events
            .iter()
            .take_while(|e| e.time_s <= t)
            .filter_map(|e| match e.kind {
                FaultKind::LinkDegraded { factor, until_s } if t < until_s => Some(factor),
                _ => None,
            })
            .fold(1.0, f64::min)
    }

    /// Execution slowdown of `node` at time `t` (1.0 = full speed).
    pub fn slowdown(&self, node: usize, t: f64) -> f64 {
        self.events
            .iter()
            .take_while(|e| e.time_s <= t)
            .filter_map(|e| match e.kind {
                FaultKind::GraySlowdown {
                    node: n,
                    slowdown,
                    until_s,
                } if n == node && t < until_s => Some(slowdown),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Is a result computed on `node` at time `t` silently bit-flipped?
    /// The serving layer's end-to-end integrity checks consume this.
    pub fn corrupted(&self, node: usize, t: f64) -> bool {
        self.events
            .iter()
            .take_while(|e| e.time_s <= t)
            .any(|e| match e.kind {
                FaultKind::DataCorruption { node: n, until_s } => n == node && t < until_s,
                _ => false,
            })
    }

    /// Stable 64-bit digest of the full schedule (FNV-1a over the event
    /// encoding). Two schedules are byte-identical iff digests and
    /// [`FaultSchedule::summary`] strings match — the determinism tests
    /// and the campaign reports both rely on this.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for event in &self.events {
            eat(&event.time_s.to_bits().to_le_bytes());
            eat(event.kind.label().as_bytes());
            eat(&(event_node(event).unwrap_or(usize::MAX) as u64).to_le_bytes());
        }
        hash
    }

    /// Per-class event counts, deterministically formatted.
    pub fn summary(&self) -> String {
        let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for event in &self.events {
            *counts.entry(event.kind.label()).or_default() += 1;
        }
        if counts.is_empty() {
            return "no faults".to_string();
        }
        counts
            .iter()
            .map(|(label, count)| format!("{label}={count}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults over {:.0} s on {} nodes ({})",
            self.len(),
            self.horizon_s,
            self.nodes,
            self.summary()
        )
    }
}

fn event_node(event: &FaultEvent) -> Option<usize> {
    match event.kind {
        FaultKind::NodeCrash { node }
        | FaultKind::NodeRepair { node }
        | FaultKind::SensorDropout { node, .. }
        | FaultKind::SensorStuck { node, .. }
        | FaultKind::PowerSpike { node, .. }
        | FaultKind::GraySlowdown { node, .. }
        | FaultKind::DataCorruption { node, .. } => Some(node),
        FaultKind::LinkDegraded { .. } => None,
    }
}

/// Draws an exponential inter-arrival time with the given mean.
fn exponential_sample(rng: &mut impl Rng, mean_s: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean_s * u.ln()
}

/// Draws a Weibull(k, λ) sample by inversion.
fn weibull_sample(rng: &mut impl Rng, shape: f64, scale: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    scale * (-u.ln()).powf(1.0 / shape)
}

/// Scale λ such that a Weibull(k, λ) has the requested mean:
/// mean = λ·Γ(1 + 1/k).
fn weibull_scale(mean_s: f64, shape: f64) -> f64 {
    assert!(shape > 0.0, "Weibull shape must be positive");
    mean_s / gamma(1.0 + 1.0 / shape)
}

/// Lanczos approximation of Γ(x) for x > 0 (plenty for shape factors).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // published g=7, n=9 Lanczos coefficients, kept verbatim
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection: Γ(x)Γ(1-x) = π / sin(πx)
        return std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x));
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harsh(seed: u64) -> FaultSchedule {
        FaultSchedule::generate(&FaultConfig::exascale(seed, 4.0), 8, 24.0 * 3600.0)
    }

    #[test]
    fn same_seed_identical_schedule() {
        let a = harsh(99);
        let b = harsh(99);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(harsh(1).digest(), harsh(2).digest());
    }

    #[test]
    fn zero_rate_is_fault_free() {
        let schedule = FaultSchedule::generate(&FaultConfig::none(5), 16, 3600.0);
        assert!(schedule.is_empty());
        assert_eq!(schedule.summary(), "no faults");
        assert!(schedule.node_alive(3, 1800.0));
        assert_eq!(schedule.sensor_effect(3, 1800.0), SensorEffect::Ok);
        assert_eq!(schedule.power_extra_w(3, 1800.0), 0.0);
        assert_eq!(schedule.link_factor(1800.0), 1.0);
        assert_eq!(schedule.slowdown(3, 1800.0), 1.0);
        let rate0 = FaultSchedule::generate(&FaultConfig::exascale(5, 0.0), 16, 3600.0);
        assert!(rate0.is_empty(), "rate 0 == disabled");
    }

    #[test]
    fn events_time_ordered() {
        let schedule = harsh(7);
        assert!(!schedule.is_empty(), "harsh profile must produce faults");
        for pair in schedule.events().windows(2) {
            assert!(pair[0].time_s <= pair[1].time_s);
        }
    }

    #[test]
    fn crash_repair_alternate_per_node() {
        let schedule = harsh(11);
        for node in 0..schedule.nodes() {
            let mut expect_crash = true;
            for event in schedule.events() {
                match event.kind {
                    FaultKind::NodeCrash { node: n } if n == node => {
                        assert!(expect_crash, "two crashes without repair on {node}");
                        expect_crash = false;
                    }
                    FaultKind::NodeRepair { node: n } if n == node => {
                        assert!(!expect_crash, "repair without crash on {node}");
                        expect_crash = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn node_alive_tracks_crash_windows() {
        let schedule = harsh(13);
        let crash = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::NodeCrash { node } => Some((e.time_s, node)),
                _ => None,
            })
            .expect("harsh profile crashes");
        let (t, node) = crash;
        assert!(schedule.node_alive(node, t - 1.0));
        assert!(!schedule.node_alive(node, t + 1.0));
        // after repair (120 s) the node is back, unless it crashed again
        let after = t + 121.0;
        if schedule.crashes_between(node, t + 1.0, after).is_empty() {
            assert!(schedule.node_alive(node, after));
        }
    }

    #[test]
    fn sensor_effects_cover_windows() {
        let schedule = harsh(17);
        let mut saw_drop = false;
        let mut saw_stuck = false;
        for event in schedule.events() {
            match event.kind {
                FaultKind::SensorDropout { node, until_s } => {
                    saw_drop = true;
                    let mid = (event.time_s + until_s) / 2.0;
                    assert_eq!(schedule.sensor_effect(node, mid), SensorEffect::Dropped);
                    assert_eq!(
                        schedule.sensor_effect(node, until_s + 1e-6),
                        schedule.sensor_effect(node, until_s + 1e-6),
                    );
                }
                FaultKind::SensorStuck { node, until_s } => {
                    saw_stuck = true;
                    let mid = (event.time_s + until_s) / 2.0;
                    assert_eq!(
                        schedule.sensor_effect(node, mid),
                        SensorEffect::StuckSince(event.time_s)
                    );
                }
                _ => {}
            }
        }
        assert!(saw_drop && saw_stuck, "both sensor modes exercised");
    }

    #[test]
    fn spikes_links_and_gray_report_effects() {
        let schedule = harsh(19);
        let spike = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::PowerSpike { node, extra_w, .. } => Some((e.time_s, node, extra_w)),
                _ => None,
            })
            .expect("spikes scheduled");
        assert_eq!(schedule.power_extra_w(spike.1, spike.0 + 1.0), spike.2);
        let link = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::LinkDegraded { factor, .. } => Some((e.time_s, factor)),
                _ => None,
            })
            .expect("link events scheduled");
        assert_eq!(schedule.link_factor(link.0 + 1.0), link.1);
        let gray = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::GraySlowdown { node, slowdown, .. } => Some((e.time_s, node, slowdown)),
                _ => None,
            })
            .expect("gray events scheduled");
        assert_eq!(schedule.slowdown(gray.1, gray.0 + 1.0), gray.2);
    }

    #[test]
    fn mtbf_roughly_respected_for_exponential_shape() {
        let mut config = FaultConfig::none(23);
        config.node_mtbf_s = 1000.0;
        config.weibull_shape = 1.0;
        config.repair_time_s = 0.0;
        let horizon = 2_000_000.0;
        let schedule = FaultSchedule::generate(&config, 1, horizon);
        let crashes = schedule.any_crash_between(0.0, horizon).len() as f64;
        let expected = horizon / 1000.0;
        assert!(
            (crashes - expected).abs() < expected * 0.1,
            "observed {crashes} crashes, expected ~{expected}"
        );
    }

    #[test]
    fn gamma_sanity() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let _ = FaultSchedule::generate(&FaultConfig::none(1), 4, 0.0);
    }

    #[test]
    fn corruption_windows_are_queryable_and_deterministic() {
        let mut config = FaultConfig::none(31);
        config.corrupt_mtbf_s = 200.0;
        config.corrupt_window_s = 10.0;
        let schedule = FaultSchedule::generate(&config, 4, 3600.0);
        let window = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::DataCorruption { node, until_s } => Some((e.time_s, node, until_s)),
                _ => None,
            })
            .expect("corruption windows scheduled");
        let (start, node, until) = window;
        assert!(schedule.corrupted(node, (start + until) / 2.0));
        assert!(!schedule.corrupted(node, start - 1e-6));
        assert!(!schedule.corrupted(node, until), "window end is exclusive");
        let again = FaultSchedule::generate(&config, 4, 3600.0);
        assert_eq!(schedule, again);
        // other classes' streams are untouched by enabling corruption
        let mut crashes_only = FaultConfig::none(31);
        crashes_only.node_mtbf_s = 500.0;
        let mut both = crashes_only.clone();
        both.corrupt_mtbf_s = 200.0;
        let a = FaultSchedule::generate(&crashes_only, 4, 3600.0);
        let b = FaultSchedule::generate(&both, 4, 3600.0);
        assert_eq!(
            a.any_crash_between(0.0, 3600.0),
            b.any_crash_between(0.0, 3600.0)
        );
    }

    #[test]
    fn crash_queries_at_exact_event_timestamps() {
        let schedule = harsh(29);
        let (t, node) = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::NodeCrash { node } => Some((e.time_s, node)),
                _ => None,
            })
            .expect("harsh profile crashes");
        // the from bound is inclusive, the to bound exclusive
        assert_eq!(schedule.crashes_between(node, t, t + 1e-9), vec![t]);
        assert!(schedule.crashes_between(node, t - 1.0, t).is_empty());
        assert!(schedule.any_crash_between(t, t + 1e-9).contains(&t));
        assert!(!schedule.any_crash_between(t - 1.0, t).contains(&t));
    }

    #[test]
    fn zero_length_windows_contain_nothing() {
        let schedule = harsh(37);
        let t = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::NodeCrash { .. } => Some(e.time_s),
                _ => None,
            })
            .expect("harsh profile crashes");
        assert!(schedule.any_crash_between(t, t).is_empty());
        for node in 0..schedule.nodes() {
            assert!(schedule.crashes_between(node, t, t).is_empty());
        }
    }

    #[test]
    fn node_alive_at_domain_boundaries() {
        let schedule = harsh(41);
        let horizon = schedule.horizon_s();
        for node in 0..schedule.nodes() {
            assert!(schedule.node_alive(node, 0.0), "every node starts alive");
        }
        // at the horizon the answer is still well-defined: dead only if
        // the last crash of the node has no later repair
        for node in 0..schedule.nodes() {
            let mut alive = true;
            for event in schedule.events() {
                match event.kind {
                    FaultKind::NodeCrash { node: n } if n == node => alive = false,
                    FaultKind::NodeRepair { node: n } if n == node => alive = true,
                    _ => {}
                }
            }
            assert_eq!(schedule.node_alive(node, horizon), alive);
        }
    }
}
