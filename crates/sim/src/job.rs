//! Work units, tasks and jobs.

/// A quantity of work characterized by its roofline demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnit {
    /// Floating-point operations to perform.
    pub flops: f64,
    /// Bytes of main-memory traffic.
    pub bytes: f64,
}

impl WorkUnit {
    /// Creates a work unit.
    ///
    /// # Panics
    ///
    /// Panics on negative quantities.
    pub fn new(flops: f64, bytes: f64) -> Self {
        assert!(flops >= 0.0 && bytes >= 0.0, "work must be non-negative");
        WorkUnit { flops, bytes }
    }

    /// Pure compute work (negligible memory traffic).
    pub fn compute_bound(flops: f64) -> Self {
        WorkUnit::new(flops, flops / 64.0)
    }

    /// Streaming work (negligible arithmetic): `bytes` of traffic with
    /// one flop per 16 bytes.
    pub fn memory_bound(bytes: f64) -> Self {
        WorkUnit::new(bytes / 16.0, bytes)
    }

    /// Work with a given arithmetic intensity (flops per byte).
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not positive.
    pub fn with_intensity(flops: f64, intensity: f64) -> Self {
        assert!(intensity > 0.0, "intensity must be positive");
        WorkUnit::new(flops, flops / intensity)
    }

    /// Arithmetic intensity (flops per byte); infinite for zero traffic.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Splits the work into `n` equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: usize) -> Vec<WorkUnit> {
        assert!(n > 0, "cannot split into zero chunks");
        let chunk = WorkUnit::new(self.flops / n as f64, self.bytes / n as f64);
        vec![chunk; n]
    }
}

impl std::ops::Add for WorkUnit {
    type Output = WorkUnit;

    fn add(self, rhs: WorkUnit) -> WorkUnit {
        WorkUnit::new(self.flops + rhs.flops, self.bytes + rhs.bytes)
    }
}

/// One schedulable task (e.g. a single ligand docking).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Task identifier.
    pub id: u64,
    /// The work to perform.
    pub work: WorkUnit,
}

/// A batch job as submitted to the cluster scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job identifier.
    pub id: u64,
    /// Submission time, seconds.
    pub arrival_s: f64,
    /// Nodes requested.
    pub nodes: usize,
    /// Per-node work.
    pub work_per_node: WorkUnit,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(id: u64, arrival_s: f64, nodes: usize, work_per_node: WorkUnit) -> Self {
        assert!(nodes > 0, "a job needs at least one node");
        Job {
            id,
            arrival_s,
            nodes,
            work_per_node,
        }
    }

    /// Total work across all nodes.
    pub fn total_work(&self) -> WorkUnit {
        WorkUnit::new(
            self.work_per_node.flops * self.nodes as f64,
            self.work_per_node.bytes * self.nodes as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_classification() {
        assert!(WorkUnit::compute_bound(1e9).intensity() > 10.0);
        assert!(WorkUnit::memory_bound(1e9).intensity() < 0.1);
        assert_eq!(WorkUnit::with_intensity(1e9, 4.0).intensity(), 4.0);
        assert_eq!(WorkUnit::new(1.0, 0.0).intensity(), f64::INFINITY);
    }

    #[test]
    fn split_conserves_work() {
        let w = WorkUnit::new(100.0, 40.0);
        let parts = w.split(8);
        assert_eq!(parts.len(), 8);
        let total = parts
            .into_iter()
            .fold(WorkUnit::new(0.0, 0.0), |a, b| a + b);
        assert!((total.flops - 100.0).abs() < 1e-9);
        assert!((total.bytes - 40.0).abs() < 1e-9);
    }

    #[test]
    fn job_total_work() {
        let job = Job::new(1, 0.0, 4, WorkUnit::new(10.0, 2.0));
        assert_eq!(job.total_work().flops, 40.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_rejected() {
        let _ = WorkUnit::new(-1.0, 0.0);
    }
}
