//! Cluster interconnect: α-β point-to-point and collective models.
//!
//! The paper's platforms run Intel TrueScale InfiniBand (§VI). Multi-node
//! jobs pay communication that grows with scale, which is what bends the
//! use-case scaling curves away from ideal in the exascale extrapolation
//! (experiment C5). The model is the classical α-β (latency-bandwidth)
//! one, with log-tree collectives.

/// An α-β interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-message latency (α), seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl Interconnect {
    /// A TrueScale-class QDR InfiniBand fabric: ~1.5 µs latency,
    /// ~3.2 GB/s effective per-link bandwidth.
    pub fn truescale_qdr() -> Self {
        Interconnect {
            latency_s: 1.5e-6,
            bandwidth_bps: 3.2e9,
        }
    }

    /// Point-to-point transfer time for a message of `bytes`.
    pub fn p2p_s(&self, bytes: f64) -> f64 {
        self.latency_s + bytes.max(0.0) / self.bandwidth_bps
    }

    /// Barrier across `ranks` (log-tree of empty messages).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn barrier_s(&self, ranks: usize) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        (ranks as f64).log2().ceil().max(0.0) * self.latency_s
    }

    /// Allreduce of `bytes` across `ranks` (recursive-doubling shape:
    /// `2·log₂(n)` message steps carrying the payload).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    pub fn allreduce_s(&self, ranks: usize, bytes: f64) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        if ranks == 1 {
            return 0.0;
        }
        let steps = (ranks as f64).log2().ceil();
        2.0 * steps * self.p2p_s(bytes)
    }

    /// Wall-clock time of an iterative bulk-synchronous job on `ranks`
    /// nodes: per-iteration compute divided across ranks, plus one
    /// allreduce of `reduce_bytes` per iteration. This is the scaling
    /// shape of both use cases (docking reduces hit lists; navigation
    /// servers exchange traffic state).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or `per_iter_compute_s` is negative.
    pub fn bsp_time_s(
        &self,
        ranks: usize,
        iterations: u64,
        per_iter_compute_s: f64,
        reduce_bytes: f64,
    ) -> f64 {
        assert!(ranks > 0, "need at least one rank");
        assert!(
            per_iter_compute_s >= 0.0,
            "compute time must be non-negative"
        );
        let per_iter = per_iter_compute_s / ranks as f64 + self.allreduce_s(ranks, reduce_bytes);
        per_iter * iterations as f64
    }

    /// Parallel efficiency of the BSP job at `ranks` vs one rank.
    pub fn bsp_efficiency(
        &self,
        ranks: usize,
        iterations: u64,
        per_iter_compute_s: f64,
        reduce_bytes: f64,
    ) -> f64 {
        let serial = self.bsp_time_s(1, iterations, per_iter_compute_s, reduce_bytes);
        let parallel = self.bsp_time_s(ranks, iterations, per_iter_compute_s, reduce_bytes);
        serial / (parallel * ranks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_latency_and_bandwidth_regimes() {
        let net = Interconnect::truescale_qdr();
        // tiny message: latency-dominated
        let tiny = net.p2p_s(8.0);
        assert!((tiny - net.latency_s).abs() / net.latency_s < 0.01);
        // huge message: bandwidth-dominated
        let huge = net.p2p_s(3.2e9);
        assert!((huge - 1.0).abs() < 0.01);
    }

    #[test]
    fn collectives_grow_logarithmically() {
        let net = Interconnect::truescale_qdr();
        let b16 = net.barrier_s(16);
        let b256 = net.barrier_s(256);
        assert!((b256 / b16 - 2.0).abs() < 1e-9, "log2(256)/log2(16) = 2");
        assert_eq!(net.allreduce_s(1, 1e6), 0.0);
        assert!(net.allreduce_s(64, 1e6) > net.allreduce_s(8, 1e6));
    }

    #[test]
    fn bsp_scaling_has_a_knee() {
        let net = Interconnect::truescale_qdr();
        // 1 s of compute per iteration, 1 MB allreduce
        let t1 = net.bsp_time_s(1, 100, 1.0, 1e6);
        let t64 = net.bsp_time_s(64, 100, 1.0, 1e6);
        let t4096 = net.bsp_time_s(4096, 100, 1.0, 1e6);
        assert!(t64 < t1 / 20.0, "64 ranks speed up well");
        // at 4096 ranks communication dominates: adding ranks stops helping
        assert!(t4096 > t64 / 64.0 * 4.0, "communication bends the curve");
        // efficiency degrades monotonically
        let e = |n| net.bsp_efficiency(n, 100, 1.0, 1e6);
        assert!(e(8) > e(64));
        assert!(e(64) > e(1024));
        assert!(e(8) <= 1.0 + 1e-9);
    }

    #[test]
    fn communication_free_job_scales_ideally() {
        let net = Interconnect::truescale_qdr();
        let e = net.bsp_efficiency(256, 10, 1.0, 0.0);
        // only barrier-free allreduce latency remains (zero bytes still
        // pays alpha): near-ideal but not perfect
        assert!(e > 0.99, "efficiency {e}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Interconnect::truescale_qdr().barrier_s(0);
    }
}
