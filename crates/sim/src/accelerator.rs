//! Accelerator models: GPGPU and MIC (Intel Xeon Phi).
//!
//! "Green HPC systems ... employing increasingly heterogeneous
//! architectures with GPGPU or MIC accelerators. On average, the
//! efficiency of heterogeneous systems is almost three times that of
//! homogeneous systems" (§I). Accelerators here are simple roofline
//! devices: peak FLOP/s, memory bandwidth, TDP, plus an offload
//! efficiency capturing kernel-launch and PCIe overheads.

/// The accelerator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// A discrete GPU (Kepler/Tesla class in the paper's timeframe).
    Gpgpu,
    /// An Intel Xeon Phi (MIC) coprocessor (Knights Corner class).
    MicPhi,
}

/// Specification of one accelerator card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorSpec {
    /// Family.
    pub kind: AcceleratorKind,
    /// Peak double-precision throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Board power at full load, watts.
    pub tdp_w: f64,
    /// Idle board power, watts.
    pub idle_w: f64,
    /// Fraction of peak achievable on well-mapped kernels (offload +
    /// occupancy efficiency).
    pub efficiency: f64,
}

impl AcceleratorSpec {
    /// A Tesla K40-class GPGPU: 1430 DP GFLOP/s, 288 GB/s, 235 W.
    pub fn tesla_k40() -> Self {
        AcceleratorSpec {
            kind: AcceleratorKind::Gpgpu,
            peak_gflops: 1430.0,
            mem_bw_gbs: 288.0,
            tdp_w: 235.0,
            idle_w: 25.0,
            efficiency: 0.75,
        }
    }

    /// A Xeon Phi 7120-class MIC: 1208 DP GFLOP/s, 352 GB/s, 300 W.
    pub fn xeon_phi_7120() -> Self {
        AcceleratorSpec {
            kind: AcceleratorKind::MicPhi,
            peak_gflops: 1208.0,
            mem_bw_gbs: 352.0,
            tdp_w: 300.0,
            idle_w: 40.0,
            efficiency: 0.60,
        }
    }

    /// Sustained throughput on a compute-bound kernel, GFLOP/s.
    pub fn sustained_gflops(&self) -> f64 {
        self.peak_gflops * self.efficiency
    }

    /// Roofline execution time for `flops` floating-point operations and
    /// `bytes` of device memory traffic, in seconds.
    pub fn exec_time_s(&self, flops: f64, bytes: f64) -> f64 {
        let compute = flops / (self.sustained_gflops() * 1e9);
        let memory = bytes / (self.mem_bw_gbs * 1e9);
        compute.max(memory)
    }

    /// Board power while executing with the given activity (0..=1).
    pub fn power_w(&self, activity: f64) -> f64 {
        self.idle_w + (self.tdp_w - self.idle_w) * activity.clamp(0.0, 1.0)
    }

    /// Full-load energy efficiency on compute-bound work, MFLOPS/W.
    pub fn mflops_per_watt(&self) -> f64 {
        self.sustained_gflops() * 1000.0 / self.tdp_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerators_are_an_order_more_efficient_than_cpus() {
        // Xeon socket: ~40 DP GFLOPS sustained at ~105 W -> ~400 MFLOPS/W.
        for spec in [
            AcceleratorSpec::tesla_k40(),
            AcceleratorSpec::xeon_phi_7120(),
        ] {
            let eff = spec.mflops_per_watt();
            assert!(
                eff > 2000.0,
                "{:?} efficiency {eff} MFLOPS/W too low",
                spec.kind
            );
        }
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let gpu = AcceleratorSpec::tesla_k40();
        // compute-bound: lots of flops, no bytes
        let t_compute = gpu.exec_time_s(1e12, 0.0);
        assert!((t_compute - 1e12 / (gpu.sustained_gflops() * 1e9)).abs() < 1e-12);
        // memory-bound: 1 TB of traffic dominates
        let t_mem = gpu.exec_time_s(1e9, 1e12);
        assert!((t_mem - 1e12 / (288.0 * 1e9)).abs() < 1e-9);
        assert!(t_mem > gpu.exec_time_s(1e9, 0.0));
    }

    #[test]
    fn power_interpolates_between_idle_and_tdp() {
        let mic = AcceleratorSpec::xeon_phi_7120();
        assert_eq!(mic.power_w(0.0), mic.idle_w);
        assert_eq!(mic.power_w(1.0), mic.tdp_w);
        let half = mic.power_w(0.5);
        assert!(half > mic.idle_w && half < mic.tdp_w);
    }
}
