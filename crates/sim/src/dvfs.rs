//! DVFS: P-states (frequency/voltage pairs).
//!
//! P-states are the classical performance/energy knob the paper's RTRM
//! leverages (§V: "classical performance/energy control knobs (job
//! dispatching, resource management and DVFS)"). Voltage scales roughly
//! linearly with frequency in the DVFS region, so dynamic power grows
//! ≈ f³ while compute-bound runtime shrinks ≈ 1/f — the tension that
//! creates a non-trivial energy-optimal frequency.

/// One performance state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// Core frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// An ordered table of P-states, slowest first.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// Builds a table from explicit states.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or frequencies are not strictly
    /// increasing.
    pub fn new(states: Vec<PState>) -> Self {
        assert!(!states.is_empty(), "need at least one P-state");
        assert!(
            states.windows(2).all(|w| w[0].freq_ghz < w[1].freq_ghz),
            "P-states must be sorted by increasing frequency"
        );
        PStateTable { states }
    }

    /// A Haswell-like table: 1.2–3.0 GHz in 0.2 GHz steps with linear
    /// voltage scaling 0.75–1.25 V (the shape of the paper's Xeon E5 v3
    /// platforms).
    pub fn xeon_haswell() -> Self {
        let mut states = Vec::new();
        let steps = 10;
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            states.push(PState {
                freq_ghz: 1.2 + t * (3.0 - 1.2),
                voltage: 0.75 + t * (1.25 - 0.75),
            });
        }
        PStateTable::new(states)
    }

    /// The states, slowest first.
    pub fn states(&self) -> &[PState] {
        &self.states
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state at `index` (0 = slowest).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn state(&self, index: usize) -> PState {
        self.states[index]
    }

    /// Index of the fastest state.
    pub fn max_index(&self) -> usize {
        self.states.len() - 1
    }

    /// The fastest state.
    pub fn fastest(&self) -> PState {
        self.states[self.max_index()]
    }

    /// The slowest state.
    pub fn slowest(&self) -> PState {
        self.states[0]
    }

    /// Index of the state with frequency closest to `freq_ghz`.
    pub fn nearest(&self, freq_ghz: f64) -> usize {
        self.states
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1.freq_ghz - freq_ghz)
                    .abs()
                    .total_cmp(&(b.1.freq_ghz - freq_ghz).abs())
            })
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_table_shape() {
        let table = PStateTable::xeon_haswell();
        assert_eq!(table.len(), 10);
        assert!((table.slowest().freq_ghz - 1.2).abs() < 1e-9);
        assert!((table.fastest().freq_ghz - 3.0).abs() < 1e-9);
        assert!(table.slowest().voltage < table.fastest().voltage);
    }

    #[test]
    fn nearest_lookup() {
        let table = PStateTable::xeon_haswell();
        assert_eq!(table.nearest(0.0), 0);
        assert_eq!(table.nearest(99.0), table.max_index());
        let idx = table.nearest(2.0);
        assert!((table.state(idx).freq_ghz - 2.0).abs() <= 0.11);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_states_rejected() {
        let _ = PStateTable::new(vec![
            PState {
                freq_ghz: 2.0,
                voltage: 1.0,
            },
            PState {
                freq_ghz: 1.0,
                voltage: 0.8,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_table_rejected() {
        let _ = PStateTable::new(vec![]);
    }
}
