//! Deterministic virtual schedulers for heavy-tailed task batches.
//!
//! The serving tier (and the docking use case, §VII-a of the paper)
//! replays batches of already-probed jobs onto *virtual* cores to derive
//! completion times and makespans. The replay is a pure sequential
//! function of the job costs, the placement estimates and the virtual
//! core count — never of the physical thread count — so every report
//! byte stays identical at 1/2/4/8 physical workers.
//!
//! Four policies are provided:
//!
//! * [`list_schedule`] — greedy earliest-finishing-core list scheduling
//!   in job-id order (the legacy `serve::pool` schedule, kept
//!   byte-identical);
//! * [`block_schedule`] — contiguous block partitioning, the analogue of
//!   OpenMP `schedule(static)`: the strawman that a sorted heavy-tailed
//!   library defeats;
//! * [`lpt_schedule`] — longest-processing-time-first by *estimate*, the
//!   imbalance-aware placement fallback;
//! * [`steal_schedule`] — a deterministic work-stealing discrete-event
//!   simulation: guided decreasing-chunk initial deal, idle cores steal
//!   half of the victim's queue from the back, victims ordered by
//!   (remaining estimated load desc, core index asc) and stolen jobs by
//!   id — a fixed total order, so the schedule is reproducible bit for
//!   bit.
//!
//! Placement decisions (victim choice, LPT order, load accounting) use
//! the caller-supplied *estimates*; execution time accrues the *actual*
//! costs. This mirrors a real scheduler that only knows predictions up
//! front, while keeping the replay deterministic.

use std::collections::VecDeque;

/// Scheduling policy for a virtual batch replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SchedPolicy {
    /// Greedy earliest-finishing-core list scheduling in job-id order.
    #[default]
    Static,
    /// Contiguous block partitioning (OpenMP `schedule(static)` analogue).
    Block,
    /// Longest-processing-time-first placement by cost estimate.
    Lpt,
    /// Deterministic work stealing with a guided chunked initial deal.
    WorkSteal,
}

impl SchedPolicy {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Static => "static",
            SchedPolicy::Block => "block",
            SchedPolicy::Lpt => "lpt",
            SchedPolicy::WorkSteal => "steal",
        }
    }

    /// How aggressively the policy rebalances; mixed batches resolve to
    /// the most dynamic policy among their tenant classes.
    pub fn dynamism(&self) -> u8 {
        match self {
            SchedPolicy::Static => 0,
            SchedPolicy::Block => 1,
            SchedPolicy::Lpt => 2,
            SchedPolicy::WorkSteal => 3,
        }
    }
}

/// Counters describing how a schedule was produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Number of successful steal transactions.
    pub steals: u64,
    /// Failed steal probes: peers scanned during victim selection whose
    /// queue turned out to be empty.
    pub steal_fails: u64,
    /// Ids of jobs that migrated away from the core they were dealt to.
    pub stolen_jobs: Vec<usize>,
    /// Deepest per-core queue observed (after the initial deal and any
    /// steals).
    pub max_queue_depth: usize,
}

/// A fully-resolved virtual schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Virtual completion time of each job, in job-id order.
    pub completions: Vec<f64>,
    /// Virtual core each job executed on, in job-id order.
    pub assignments: Vec<usize>,
    /// Latest completion time (0.0 for an empty batch).
    pub makespan_s: f64,
    /// Steal/queue accounting for observability.
    pub stats: SchedStats,
}

impl Schedule {
    fn from_parts(completions: Vec<f64>, assignments: Vec<usize>, stats: SchedStats) -> Self {
        let makespan_s = completions.iter().fold(0.0, |a: f64, &b| a.max(b));
        Schedule {
            completions,
            assignments,
            makespan_s,
            stats,
        }
    }
}

/// Dispatch to the scheduler selected by `policy`.
///
/// `costs` are the observed per-job execution costs; `estimates` are the
/// predicted costs used for placement decisions (pass `costs` again for
/// a perfect estimator). Both slices must have equal length.
pub fn schedule(policy: SchedPolicy, costs: &[f64], estimates: &[f64], cores: usize) -> Schedule {
    assert_eq!(
        costs.len(),
        estimates.len(),
        "costs and estimates must align"
    );
    match policy {
        SchedPolicy::Static => list_schedule(costs, cores),
        SchedPolicy::Block => block_schedule(costs, cores),
        SchedPolicy::Lpt => lpt_schedule(costs, estimates, cores),
        SchedPolicy::WorkSteal => steal_schedule(costs, estimates, cores),
    }
}

/// Greedy earliest-finishing-core list schedule in job-id order.
///
/// Byte-identical to the legacy `serve::pool` virtual schedule: each job
/// goes to the core with the smallest accumulated busy time (ties break
/// to the lowest core index) and costs are floored at zero.
pub fn list_schedule(costs: &[f64], cores: usize) -> Schedule {
    let cores = cores.max(1);
    let mut busy_until = vec![0.0f64; cores];
    let mut assignments = Vec::with_capacity(costs.len());
    let completions = costs
        .iter()
        .map(|&cost| {
            let core = busy_until
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            busy_until[core] += cost.max(0.0);
            assignments.push(core);
            busy_until[core]
        })
        .collect();
    Schedule::from_parts(completions, assignments, SchedStats::default())
}

/// Contiguous block partition: job `i` of `n` runs on core
/// `i * cores / n`, jobs within a block run in id order.
pub fn block_schedule(costs: &[f64], cores: usize) -> Schedule {
    let cores = cores.max(1);
    let n = costs.len();
    let mut busy_until = vec![0.0f64; cores];
    let mut assignments = Vec::with_capacity(n);
    let completions = costs
        .iter()
        .enumerate()
        .map(|(i, &cost)| {
            let core = (i * cores / n.max(1)).min(cores - 1);
            busy_until[core] += cost.max(0.0);
            assignments.push(core);
            busy_until[core]
        })
        .collect();
    Schedule::from_parts(completions, assignments, SchedStats::default())
}

/// Longest-processing-time-first placement by estimate.
///
/// Jobs are placed in decreasing-estimate order (ties break to the lower
/// job id) onto the core with the least *estimated* accumulated load
/// (ties to the lowest core index); each core then executes its jobs in
/// id order and completion times accrue the actual costs.
pub fn lpt_schedule(costs: &[f64], estimates: &[f64], cores: usize) -> Schedule {
    let cores = cores.max(1);
    let n = costs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(&b)));
    let mut est_load = vec![0.0f64; cores];
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); cores];
    for &job in &order {
        let core = est_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        est_load[core] += estimates[job].max(0.0);
        queues[core].push(job);
    }
    let mut completions = vec![0.0f64; n];
    let mut assignments = vec![0usize; n];
    for (core, queue) in queues.iter_mut().enumerate() {
        queue.sort_unstable();
        let mut now = 0.0f64;
        for &job in queue.iter() {
            now += costs[job].max(0.0);
            completions[job] = now;
            assignments[job] = core;
        }
    }
    Schedule::from_parts(completions, assignments, SchedStats::default())
}

/// Smallest chunk a guided deal or a steal will move as one unit.
const MIN_CHUNK: usize = 1;

/// Deterministic work-stealing schedule.
///
/// The batch is dealt to the cores round-robin in guided decreasing
/// chunks (`remaining / (2 * cores)`, floored at one job), then a
/// sequential discrete-event simulation replays execution: the core with
/// the earliest virtual clock (ties to the lowest index) pops the front
/// of its own queue; an idle core steals the back half of the queue of
/// the victim with the largest remaining *estimated* load (ties to the
/// lowest victim index; stolen jobs keep ascending id order). The
/// ordering is total, so the schedule is a pure function of
/// `(costs, estimates, cores)`.
pub fn steal_schedule(costs: &[f64], estimates: &[f64], cores: usize) -> Schedule {
    let cores = cores.max(1);
    let n = costs.len();
    let mut stats = SchedStats::default();
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); cores];
    let mut est_remaining = vec![0.0f64; cores];

    // Guided decreasing-chunk deal in job-id order.
    let mut next = 0usize;
    let mut core = 0usize;
    while next < n {
        let remaining = n - next;
        let chunk = (remaining / (2 * cores)).max(MIN_CHUNK).min(remaining);
        for (job, est) in estimates.iter().enumerate().skip(next).take(chunk) {
            queues[core].push_back(job);
            est_remaining[core] += est.max(0.0);
        }
        next += chunk;
        core = (core + 1) % cores;
    }
    stats.max_queue_depth = queues.iter().map(VecDeque::len).max().unwrap_or(0);

    let mut now = vec![0.0f64; cores];
    let mut live = vec![true; cores];
    let mut completions = vec![0.0f64; n];
    let mut assignments = vec![0usize; n];
    let mut done = 0usize;
    while done < n {
        // Earliest virtual clock among live cores; ties to lowest index.
        let c = (0..cores)
            .filter(|&c| live[c])
            .min_by(|&a, &b| now[a].total_cmp(&now[b]).then(a.cmp(&b)))
            .expect("jobs remain, so a live core must too");
        if let Some(job) = queues[c].pop_front() {
            est_remaining[c] -= estimates[job].max(0.0);
            completions[job] = now[c] + costs[job].max(0.0);
            assignments[job] = c;
            now[c] = completions[job];
            done += 1;
            continue;
        }
        // Steal: victim with the largest remaining estimated load,
        // ties to the lowest victim index. Empty peers probed along the
        // way count as failed steal probes.
        let victim = (0..cores)
            .filter(|&v| {
                if v == c {
                    return false;
                }
                if queues[v].is_empty() {
                    stats.steal_fails += 1;
                    return false;
                }
                true
            })
            .max_by(|&a, &b| {
                est_remaining[a]
                    .total_cmp(&est_remaining[b])
                    .then(b.cmp(&a))
            });
        match victim {
            Some(v) => {
                let take = queues[v].len().div_ceil(2).max(MIN_CHUNK);
                let at = queues[v].len() - take;
                let mut stolen: Vec<usize> = queues[v].split_off(at).into();
                // A queue that has itself stolen before may not be
                // ascending across chunk boundaries; sorting the stolen
                // chunk by job id keeps the order total.
                stolen.sort_unstable();
                for &job in &stolen {
                    let est = estimates[job].max(0.0);
                    est_remaining[v] -= est;
                    est_remaining[c] += est;
                    queues[c].push_back(job);
                }
                stats.steals += 1;
                stats.stolen_jobs.extend(stolen);
                stats.max_queue_depth = stats.max_queue_depth.max(queues[c].len());
            }
            None => {
                stats.steal_fails += 1;
                live[c] = false;
            }
        }
    }
    Schedule::from_parts(completions, assignments, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn heavy_tailed(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| crate::workload::lognormal(&mut rng, 0.0, 0.8))
            .collect()
    }

    fn assert_valid(schedule: &Schedule, costs: &[f64], cores: usize) {
        assert_eq!(schedule.completions.len(), costs.len());
        assert_eq!(schedule.assignments.len(), costs.len());
        let total: f64 = costs.iter().map(|c| c.max(0.0)).sum();
        let lower = total / cores.max(1) as f64;
        assert!(schedule.makespan_s >= lower - 1e-9, "below the work bound");
        // Replaying each core's jobs in completion order must reproduce
        // the completion times exactly: no overlap, no gaps within a
        // core's run queue beyond idle-before-steal.
        for core in 0..cores.max(1) {
            let mut jobs: Vec<usize> = (0..costs.len())
                .filter(|&j| schedule.assignments[j] == core)
                .collect();
            jobs.sort_by(|&a, &b| schedule.completions[a].total_cmp(&schedule.completions[b]));
            let mut clock = 0.0f64;
            for &j in &jobs {
                let start = schedule.completions[j] - costs[j].max(0.0);
                assert!(start >= clock - 1e-9, "core {core} overlaps job {j}");
                clock = schedule.completions[j];
            }
        }
    }

    #[test]
    fn static_list_matches_legacy_shape() {
        let costs = vec![1.0, 1.0, 1.0, 1.0];
        let s = list_schedule(&costs, 2);
        assert_eq!(s.completions, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(s.makespan_s, 2.0);
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let costs = heavy_tailed(7, 500);
        for &cores in &[1usize, 2, 4, 8] {
            for policy in [
                SchedPolicy::Static,
                SchedPolicy::Block,
                SchedPolicy::Lpt,
                SchedPolicy::WorkSteal,
            ] {
                let s = schedule(policy, &costs, &costs, cores);
                assert_valid(&s, &costs, cores);
            }
        }
    }

    #[test]
    fn single_core_is_the_sequential_prefix_sum() {
        let costs = heavy_tailed(11, 64);
        let mut acc = 0.0;
        let expect: Vec<f64> = costs
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect();
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::Block,
            SchedPolicy::Lpt,
            SchedPolicy::WorkSteal,
        ] {
            let s = schedule(policy, &costs, &costs, 1);
            if policy == SchedPolicy::Lpt {
                // LPT reorders; only the makespan matches sequentially.
                assert!((s.makespan_s - acc).abs() < 1e-9);
            } else {
                for (got, want) in s.completions.iter().zip(&expect) {
                    assert!((got - want).abs() < 1e-9);
                }
            }
        }
    }

    /// Independent naive re-implementation of the stealing simulation,
    /// used as the reference the production code must match exactly.
    fn reference_steal(costs: &[f64], estimates: &[f64], cores: usize) -> Vec<f64> {
        let cores = cores.max(1);
        let n = costs.len();
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); cores];
        let mut next = 0usize;
        let mut core = 0usize;
        while next < n {
            let chunk = ((n - next) / (2 * cores)).max(1).min(n - next);
            queues[core].extend(next..next + chunk);
            next += chunk;
            core = (core + 1) % cores;
        }
        let mut now = vec![0.0f64; cores];
        let mut live = vec![true; cores];
        let mut completions = vec![0.0f64; n];
        let mut done = 0;
        while done < n {
            let mut c = usize::MAX;
            for cand in 0..cores {
                if live[cand] && (c == usize::MAX || now[cand] < now[c]) {
                    c = cand;
                }
            }
            if queues[c].is_empty() {
                let load = |v: usize| {
                    queues[v]
                        .iter()
                        .map(|&j| estimates[j].max(0.0))
                        .sum::<f64>()
                };
                let mut victim = None;
                for (v, queue) in queues.iter().enumerate() {
                    if v == c || queue.is_empty() {
                        continue;
                    }
                    victim = match victim {
                        None => Some(v),
                        Some(best) if load(v) > load(best) => Some(v),
                        other => other,
                    };
                }
                match victim {
                    None => live[c] = false,
                    Some(v) => {
                        let take = queues[v].len().div_ceil(2);
                        let at = queues[v].len() - take;
                        let mut stolen = queues[v].split_off(at);
                        stolen.sort_unstable();
                        queues[c].extend(stolen);
                    }
                }
            } else {
                let job = queues[c].remove(0);
                completions[job] = now[c] + costs[job].max(0.0);
                now[c] = completions[job];
                done += 1;
            }
        }
        completions
    }

    #[test]
    fn stealing_matches_the_reference_simulation() {
        for seed in 0..8u64 {
            let costs = heavy_tailed(100 + seed, 257);
            for &cores in &[2usize, 3, 4, 8] {
                let s = steal_schedule(&costs, &costs, cores);
                let reference = reference_steal(&costs, &costs, cores);
                assert_eq!(s.completions, reference, "seed {seed} cores {cores}");
            }
        }
    }

    #[test]
    fn steal_order_is_total_under_cost_ties() {
        // All-equal estimates force every (load, index) tie-break path.
        let costs = vec![1.0; 97];
        let a = steal_schedule(&costs, &costs, 4);
        let b = steal_schedule(&costs, &costs, 4);
        assert_eq!(a, b);
        // With equal loads the victim must be the lowest-indexed
        // non-empty queue: verify against the naive reference.
        assert_eq!(a.completions, reference_steal(&costs, &costs, 4));
        assert!(a.stats.steals > 0, "uniform tail still migrates work");
    }

    #[test]
    fn stealing_beats_block_on_a_sorted_heavy_tail() {
        let mut costs = heavy_tailed(42, 4096);
        costs.sort_by(|a, b| b.total_cmp(a));
        let block = block_schedule(&costs, 8);
        let steal = steal_schedule(&costs, &costs, 8);
        assert!(
            block.makespan_s > 1.3 * steal.makespan_s,
            "block {} vs steal {}",
            block.makespan_s,
            steal.makespan_s
        );
    }

    #[test]
    fn uniform_costs_keep_stealing_at_parity() {
        let costs = vec![1.0; 4096];
        let block = block_schedule(&costs, 8);
        let steal = steal_schedule(&costs, &costs, 8);
        assert!(steal.makespan_s <= 1.02 * block.makespan_s);
    }

    #[test]
    fn lpt_fixes_a_sorted_ascending_tail() {
        let costs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let list = list_schedule(&costs, 4);
        let lpt = lpt_schedule(&costs, &costs, 4);
        assert!(lpt.makespan_s <= list.makespan_s + 1e-9);
    }

    #[test]
    fn empty_batch_is_fine() {
        for policy in [
            SchedPolicy::Static,
            SchedPolicy::Block,
            SchedPolicy::Lpt,
            SchedPolicy::WorkSteal,
        ] {
            let s = schedule(policy, &[], &[], 4);
            assert!(s.completions.is_empty());
            assert_eq!(s.makespan_s, 0.0);
        }
    }

    #[test]
    fn stats_account_for_migrations() {
        let mut costs = heavy_tailed(5, 1000);
        costs.sort_by(|a, b| b.total_cmp(a));
        let s = steal_schedule(&costs, &costs, 8);
        assert!(s.stats.steals > 0);
        // Late in the drain most peers are empty, so victim scans must
        // have probed at least one empty queue.
        assert!(s.stats.steal_fails >= 1);
        assert!(!s.stats.stolen_jobs.is_empty());
        assert!(s.stats.max_queue_depth > 0);
    }
}
