//! # antarex-sim — heterogeneous HPC platform simulator
//!
//! The ANTAREX runtime work package (Silvano et al., DATE 2016, §V–§VI)
//! targets petascale machines — CINECA's Xeon+MIC cluster and IT4I's
//! Salomon — whose physical behaviour drives every claim in the paper:
//! per-chip manufacturing variability (≈15% energy spread), frequency/
//! voltage-dependent power (18–50% energy left on the table by the default
//! Linux governor), and an ambient-temperature-dependent cooling plant
//! (>10% PUE degradation from winter to summer). This crate simulates
//! those mechanisms:
//!
//! * [`des`] — a deterministic discrete-event engine;
//! * [`dvfs`] — P-state tables (frequency/voltage pairs);
//! * [`power`] — dynamic (`C·V²·f`) plus temperature-dependent leakage
//!   power;
//! * [`thermal`] — first-order RC thermal model per node;
//! * [`variability`] — per-chip process variation (leakage and frequency);
//! * [`accelerator`] — GPGPU and MIC (Xeon Phi) accelerator models;
//! * [`node`] — a compute node: roofline execution model over cores +
//!   accelerators, DVFS, power and thermal integration;
//! * [`cooling`] — chiller/free-cooling plant with seasonal ambient
//!   temperature and PUE accounting;
//! * [`cluster`] — racks of nodes with facility-level energy accounting;
//! * [`job`] / [`workload`] — tasks, jobs and the workload generators used
//!   by the use cases (including the heavy-tailed docking sweep);
//! * [`metrics`] — FLOPS/W and energy bookkeeping;
//! * [`sched`] — deterministic virtual schedulers (static list, block,
//!   LPT-by-estimate, work stealing) for heavy-tailed task batches;
//! * [`faults`] — deterministic fault injection (node crashes, sensor
//!   dropouts/stuck-at readings, power-rail spikes, interconnect
//!   degradation, gray slowdowns) for the resiliency experiments.
//!
//! All stochastic components draw from caller-provided RNGs; the simulator
//! is fully deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use antarex_sim::node::{Node, NodeSpec};
//! use antarex_sim::job::WorkUnit;
//!
//! let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
//! let outcome = node.execute(&WorkUnit::compute_bound(1e12));
//! assert!(outcome.time_s > 0.0);
//! assert!(outcome.energy_j > 0.0);
//! ```

pub mod accelerator;
pub mod cluster;
pub mod cooling;
pub mod des;
pub mod dvfs;
pub mod error;
pub mod faults;
pub mod interconnect;
pub mod job;
pub mod metrics;
pub mod node;
pub mod power;
pub mod sched;
pub mod thermal;
pub mod variability;
pub mod workload;

pub use cluster::Cluster;
pub use des::EventQueue;
pub use dvfs::{PState, PStateTable};
pub use error::SimError;
pub use node::{ExecOutcome, Node, NodeSpec};
