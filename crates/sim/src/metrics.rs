//! Energy and efficiency bookkeeping.

/// Joules per kilowatt-hour.
pub const J_PER_KWH: f64 = 3.6e6;

/// Converts joules to kilowatt-hours.
pub fn joules_to_kwh(joules: f64) -> f64 {
    joules / J_PER_KWH
}

/// Green500-style efficiency: MFLOPS per watt, i.e. megaflops per joule.
pub fn mflops_per_watt(flops: f64, energy_j: f64) -> f64 {
    if energy_j <= 0.0 {
        return 0.0;
    }
    flops / 1e6 / energy_j
}

/// Energy-delay product, J·s — the classical combined metric.
pub fn energy_delay_product(energy_j: f64, time_s: f64) -> f64 {
    energy_j * time_s
}

/// An accumulating energy/work account for one experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyAccount {
    /// Useful floating-point work performed.
    pub flops: f64,
    /// IT (node-level) energy, joules.
    pub it_energy_j: f64,
    /// Facility energy including cooling and distribution, joules.
    pub facility_energy_j: f64,
    /// Wall-clock time, seconds.
    pub time_s: f64,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a contribution.
    pub fn add(&mut self, flops: f64, it_energy_j: f64, facility_energy_j: f64, time_s: f64) {
        self.flops += flops;
        self.it_energy_j += it_energy_j;
        self.facility_energy_j += facility_energy_j;
        self.time_s += time_s;
    }

    /// IT-level efficiency, MFLOPS/W.
    pub fn it_mflops_per_watt(&self) -> f64 {
        mflops_per_watt(self.flops, self.it_energy_j)
    }

    /// Facility-level efficiency, MFLOPS/W.
    pub fn facility_mflops_per_watt(&self) -> f64 {
        mflops_per_watt(self.flops, self.facility_energy_j)
    }

    /// Effective PUE of the accumulated run.
    pub fn pue(&self) -> f64 {
        if self.it_energy_j <= 0.0 {
            return f64::INFINITY;
        }
        self.facility_energy_j / self.it_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert!((joules_to_kwh(3.6e6) - 1.0).abs() < 1e-12);
        assert_eq!(mflops_per_watt(1e12, 1000.0), 1e6 / 1000.0);
        assert_eq!(mflops_per_watt(1e12, 0.0), 0.0);
        assert_eq!(energy_delay_product(10.0, 2.0), 20.0);
    }

    #[test]
    fn account_accumulates_and_derives() {
        let mut acct = EnergyAccount::new();
        acct.add(1e12, 500.0, 650.0, 10.0);
        acct.add(1e12, 500.0, 650.0, 10.0);
        assert_eq!(acct.flops, 2e12);
        assert!((acct.pue() - 1.3).abs() < 1e-12);
        assert!(acct.it_mflops_per_watt() > acct.facility_mflops_per_watt());
    }

    #[test]
    fn empty_account_pue_is_infinite() {
        assert!(EnergyAccount::new().pue().is_infinite());
    }
}
