//! Thermally-safe operation.
//!
//! Two mechanisms from §V:
//!
//! * [`ThermalThrottle`] — the node-level "distributed optimal thermal
//!   management controller": steps the P-state down when the junction
//!   approaches its limit and back up when there is headroom;
//! * [`Ms3Admission`] — the MS3-style scheduler policy ("do less when
//!   it's too hot"): scales back the admitted load when the ambient
//!   temperature degrades cooling efficiency, trading throughput for
//!   energy and thermal safety.

use antarex_sim::job::WorkUnit;
use antarex_sim::node::Node;

/// Hysteresis P-state throttle keeping the junction under a limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalThrottle {
    /// Junction limit, °C (throttle above this).
    pub limit_c: f64,
    /// Re-arm temperature, °C (unthrottle below this).
    pub release_c: f64,
}

impl ThermalThrottle {
    /// A typical 85 °C limit with 10 °C hysteresis.
    pub fn default_server() -> Self {
        ThermalThrottle {
            limit_c: 85.0,
            release_c: 75.0,
        }
    }

    /// Adjusts the node's P-state: model-predictive selection of the
    /// fastest state whose full-load steady-state junction temperature
    /// respects the limit, with hysteresis on re-acceleration (the node
    /// must cool below `release_c` before speeding back up). Returns
    /// `true` if a throttling (slow-down) action was taken.
    pub fn regulate(&self, node: &mut Node) -> bool {
        let mut target = 0;
        for idx in 0..node.spec().pstates.len() {
            if node.steady_temp_at(idx, 1.0) <= self.limit_c {
                target = idx;
            }
        }
        let current = node.pstate_index();
        if target < current {
            node.set_pstate(target);
            return true;
        }
        if target > current && node.temp_c() < self.release_c {
            node.set_pstate(target);
        }
        false
    }

    /// Runs a stream of work under throttling; returns
    /// `(time_s, energy_j, thermal_violations)` where a violation is a
    /// unit finishing above the limit.
    pub fn run(&self, node: &mut Node, work_units: &[WorkUnit]) -> (f64, f64, usize) {
        let mut time = 0.0;
        let mut energy = 0.0;
        let mut violations = 0;
        for work in work_units {
            self.regulate(node);
            let outcome = node.execute(work);
            time += outcome.time_s;
            energy += outcome.energy_j;
            if outcome.final_temp_c > self.limit_c {
                violations += 1;
            }
        }
        (time, energy, violations)
    }
}

/// MS3-style hot-weather admission control: the fraction of offered load
/// admitted shrinks as ambient rises past the comfort band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ms3Admission {
    /// Ambient below which everything is admitted, °C.
    pub comfort_c: f64,
    /// Ambient at which admission bottoms out, °C.
    pub extreme_c: f64,
    /// Admission floor (fraction) at extreme ambient.
    pub floor: f64,
}

impl Ms3Admission {
    /// A Mediterranean profile: full service below 18 °C ambient, down to
    /// 60% of load at 35 °C.
    pub fn mediterranean() -> Self {
        Ms3Admission {
            comfort_c: 18.0,
            extreme_c: 35.0,
            floor: 0.6,
        }
    }

    /// Fraction of offered load to admit at the given ambient.
    pub fn admitted_fraction(&self, ambient_c: f64) -> f64 {
        if ambient_c <= self.comfort_c {
            return 1.0;
        }
        if ambient_c >= self.extreme_c {
            return self.floor;
        }
        let t = (ambient_c - self.comfort_c) / (self.extreme_c - self.comfort_c);
        1.0 - t * (1.0 - self.floor)
    }

    /// Selects how many of `offered` tasks to admit at this ambient.
    pub fn admit_count(&self, offered: usize, ambient_c: f64) -> usize {
        ((offered as f64) * self.admitted_fraction(ambient_c)).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::node::NodeSpec;

    #[test]
    fn throttle_caps_temperature() {
        let throttle = ThermalThrottle {
            limit_c: 70.0,
            release_c: 60.0,
        };
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.set_inlet_temp(35.0); // hot rack
        let work = vec![WorkUnit::compute_bound(2e13); 12];
        let (_, _, violations_ctl) = throttle.run(&mut node, &work);

        let mut free = Node::nominal(NodeSpec::cineca_xeon(), 1);
        free.set_inlet_temp(35.0);
        let mut violations_free = 0;
        for w in &work {
            if free.execute(w).final_temp_c > throttle.limit_c {
                violations_free += 1;
            }
        }
        assert!(
            violations_ctl < violations_free,
            "throttled {violations_ctl} vs free {violations_free}"
        );
        assert!(node.temp_c() < free.temp_c());
    }

    #[test]
    fn throttle_recovers_when_cool() {
        let throttle = ThermalThrottle::default_server();
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.set_pstate(0);
        // cold node: the controller jumps to the fastest thermally-safe
        // state in one decision
        let acted = throttle.regulate(&mut node);
        assert!(!acted, "speeding up is not a throttling action");
        let chosen = node.pstate_index();
        assert!(chosen > 0, "cold node must speed up");
        assert!(node.steady_temp_at(chosen, 1.0) <= throttle.limit_c + 1e-9);
        // ... and never past the safe point
        if chosen < node.spec().pstates.max_index() {
            assert!(node.steady_temp_at(chosen + 1, 1.0) > throttle.limit_c);
        }
    }

    #[test]
    fn admission_profile_shape() {
        let ms3 = Ms3Admission::mediterranean();
        assert_eq!(ms3.admitted_fraction(10.0), 1.0);
        assert_eq!(ms3.admitted_fraction(40.0), 0.6);
        let mid = ms3.admitted_fraction(26.5);
        assert!(mid > 0.6 && mid < 1.0);
        // monotone decreasing
        assert!(ms3.admitted_fraction(20.0) >= ms3.admitted_fraction(30.0));
    }

    #[test]
    fn admit_count_rounds() {
        let ms3 = Ms3Admission::mediterranean();
        assert_eq!(ms3.admit_count(100, 10.0), 100);
        assert_eq!(ms3.admit_count(100, 40.0), 60);
    }
}
