//! Fault-tolerant cluster-scale control plane.
//!
//! Paper §V calls for "scalable and hierarchical optimal control-loops"
//! over hardware that misbehaves: nodes crash (Weibull fault storms),
//! sensors drop out or freeze, and a hot afternoon degrades the cooling
//! plant so the same facility cap buys less compute. This module
//! composes the resiliency substrate the repo already trusts into a
//! three-level plane, with every level degrading gracefully:
//!
//! 1. **Facility loop** ([`FacilityController`]) — converts the facility
//!    power cap into a usable IT budget through the ambient-dependent
//!    cooling overhead (`sim::cooling`), keeps a guard band for
//!    estimation error, and re-splits the budget across alive nodes by
//!    demand every control step (`powercap::try_weighted_split_observed`).
//! 2. **Job dispatch** — crashes reported by `sim::faults` requeue the
//!    victim's job from its last checkpoint (`rtrm::checkpoint` cadence);
//!    re-dispatch onto another node is a migration. [`ClusterFaultView`]
//!    indexes the fault schedule for O(log n) point queries so a
//!    4096-node campaign is not O(events) per step.
//! 3. **Per-node region capper** ([`NodeController`]) — picks a P-state
//!    per application region following the Chadha/Gerndt DVFS/UFS model:
//!    compute-bound regions run at the fastest cap-admissible state,
//!    memory-bound regions at the slowest state that still sustains the
//!    stream (free energy, no throughput loss). Power is estimated at
//!    the *sensed* junction temperature, never at ground truth: the
//!    telemetry path is hardened by [`SensorChannel`] (stuck-at
//!    detection → hold → EWMA → assume-worst), so a lost or lying sensor
//!    can only make the controller more conservative. Thermal
//!    emergencies clamp locally (on-die protection works even with the
//!    out-of-band telemetry down) before the cluster loop reacts.
//!
//! Every decision is instrumented through `antarex-obs` ([`ClusterObs`]):
//! cap-overshoot integral, migrations, throttle events and
//! sensor-fallback counters land on registry cells shared with the
//! exposition.

use crate::error::{check_budget_w, RtrmError};
use crate::powercap::{try_weighted_split_observed, PowerCapper, PowercapObs};
use crate::thermal_ctrl::ThermalThrottle;
use antarex_monitor::resilient::{Fill, ResilientSensor};
use antarex_obs::{Counter, Gauge, MetricsRegistry, Scope};
use antarex_sim::cooling::CoolingPlant;
use antarex_sim::faults::{FaultKind, FaultSchedule, SensorEffect};
use antarex_sim::node::Node;

// ---------------------------------------------------------------------------
// Fault-schedule index
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
struct SensorWindow {
    start_s: f64,
    until_s: f64,
    stuck: bool,
}

/// Per-node index of one node's fault timeline.
#[derive(Debug, Clone, Default)]
struct NodeFaultIndex {
    crashes: Vec<f64>,
    repairs: Vec<f64>,
    sensor_windows: Vec<SensorWindow>,
}

/// A per-node index over a [`FaultSchedule`]: the schedule's point
/// queries scan the whole event list (fine for eight nodes, ruinous for
/// 4096 × 240 control steps), this view answers the same questions by
/// binary search. Built once per campaign; semantics are verified
/// against the schedule's own queries in the tests.
#[derive(Debug, Clone)]
pub struct ClusterFaultView {
    nodes: Vec<NodeFaultIndex>,
    crash_count: usize,
}

impl ClusterFaultView {
    /// Indexes `schedule` (crash/repair alternation and sensor windows;
    /// the other fault classes keep their schedule-side queries).
    pub fn new(schedule: &FaultSchedule) -> Self {
        let mut nodes = vec![NodeFaultIndex::default(); schedule.nodes()];
        let mut crash_count = 0;
        for event in schedule.events() {
            match event.kind {
                FaultKind::NodeCrash { node } => {
                    nodes[node].crashes.push(event.time_s);
                    crash_count += 1;
                }
                FaultKind::NodeRepair { node } => nodes[node].repairs.push(event.time_s),
                FaultKind::SensorDropout { node, until_s } => {
                    nodes[node].sensor_windows.push(SensorWindow {
                        start_s: event.time_s,
                        until_s,
                        stuck: false,
                    })
                }
                FaultKind::SensorStuck { node, until_s } => {
                    nodes[node].sensor_windows.push(SensorWindow {
                        start_s: event.time_s,
                        until_s,
                        stuck: true,
                    })
                }
                _ => {}
            }
        }
        ClusterFaultView { nodes, crash_count }
    }

    /// Total node crashes in the schedule.
    pub fn crash_count(&self) -> usize {
        self.crash_count
    }

    /// Is `node` up at time `t`? Matches
    /// [`FaultSchedule::node_alive`] (events at exactly `t` included).
    pub fn node_alive(&self, node: usize, t: f64) -> bool {
        let idx = &self.nodes[node];
        let crashed = idx.crashes.partition_point(|&c| c <= t);
        let repaired = idx.repairs.partition_point(|&r| r <= t);
        crashed == repaired
    }

    /// First crash of `node` in `[from_s, to_s)`, if any.
    pub fn first_crash_in(&self, node: usize, from_s: f64, to_s: f64) -> Option<f64> {
        let crashes = &self.nodes[node].crashes;
        let i = crashes.partition_point(|&c| c < from_s);
        crashes.get(i).copied().filter(|&c| c < to_s)
    }

    /// When the node is back after a crash at `crash_s`
    /// (`f64::INFINITY` if it never rejoins within the horizon).
    pub fn down_until(&self, node: usize, crash_s: f64) -> f64 {
        let repairs = &self.nodes[node].repairs;
        let i = repairs.partition_point(|&r| r <= crash_s);
        repairs.get(i).copied().unwrap_or(f64::INFINITY)
    }

    /// What the telemetry channel of `node` does at time `t`. Matches
    /// [`FaultSchedule::sensor_effect`].
    pub fn sensor_effect(&self, node: usize, t: f64) -> SensorEffect {
        let windows = &self.nodes[node].sensor_windows;
        let i = windows.partition_point(|w| w.start_s <= t);
        // windows are non-overlapping per node; only the latest started
        // one can still be active
        match i.checked_sub(1).map(|j| windows[j]) {
            Some(w) if t < w.until_s => {
                if w.stuck {
                    SensorEffect::StuckSince(w.start_s)
                } else {
                    SensorEffect::Dropped
                }
            }
            _ => SensorEffect::Ok,
        }
    }
}

// ---------------------------------------------------------------------------
// Hardened telemetry channel
// ---------------------------------------------------------------------------

/// How the controller obtained its working temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensedFill {
    /// A trusted fresh reading.
    Fresh,
    /// Reading missing or distrusted; last fresh value held.
    Held,
    /// Outage outlived the hold window; long-term EWMA.
    Ewma,
    /// Nothing usable; the pessimistic default is in force.
    AssumeWorst,
}

/// The controller-side temperature estimate for one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensedTemp {
    /// Working junction temperature, °C — always finite.
    pub temp_c: f64,
    /// Provenance of the value.
    pub fill: SensedFill,
}

/// One node's thermal telemetry channel hardened against dropouts *and*
/// stuck-at (lying) sensors. Dropped readings flow through
/// `monitor::resilient`'s hold → EWMA ladder; a register frozen by
/// firmware repeats the same bit-identical value, which a real junction
/// under varying load essentially never does, so
/// [`SensorChannel::STUCK_TRIP`] consecutive identical readings trip the
/// channel into treating the reading as missing. When the ladder
/// bottoms out the channel reports [`SensorChannel::assume_worst_c`] so
/// the capper over-estimates power and backs off — a dead sensor can
/// only cost throughput, never the cap.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorChannel {
    inner: ResilientSensor,
    last_raw: Option<f64>,
    repeats: u32,
    /// Pessimistic temperature reported when nothing usable is left, °C.
    pub assume_worst_c: f64,
}

impl SensorChannel {
    /// Consecutive bit-identical readings before the channel distrusts
    /// the sensor as stuck.
    pub const STUCK_TRIP: u32 = 3;

    /// A thermal channel: 30 s hold, EWMA α = 0.05, assume-worst 95 °C
    /// (above the throttle limit, so an unsensed node runs conservatively).
    pub fn thermal() -> Self {
        SensorChannel {
            inner: ResilientSensor::thermal(),
            last_raw: None,
            repeats: 0,
            assume_worst_c: 95.0,
        }
    }

    /// Feeds one observation instant; `raw` is `None` when the sensor
    /// dropped out. Always returns a finite working temperature.
    pub fn sense(&mut self, time_s: f64, raw: Option<f64>) -> SensedTemp {
        let distrusted = match (raw, self.last_raw) {
            (Some(v), Some(prev)) if v.to_bits() == prev.to_bits() => {
                self.repeats += 1;
                self.repeats >= Self::STUCK_TRIP
            }
            (Some(_), _) => {
                self.repeats = 0;
                false
            }
            (None, _) => false,
        };
        if raw.is_some() {
            self.last_raw = raw;
        }
        let feed = if distrusted { None } else { raw };
        let estimate = self.inner.observe(time_s, feed);
        match (estimate.value, estimate.fill) {
            (Some(v), Fill::Fresh) => SensedTemp {
                temp_c: v,
                fill: SensedFill::Fresh,
            },
            (Some(v), Fill::Held) => SensedTemp {
                temp_c: v,
                fill: SensedFill::Held,
            },
            (Some(v), Fill::Ewma) => SensedTemp {
                temp_c: v,
                fill: SensedFill::Ewma,
            },
            _ => SensedTemp {
                temp_c: self.assume_worst_c,
                fill: SensedFill::AssumeWorst,
            },
        }
    }

    /// Fraction of observations that were missing or distrusted.
    pub fn loss_rate(&self) -> f64 {
        self.inner.loss_rate()
    }
}

// ---------------------------------------------------------------------------
// Per-region DVFS policy (Chadha/Gerndt)
// ---------------------------------------------------------------------------

/// The roofline class of the application region a node is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Frequency-sensitive: time ∝ 1/f.
    Compute,
    /// Bandwidth-bound: time is frequency-insensitive above the floor.
    Memory,
}

/// The slowest P-state that still sustains a memory stream of the given
/// arithmetic intensity (flops per byte) at full bandwidth — running any
/// faster buys no throughput and only burns `V²f` power.
pub fn memory_floor_pstate(node: &Node, intensity_flops_per_byte: f64) -> usize {
    let required_gflops = node.spec().mem_bw_gbs * intensity_flops_per_byte.max(0.0);
    for idx in 0..node.spec().pstates.len() {
        let freq = node.spec().pstates.state(idx).freq_ghz;
        if node.spec().cpu_peak_gflops(freq) >= required_gflops {
            return idx;
        }
    }
    node.spec().pstates.max_index()
}

/// Per-region P-state selection under a power cap, evaluated at the
/// *sensed* temperature: compute regions take the fastest admissible
/// state, memory regions the slowest state sustaining the stream (and
/// never above the admissible one — the cap always wins).
pub fn region_pstate(
    node: &Node,
    region: RegionKind,
    intensity_flops_per_byte: f64,
    capper: &PowerCapper,
    sensed_temp_c: f64,
) -> usize {
    let admissible = capper.admissible_pstate_at_temp(node, sensed_temp_c);
    match region {
        RegionKind::Compute => admissible,
        RegionKind::Memory => memory_floor_pstate(node, intensity_flops_per_byte).min(admissible),
    }
}

// ---------------------------------------------------------------------------
// Facility loop
// ---------------------------------------------------------------------------

/// The slow outer loop: a facility power cap translated into a usable
/// IT budget through the ambient-dependent cooling overhead, with a
/// guard band absorbing power-estimation error, split across alive
/// nodes by demand.
#[derive(Debug, Clone)]
pub struct FacilityController {
    cap_w: f64,
    plant: CoolingPlant,
    guard: f64,
}

impl FacilityController {
    /// Creates the controller. `guard` is the fraction of the raw IT
    /// budget actually handed to nodes (e.g. 0.97 keeps 3% in reserve
    /// for estimation error); must be in `(0, 1]`.
    pub fn try_new(cap_w: f64, plant: CoolingPlant, guard: f64) -> Result<Self, RtrmError> {
        let cap_w = check_budget_w("facility cap", cap_w)?;
        if !(guard.is_finite() && guard > 0.0 && guard <= 1.0) {
            return Err(RtrmError::InvalidBudget {
                what: "guard band",
                value: guard,
            });
        }
        Ok(FacilityController {
            cap_w,
            plant,
            guard,
        })
    }

    /// The facility cap, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The cooling plant model in force.
    pub fn plant(&self) -> &CoolingPlant {
        &self.plant
    }

    /// Usable IT budget at this ambient, after cooling overhead and the
    /// guard band. Hot afternoons shrink it; the hierarchy re-splits
    /// instead of overshooting.
    pub fn it_budget_w(&self, ambient_c: f64) -> f64 {
        self.plant.it_budget_w(self.cap_w, ambient_c) * self.guard
    }

    /// Facility-side power implied by an IT draw at this ambient
    /// (IT + cooling + distribution) — the quantity compared to the cap.
    pub fn facility_power_w(&self, it_power_w: f64, ambient_c: f64) -> f64 {
        it_power_w * (1.0 + self.plant.overhead_fraction(ambient_c))
    }

    /// One facility control decision: the ambient-shrunk budget split
    /// over `weights` (remaining demand per node; dead nodes weight 0),
    /// recorded on `obs`. `None` when no node is alive to receive it.
    pub fn split(&self, ambient_c: f64, weights: &[f64], obs: &PowercapObs) -> Option<Vec<f64>> {
        try_weighted_split_observed(self.it_budget_w(ambient_c), weights, obs)
    }
}

// ---------------------------------------------------------------------------
// Per-node controller
// ---------------------------------------------------------------------------

/// The fast inner loop's decision for one node and one control step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePlan {
    /// P-state the node was set to.
    pub pstate: usize,
    /// The working temperature estimate the decision used.
    pub sensed: SensedTemp,
    /// Whether a local thermal emergency forced a further clamp below
    /// the cap-chosen state.
    pub throttled: bool,
}

/// One node's controller: hardened telemetry, a region-aware power
/// capper, and a local thermal-emergency clamp that acts *before* the
/// cluster loop can react (on-die protection keeps working when the
/// out-of-band telemetry path is down, so — unlike the capper — it
/// reads the die's own temperature).
#[derive(Debug, Clone)]
pub struct NodeController {
    /// The hardened telemetry channel.
    pub sensor: SensorChannel,
    /// Thermal-emergency parameters.
    pub throttle: ThermalThrottle,
    capper: PowerCapper,
}

impl NodeController {
    /// A controller with default hardening (thermal channel, 85/75 °C
    /// throttle) and a placeholder cap of 1 W (set per step).
    pub fn new() -> Self {
        NodeController {
            sensor: SensorChannel::thermal(),
            throttle: ThermalThrottle::default_server(),
            capper: PowerCapper::new(1.0),
        }
    }

    /// Updates the node's power cap for this step; caps below 1 W are
    /// floored (a zero split share must not panic the capper).
    pub fn set_cap(&mut self, cap_w: f64) {
        let cap_w = if cap_w.is_finite() {
            cap_w.max(1.0)
        } else {
            1.0
        };
        self.capper = PowerCapper::new(cap_w);
    }

    /// The cap currently enforced, watts.
    pub fn cap_w(&self) -> f64 {
        self.capper.cap_w()
    }

    /// One control decision: senses temperature through the hardened
    /// channel, picks the per-region P-state under the cap at the
    /// *sensed* temperature, then applies the local thermal-emergency
    /// clamp (hysteresis: engaged while the die is above the release
    /// temperature) and programs the node.
    pub fn plan(
        &mut self,
        node: &mut Node,
        region: RegionKind,
        intensity_flops_per_byte: f64,
        time_s: f64,
        raw_reading: Option<f64>,
    ) -> NodePlan {
        let sensed = self.sensor.sense(time_s, raw_reading);
        let chosen = region_pstate(
            node,
            region,
            intensity_flops_per_byte,
            &self.capper,
            sensed.temp_c,
        );
        let mut pstate = chosen;
        let mut throttled = false;
        if node.temp_c() >= self.throttle.release_c {
            let mut safe = 0;
            for idx in 0..node.spec().pstates.len() {
                if node.steady_temp_at(idx, 1.0) <= self.throttle.limit_c {
                    safe = idx;
                }
            }
            if safe < pstate {
                pstate = safe;
                throttled = true;
            }
        }
        node.set_pstate(pstate);
        NodePlan {
            pstate,
            sensed,
            throttled,
        }
    }
}

impl Default for NodeController {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Registry cells instrumenting the cluster control plane. All counters
/// are [`Scope::Invariant`]: every decision is a pure function of the
/// virtual-time campaign state, never of worker scheduling.
#[derive(Debug, Clone)]
pub struct ClusterObs {
    /// Node crashes observed by the control plane.
    pub crashes: Counter,
    /// Jobs requeued after losing their node.
    pub requeues: Counter,
    /// Requeued jobs re-dispatched onto a *different* node.
    pub migrations: Counter,
    /// Local thermal-emergency clamps.
    pub throttle_events: Counter,
    /// Sensor estimates served from the hold stage.
    pub sensor_held: Counter,
    /// Sensor estimates served from the EWMA stage.
    pub sensor_ewma: Counter,
    /// Sensor estimates that bottomed out at assume-worst.
    pub sensor_assume_worst: Counter,
    /// Checkpoints written.
    pub checkpoints: Counter,
    /// Jobs run to completion.
    pub completed_jobs: Counter,
    /// Current ambient temperature, °C.
    pub ambient_c: Gauge,
    /// Current usable IT budget, watts.
    pub it_budget_w: Gauge,
    /// Current facility-side power, watts.
    pub facility_power_w: Gauge,
    /// Cap-overshoot integral so far, watt-seconds.
    pub overshoot_ws: Gauge,
}

impl ClusterObs {
    /// Registers the cluster-control metrics on `registry` (idempotent).
    pub fn register(registry: &MetricsRegistry) -> Self {
        let c = |name| registry.counter(name, Scope::Invariant);
        let g = |name| registry.gauge(name, Scope::Invariant);
        ClusterObs {
            crashes: c("rtrm_cluster_crashes_total"),
            requeues: c("rtrm_cluster_requeues_total"),
            migrations: c("rtrm_cluster_migrations_total"),
            throttle_events: c("rtrm_cluster_throttle_events_total"),
            sensor_held: c("rtrm_cluster_sensor_held_total"),
            sensor_ewma: c("rtrm_cluster_sensor_ewma_total"),
            sensor_assume_worst: c("rtrm_cluster_sensor_assume_worst_total"),
            checkpoints: c("rtrm_cluster_checkpoints_total"),
            completed_jobs: c("rtrm_cluster_completed_jobs_total"),
            ambient_c: g("rtrm_cluster_ambient_celsius"),
            it_budget_w: g("rtrm_cluster_it_budget_watts"),
            facility_power_w: g("rtrm_cluster_facility_power_watts"),
            overshoot_ws: g("rtrm_cluster_cap_overshoot_watt_seconds"),
        }
    }

    /// Routes a sensed-fill tag onto the fallback counters.
    pub fn count_fill(&self, fill: SensedFill) {
        match fill {
            SensedFill::Fresh => {}
            SensedFill::Held => self.sensor_held.inc(),
            SensedFill::Ewma => self.sensor_ewma.inc(),
            SensedFill::AssumeWorst => self.sensor_assume_worst.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::faults::FaultConfig;
    use antarex_sim::node::NodeSpec;

    fn storm_schedule(seed: u64) -> FaultSchedule {
        let mut config = FaultConfig::exascale(seed, 4.0);
        config.power_spike_mtbf_s = 0.0;
        config.link_mtbf_s = 0.0;
        config.gray_mtbf_s = 0.0;
        config.corrupt_mtbf_s = 0.0;
        FaultSchedule::generate(&config, 12, 24.0 * 3600.0)
    }

    #[test]
    fn fault_view_matches_schedule_queries() {
        let schedule = storm_schedule(71);
        let view = ClusterFaultView::new(&schedule);
        assert!(view.crash_count() > 0, "storm must crash nodes");
        // sample a grid of (node, time) points plus every event edge
        let mut times: Vec<f64> = (0..200).map(|i| i as f64 * 431.7).collect();
        for e in schedule.events() {
            times.push(e.time_s);
            times.push(e.time_s + 1e-6);
        }
        for node in 0..schedule.nodes() {
            for &t in &times {
                assert_eq!(
                    view.node_alive(node, t),
                    schedule.node_alive(node, t),
                    "alive({node}, {t})"
                );
                assert_eq!(
                    view.sensor_effect(node, t),
                    schedule.sensor_effect(node, t),
                    "sensor({node}, {t})"
                );
            }
        }
    }

    #[test]
    fn fault_view_crash_windows_and_repair() {
        let schedule = storm_schedule(73);
        let view = ClusterFaultView::new(&schedule);
        let (t, node) = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                FaultKind::NodeCrash { node } => Some((e.time_s, node)),
                _ => None,
            })
            .expect("storm crashes");
        assert_eq!(view.first_crash_in(node, t - 1.0, t + 1.0), Some(t));
        assert_eq!(view.first_crash_in(node, t, t + 1.0), Some(t));
        assert_eq!(view.first_crash_in(node, t + 1e-9, t + 1e-6), None);
        let back = view.down_until(node, t);
        assert!(back > t, "repair strictly after crash");
        assert!(
            view.crashes_match_schedule(&schedule),
            "every crash indexed"
        );
        assert!(!view.node_alive(node, (t + back.min(t + 1e9)) / 2.0));
    }

    #[test]
    fn sensor_channel_degradation_ladder() {
        let mut chan = SensorChannel::thermal();
        // never observed: straight to assume-worst
        let first = chan.sense(0.0, None);
        assert_eq!(first.fill, SensedFill::AssumeWorst);
        assert_eq!(first.temp_c, chan.assume_worst_c);
        // fresh readings pass through
        let fresh = chan.sense(1.0, Some(55.0));
        assert_eq!((fresh.temp_c, fresh.fill), (55.0, SensedFill::Fresh));
        // dropout: held within the window ...
        let held = chan.sense(10.0, Some(f64::NAN));
        assert_eq!((held.temp_c, held.fill), (55.0, SensedFill::Held));
        let held = chan.sense(20.0, None);
        assert_eq!((held.temp_c, held.fill), (55.0, SensedFill::Held));
        // ... EWMA once the hold window (30 s) expires
        let ewma = chan.sense(100.0, None);
        assert_eq!(ewma.fill, SensedFill::Ewma);
        assert!(ewma.temp_c.is_finite());
    }

    #[test]
    fn sensor_channel_distrusts_stuck_readings() {
        let mut chan = SensorChannel::thermal();
        chan.sense(0.0, Some(60.0));
        chan.sense(1.0, Some(61.0));
        // the register freezes at 61.0: identical bits repeat
        for i in 0..SensorChannel::STUCK_TRIP {
            chan.sense(2.0 + f64::from(i), Some(61.0));
        }
        // by now the channel treats the frozen value as missing
        let est = chan.sense(10.0, Some(61.0));
        assert_ne!(est.fill, SensedFill::Fresh, "frozen sensor distrusted");
        assert!(chan.loss_rate() > 0.0);
        // a genuinely changing signal re-earns trust
        let est = chan.sense(11.0, Some(62.5));
        assert_eq!(est.fill, SensedFill::Fresh);
    }

    #[test]
    fn memory_regions_pick_the_slowest_sustaining_state() {
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        // a 1/16 flops-per-byte stream needs ~4 GFLOP/s: even the
        // slowest Xeon state sustains it
        assert_eq!(memory_floor_pstate(&node, 1.0 / 16.0), 0);
        // an absurdly compute-heavy "stream" needs the fastest state
        assert_eq!(
            memory_floor_pstate(&node, 1e6),
            node.spec().pstates.max_index()
        );
        let generous = PowerCapper::new(1e6);
        assert_eq!(
            region_pstate(&node, RegionKind::Memory, 1.0 / 16.0, &generous, 60.0),
            0,
            "memory region crawls even under a generous cap"
        );
        assert_eq!(
            region_pstate(&node, RegionKind::Compute, 64.0, &generous, 60.0),
            node.spec().pstates.max_index(),
            "compute region races under a generous cap"
        );
    }

    #[test]
    fn sensed_temperature_drives_the_cap_decision() {
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let mid =
            crate::powercap::estimated_power_at_temp(&node, node.spec().pstates.max_index(), 45.0)
                * 0.85;
        let capper = PowerCapper::new(mid);
        let cool = region_pstate(&node, RegionKind::Compute, 64.0, &capper, 40.0);
        let worst = region_pstate(&node, RegionKind::Compute, 64.0, &capper, 95.0);
        assert!(
            worst <= cool,
            "assume-worst sensing must never pick a faster state ({worst} vs {cool})"
        );
    }

    #[test]
    fn facility_budget_shrinks_on_a_hot_afternoon() {
        let facility =
            FacilityController::try_new(1.5e6, CoolingPlant::european_datacenter(), 0.97)
                .expect("valid facility");
        let cool = facility.it_budget_w(14.0);
        let hot = facility.it_budget_w(33.0);
        assert!(hot < cool * 0.92, "hot {hot:.0} vs cool {cool:.0}");
        // the facility-side power of the same IT draw grows with ambient
        assert!(facility.facility_power_w(1e6, 33.0) > facility.facility_power_w(1e6, 14.0));
        // invalid parameters are typed errors
        assert!(
            FacilityController::try_new(0.0, CoolingPlant::european_datacenter(), 0.97).is_err()
        );
        assert!(
            FacilityController::try_new(1e6, CoolingPlant::european_datacenter(), 0.0).is_err()
        );
        assert!(
            FacilityController::try_new(1e6, CoolingPlant::european_datacenter(), 1.5).is_err()
        );
    }

    #[test]
    fn facility_split_records_decisions_and_survives_dead_cluster() {
        let registry = MetricsRegistry::new();
        let obs = PowercapObs::register(&registry);
        let facility = FacilityController::try_new(1e6, CoolingPlant::european_datacenter(), 1.0)
            .expect("valid facility");
        let split = facility
            .split(20.0, &[2.0, 1.0, 0.0], &obs)
            .expect("three nodes");
        let total: f64 = split.iter().sum();
        assert!((total - facility.it_budget_w(20.0)).abs() < 1e-6);
        assert!(split[0] > split[1]);
        assert_eq!(facility.split(20.0, &[], &obs), None, "all nodes dead");
        assert_eq!(obs.splits_refused(), 1);
    }

    #[test]
    fn node_controller_thermal_emergency_clamps_locally() {
        let mut ctl = NodeController::new();
        ctl.set_cap(1e6); // cap never binds in this test
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.set_inlet_temp(45.0); // pathological rack
                                   // heat the node past the release threshold
        node.execute(&antarex_sim::job::WorkUnit::compute_bound(5e13));
        assert!(node.temp_c() > ctl.throttle.release_c);
        let reading = node.temp_c();
        let plan = ctl.plan(&mut node, RegionKind::Compute, 64.0, 0.0, Some(reading));
        assert!(plan.throttled, "hot node must be clamped");
        assert!(plan.pstate < node.spec().pstates.max_index());
        // a cool node under the same cap races
        let mut cool = Node::nominal(NodeSpec::cineca_xeon(), 1);
        let mut ctl2 = NodeController::new();
        ctl2.set_cap(1e6);
        let reading2 = cool.temp_c();
        let plan2 = ctl2.plan(&mut cool, RegionKind::Compute, 64.0, 0.0, Some(reading2));
        assert!(!plan2.throttled);
        assert_eq!(plan2.pstate, cool.spec().pstates.max_index());
    }

    #[test]
    fn node_controller_cap_floor_survives_zero_share() {
        let mut ctl = NodeController::new();
        ctl.set_cap(0.0);
        assert_eq!(ctl.cap_w(), 1.0);
        ctl.set_cap(f64::NAN);
        assert_eq!(ctl.cap_w(), 1.0);
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        // an unenforceable 1 W cap degrades to the slowest state, no panic
        let plan = ctl.plan(&mut node, RegionKind::Compute, 64.0, 0.0, Some(40.0));
        assert_eq!(plan.pstate, 0);
    }

    #[test]
    fn cluster_obs_cells_land_on_the_registry() {
        let registry = MetricsRegistry::new();
        let obs = ClusterObs::register(&registry);
        obs.crashes.inc();
        obs.requeues.inc();
        obs.migrations.inc();
        obs.count_fill(SensedFill::Held);
        obs.count_fill(SensedFill::AssumeWorst);
        obs.count_fill(SensedFill::Fresh); // no cell
        obs.ambient_c.set(27.5);
        let exposition = antarex_obs::exposition(&registry.snapshot(None));
        assert!(
            exposition.contains("rtrm_cluster_crashes_total 1"),
            "{exposition}"
        );
        assert!(exposition.contains("rtrm_cluster_migrations_total 1"));
        assert!(exposition.contains("rtrm_cluster_sensor_held_total 1"));
        assert!(exposition.contains("rtrm_cluster_sensor_assume_worst_total 1"));
        assert!(exposition.contains("rtrm_cluster_ambient_celsius 27.5"));
        // idempotent re-registration shares cells
        let again = ClusterObs::register(&registry);
        assert_eq!(again.crashes.get(), 1);
    }

    impl ClusterFaultView {
        /// Test helper: every schedule crash is indexed exactly once.
        fn crashes_match_schedule(&self, schedule: &FaultSchedule) -> bool {
            let scheduled = schedule
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::NodeCrash { .. }))
                .count();
            scheduled == self.crash_count
        }
    }
}
