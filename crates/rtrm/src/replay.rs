//! Replaying a batch schedule on the simulated cluster.
//!
//! [`BatchScheduler`](crate::scheduler::BatchScheduler) plans against
//! runtime *estimates*; replay executes the plan on real
//! [`Node`] models — heterogeneous process
//! corners, DVFS states, thermal trajectories — and accounts wall-clock
//! and energy. This closes the loop between the cluster-level dispatching
//! knob and the node-level physics, and powers the scheduler-energy
//! comparisons.

use crate::scheduler::Schedule;
use antarex_sim::des::EventQueue;
use antarex_sim::job::Job;
use antarex_sim::node::Node;

/// Result of replaying one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Wall-clock completion of the last job, seconds.
    pub makespan_s: f64,
    /// Total IT energy over the replay (busy + idle), joules.
    pub energy_j: f64,
    /// Mean node utilization over the makespan (busy time / total time).
    pub utilization: f64,
    /// Per-job actual runtimes, in job order.
    pub job_runtimes_s: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Start(usize),
}

/// Replays `schedule` for `jobs` on the node pool.
///
/// Node assignment is by availability at each placement's start time (the
/// schedule fixes *when*, the replay fixes *where*). Each assigned node
/// executes the job's per-node work at its current P-state; idle gaps are
/// charged idle power at the end.
///
/// # Panics
///
/// Panics if the pool is smaller than the schedule's peak node demand or
/// if a placement references an unknown job.
pub fn replay(schedule: &Schedule, jobs: &[Job], nodes: &mut [Node]) -> ReplayOutcome {
    let mut queue: EventQueue<Event> = EventQueue::new();
    for (i, placement) in schedule.placements.iter().enumerate() {
        queue.schedule(placement.start_s, Event::Start(i));
    }
    let mut node_free_at = vec![0.0f64; nodes.len()];
    let mut job_runtimes = vec![0.0f64; schedule.placements.len()];
    let mut makespan: f64 = 0.0;

    while let Some((time, Event::Start(index))) = queue.pop() {
        let placement = &schedule.placements[index];
        let job = jobs
            .iter()
            .find(|j| j.id == placement.job_id)
            .unwrap_or_else(|| panic!("job {} not found", placement.job_id));
        assert!(
            job.nodes <= nodes.len(),
            "pool exhausted at t={time}: wanted {} nodes",
            job.nodes
        );
        // pick the first `nodes` free at this time; if actual runtimes
        // overran the schedule's estimates, delay the start until enough
        // nodes free up (what a real resource manager does)
        let mut assigned = Vec::new();
        for (n, free_at) in node_free_at.iter().enumerate() {
            if *free_at <= time + 1e-9 {
                assigned.push(n);
                if assigned.len() == job.nodes {
                    break;
                }
            }
        }
        if assigned.len() < job.nodes {
            let mut free_times = node_free_at.clone();
            free_times.sort_by(f64::total_cmp);
            let ready_at = free_times[job.nodes - 1].max(time) + 1e-6;
            queue.schedule(ready_at, Event::Start(index));
            continue;
        }
        let mut slowest = 0.0f64;
        for &n in &assigned {
            let outcome = nodes[n].execute(&job.work_per_node);
            slowest = slowest.max(outcome.time_s);
        }
        for &n in &assigned {
            node_free_at[n] = time + slowest;
        }
        job_runtimes[index] = slowest;
        makespan = makespan.max(time + slowest);
    }

    // idle accounting: every node idles for (makespan - busy)
    let mut energy = 0.0;
    let mut busy_total = 0.0;
    for node in nodes.iter_mut() {
        let busy = node.busy_s();
        busy_total += busy;
        let idle = (makespan - busy).max(0.0);
        if idle > 0.0 {
            node.idle(idle);
        }
        energy += node.energy_j();
    }
    let utilization = if makespan > 0.0 {
        busy_total / (makespan * nodes.len() as f64)
    } else {
        0.0
    };
    ReplayOutcome {
        makespan_s: makespan,
        energy_j: energy,
        utilization,
        job_runtimes_s: job_runtimes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{BatchScheduler, SchedulerPolicy};
    use antarex_sim::job::WorkUnit;
    use antarex_sim::node::NodeSpec;
    use antarex_sim::variability::ProcessVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jobs() -> Vec<Job> {
        vec![
            Job::new(0, 0.0, 2, WorkUnit::compute_bound(5e12)),
            Job::new(1, 1.0, 2, WorkUnit::compute_bound(5e12)),
            Job::new(2, 2.0, 4, WorkUnit::compute_bound(2e12)),
            Job::new(3, 3.0, 1, WorkUnit::memory_bound(5e11)),
        ]
    }

    fn pool(seed: u64) -> Vec<Node> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..4)
            .map(|i| {
                Node::with_variation(
                    NodeSpec::cineca_xeon(),
                    i,
                    ProcessVariation::sample(&mut rng),
                )
            })
            .collect()
    }

    fn estimate(job: &Job) -> f64 {
        // crude user wall-time: compute-bound time at 2.0 GHz + margin
        job.work_per_node.flops / (192e9) * 1.3 + 10.0
    }

    #[test]
    fn replay_executes_all_jobs_and_accounts_energy() {
        let jobs = jobs();
        let schedule =
            BatchScheduler::new(4, SchedulerPolicy::EasyBackfill).schedule(&jobs, estimate);
        let mut nodes = pool(1);
        let outcome = replay(&schedule, &jobs, &mut nodes);
        assert_eq!(outcome.job_runtimes_s.len(), 4);
        assert!(outcome.job_runtimes_s.iter().all(|&t| t > 0.0));
        assert!(outcome.energy_j > 0.0);
        assert!(outcome.makespan_s > 0.0);
        assert!(outcome.utilization > 0.0 && outcome.utilization <= 1.0);
    }

    #[test]
    fn backfill_replay_beats_fifo_on_utilization() {
        let jobs = vec![
            Job::new(0, 0.0, 3, WorkUnit::compute_bound(5e12)),
            Job::new(1, 1.0, 4, WorkUnit::compute_bound(5e12)),
            Job::new(2, 2.0, 1, WorkUnit::compute_bound(5e12)),
        ];
        let fifo = BatchScheduler::new(4, SchedulerPolicy::Fifo).schedule(&jobs, estimate);
        let easy = BatchScheduler::new(4, SchedulerPolicy::EasyBackfill).schedule(&jobs, estimate);
        let fifo_outcome = replay(&fifo, &jobs, &mut pool(2));
        let easy_outcome = replay(&easy, &jobs, &mut pool(2));
        assert!(
            easy_outcome.makespan_s <= fifo_outcome.makespan_s + 1e-6,
            "easy {} vs fifo {}",
            easy_outcome.makespan_s,
            fifo_outcome.makespan_s
        );
        assert!(easy_outcome.utilization >= fifo_outcome.utilization - 1e-9);
    }

    #[test]
    fn downclocked_pool_trades_time_for_power() {
        let jobs = jobs();
        let schedule = BatchScheduler::new(4, SchedulerPolicy::Fifo).schedule(&jobs, estimate);
        let mut fast_pool = pool(3);
        let fast = replay(&schedule, &jobs, &mut fast_pool);
        let mut slow_pool = pool(3);
        for node in slow_pool.iter_mut() {
            node.set_pstate(2);
        }
        let slow = replay(&schedule, &jobs, &mut slow_pool);
        assert!(slow.makespan_s > fast.makespan_s);
        let fast_power = fast.energy_j / fast.makespan_s;
        let slow_power = slow.energy_j / slow.makespan_s;
        assert!(
            slow_power < fast_power,
            "downclocking must cut average power"
        );
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn undersized_pool_panics() {
        let jobs = vec![Job::new(0, 0.0, 4, WorkUnit::compute_bound(1e12))];
        let schedule = BatchScheduler::new(4, SchedulerPolicy::Fifo).schedule(&jobs, estimate);
        let mut nodes = pool(4);
        let mut small: Vec<Node> = nodes.drain(0..2).collect();
        replay(&schedule, &jobs, &mut small);
    }
}
