//! Task-pool dispatch strategies.
//!
//! The drug-discovery use case (§VII-a): "These problems are massively
//! parallel, but demonstrate unpredictable imbalances in the computational
//! time ... Dynamic load balancing and task placement are critical."
//! Three strategies are compared by experiment U1:
//!
//! * [`DispatchStrategy::StaticPartition`] — block-partition tasks up
//!   front (the naive MPI decomposition);
//! * [`DispatchStrategy::DynamicGreedy`] — self-scheduling: each device
//!   pulls the next task when free;
//! * [`DispatchStrategy::HeterogeneityAware`] — self-scheduling that also
//!   routes large tasks to the fastest devices (longest-processing-time
//!   heuristic on the estimated cost).

use antarex_sim::job::Task;
use antarex_sim::node::Node;

/// How to spread a task pool across devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchStrategy {
    /// Contiguous blocks assigned up front.
    StaticPartition,
    /// Pull-based self-scheduling in task order.
    DynamicGreedy,
    /// Pull-based, largest tasks first, fastest devices preferred.
    HeterogeneityAware,
}

impl DispatchStrategy {
    /// All strategies, for sweeps.
    pub fn all() -> [DispatchStrategy; 3] {
        [
            DispatchStrategy::StaticPartition,
            DispatchStrategy::DynamicGreedy,
            DispatchStrategy::HeterogeneityAware,
        ]
    }

    /// Strategy name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchStrategy::StaticPartition => "static",
            DispatchStrategy::DynamicGreedy => "dynamic",
            DispatchStrategy::HeterogeneityAware => "hetero-aware",
        }
    }
}

/// A compute device a task can run on: node CPU cores or one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Device {
    /// Index of the node in the pool.
    pub node: usize,
    /// `None` = CPU; `Some(i)` = accelerator `i` of that node.
    pub accelerator: Option<usize>,
}

/// Result of running a task pool.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchOutcome {
    /// Wall-clock makespan, seconds (slowest device's finish time).
    pub makespan_s: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Per-device busy time, seconds.
    pub device_busy_s: Vec<f64>,
    /// Tasks executed per device.
    pub device_tasks: Vec<usize>,
}

impl DispatchOutcome {
    /// Load imbalance: `max(busy) / mean(busy)`; 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        let max = self.device_busy_s.iter().cloned().fold(0.0, f64::max);
        let mean = self.device_busy_s.iter().sum::<f64>() / self.device_busy_s.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Enumerates the devices of a node pool (CPU + every accelerator).
pub fn devices_of(nodes: &[Node]) -> Vec<Device> {
    let mut devices = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        devices.push(Device {
            node: i,
            accelerator: None,
        });
        for a in 0..node.spec().accelerators.len() {
            devices.push(Device {
                node: i,
                accelerator: Some(a),
            });
        }
    }
    devices
}

/// Estimated execution time of a task on a device (used for routing; the
/// actual cost comes from executing on the node model).
fn estimate_s(nodes: &[Node], device: Device, task: &Task) -> f64 {
    let node = &nodes[device.node];
    match device.accelerator {
        None => {
            let peak = node.spec().cpu_peak_gflops(node.pstate().freq_ghz) * 1e9;
            (task.work.flops / peak).max(task.work.bytes / (node.spec().mem_bw_gbs * 1e9))
        }
        Some(a) => node.spec().accelerators[a].exec_time_s(task.work.flops, task.work.bytes),
    }
}

fn execute_on(nodes: &mut [Node], device: Device, task: &Task) -> (f64, f64) {
    let node = &mut nodes[device.node];
    let outcome = match device.accelerator {
        None => node.execute(&task.work),
        Some(a) => node.execute_offloaded(&task.work, a),
    };
    (outcome.time_s, outcome.energy_j)
}

/// Runs `tasks` over the node pool with the given strategy.
///
/// # Panics
///
/// Panics if the pool is empty.
pub fn run_task_pool(
    nodes: &mut [Node],
    tasks: &[Task],
    strategy: DispatchStrategy,
) -> DispatchOutcome {
    let devices = devices_of(nodes);
    assert!(!devices.is_empty(), "no devices to dispatch to");
    let mut busy = vec![0.0f64; devices.len()];
    let mut counts = vec![0usize; devices.len()];
    let mut energy = 0.0;

    match strategy {
        DispatchStrategy::StaticPartition => {
            // contiguous blocks, one per device
            let chunk = tasks.len().div_ceil(devices.len().max(1));
            for (d, block) in tasks.chunks(chunk.max(1)).enumerate() {
                let device = devices[d.min(devices.len() - 1)];
                for task in block {
                    let (t, e) = execute_on(nodes, device, task);
                    busy[d.min(devices.len() - 1)] += t;
                    counts[d.min(devices.len() - 1)] += 1;
                    energy += e;
                }
            }
        }
        DispatchStrategy::DynamicGreedy | DispatchStrategy::HeterogeneityAware => {
            let mut order: Vec<&Task> = tasks.iter().collect();
            if strategy == DispatchStrategy::HeterogeneityAware {
                // longest processing time first
                order.sort_by(|a, b| b.work.flops.total_cmp(&a.work.flops));
            }
            for task in order {
                // pull model: the device that would *finish* this task
                // soonest takes it (greedy earliest-finish-time)
                let (d, _) = devices
                    .iter()
                    .enumerate()
                    .map(|(d, &dev)| (d, busy[d] + estimate_s(nodes, dev, task)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty");
                let (t, e) = execute_on(nodes, devices[d], task);
                busy[d] += t;
                counts[d] += 1;
                energy += e;
            }
        }
    }

    DispatchOutcome {
        makespan_s: busy.iter().cloned().fold(0.0, f64::max),
        energy_j: energy,
        device_busy_s: busy,
        device_tasks: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::node::NodeSpec;
    use antarex_sim::workload::docking_tasks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cpu_pool(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node::nominal(NodeSpec::cineca_xeon(), i))
            .collect()
    }

    #[test]
    fn devices_enumerated() {
        let nodes = vec![
            Node::nominal(NodeSpec::cineca_accelerated(), 0),
            Node::nominal(NodeSpec::cineca_xeon(), 1),
        ];
        let devices = devices_of(&nodes);
        assert_eq!(devices.len(), 4, "cpu+2gpu on node 0, cpu on node 1");
    }

    #[test]
    fn dynamic_beats_static_on_heavy_tail() {
        // the U1 claim: self-scheduling fixes the imbalance of static
        // partitioning under heavy-tailed task costs
        // docking libraries are processed in catalog order, which is
        // correlated with molecule size: sort to model that, making the
        // contiguous blocks of static partitioning maximally lumpy
        let mut rng = StdRng::seed_from_u64(77);
        let mut tasks = docking_tasks(400, 5e10, 1.0, &mut rng);
        tasks.sort_by(|a, b| a.work.flops.total_cmp(&b.work.flops));
        let mut nodes_a = cpu_pool(8);
        let static_run = run_task_pool(&mut nodes_a, &tasks, DispatchStrategy::StaticPartition);
        let mut nodes_b = cpu_pool(8);
        let dynamic_run = run_task_pool(&mut nodes_b, &tasks, DispatchStrategy::DynamicGreedy);
        assert!(
            dynamic_run.makespan_s < static_run.makespan_s * 0.85,
            "dynamic {} vs static {}",
            dynamic_run.makespan_s,
            static_run.makespan_s
        );
        assert!(dynamic_run.imbalance() < static_run.imbalance());
    }

    #[test]
    fn hetero_aware_wins_on_heterogeneous_pool() {
        let mut rng = StdRng::seed_from_u64(78);
        let tasks = docking_tasks(300, 1e11, 1.0, &mut rng);
        let pool = || {
            vec![
                Node::nominal(NodeSpec::cineca_accelerated(), 0),
                Node::nominal(NodeSpec::cineca_xeon(), 1),
            ]
        };
        let mut a = pool();
        let greedy = run_task_pool(&mut a, &tasks, DispatchStrategy::DynamicGreedy);
        let mut b = pool();
        let aware = run_task_pool(&mut b, &tasks, DispatchStrategy::HeterogeneityAware);
        assert!(
            aware.makespan_s <= greedy.makespan_s * 1.02,
            "aware {} vs greedy {}",
            aware.makespan_s,
            greedy.makespan_s
        );
        // accelerators take the bulk of the work
        let accel_tasks: usize = aware.device_tasks[1] + aware.device_tasks[2];
        assert!(accel_tasks > aware.device_tasks[0]);
    }

    #[test]
    fn all_tasks_are_executed_exactly_once() {
        let mut rng = StdRng::seed_from_u64(79);
        let tasks = docking_tasks(100, 1e10, 0.8, &mut rng);
        for strategy in DispatchStrategy::all() {
            let mut nodes = cpu_pool(3);
            let outcome = run_task_pool(&mut nodes, &tasks, strategy);
            let total: usize = outcome.device_tasks.iter().sum();
            assert_eq!(total, 100, "{}", strategy.name());
            assert!(outcome.energy_j > 0.0);
        }
    }

    #[test]
    fn imbalance_metric() {
        let outcome = DispatchOutcome {
            makespan_s: 4.0,
            energy_j: 1.0,
            device_busy_s: vec![4.0, 2.0, 2.0],
            device_tasks: vec![1, 1, 1],
        };
        assert!((outcome.imbalance() - 1.5).abs() < 1e-12);
    }
}
