//! RAPL-style power capping.
//!
//! Node-level capping picks the fastest P-state whose estimated full-load
//! power stays under the cap; cluster-level capping splits a facility
//! budget across nodes, either uniformly or weighted by demand — the
//! "maximum power budget that can be allocated to a specific computation"
//! from §IV.

use crate::error::{check_budget_w, RtrmError};
use antarex_obs::{Counter, Gauge, MetricsRegistry, Scope};
use antarex_sim::node::Node;

/// Observability handles for power-cap decisions, registered on the
/// shared metric plane. The capping policy is unchanged; these
/// wrappers only make its decisions visible — how often the budget is
/// split, how many splits were refused for lack of alive nodes, how
/// often enforcement actually clamped a node, and the current
/// budget/demand/granted levels.
#[derive(Debug, Clone)]
pub struct PowercapObs {
    splits: Counter,
    splits_refused: Counter,
    clamps: Counter,
    budget_w: Gauge,
    demand: Gauge,
    granted_w: Gauge,
}

impl PowercapObs {
    /// Registers the power-cap metrics on `registry` (idempotent: a
    /// second registration returns handles onto the same cells).
    /// Counters are [`Scope::Invariant`] — split and clamp decisions
    /// are pure functions of the workload, not of worker scheduling.
    pub fn register(registry: &MetricsRegistry) -> Self {
        PowercapObs {
            splits: registry.counter("rtrm_power_splits_total", Scope::Invariant),
            splits_refused: registry.counter("rtrm_power_splits_refused_total", Scope::Invariant),
            clamps: registry.counter("rtrm_pstate_clamps_total", Scope::Invariant),
            budget_w: registry.gauge("rtrm_power_budget_watts", Scope::Invariant),
            demand: registry.gauge("rtrm_power_demand_weight", Scope::Invariant),
            granted_w: registry.gauge("rtrm_power_granted_watts", Scope::Invariant),
        }
    }

    /// Budget splits performed.
    pub fn splits(&self) -> u64 {
        self.splits.get()
    }

    /// Splits refused because no node was alive to receive the budget.
    pub fn splits_refused(&self) -> u64 {
        self.splits_refused.get()
    }

    /// Enforcement calls that actually lowered a node's P-state.
    pub fn clamps(&self) -> u64 {
        self.clamps.get()
    }
}

/// [`try_weighted_split`] with its decision recorded on `obs`: the
/// attempted budget and summed finite demand land in gauges, a refusal
/// (empty alive set) bumps the refusal counter, and a successful split
/// records the granted total (= budget, conservation).
pub fn try_weighted_split_observed(
    budget_w: f64,
    weights: &[f64],
    obs: &PowercapObs,
) -> Option<Vec<f64>> {
    obs.budget_w.set(budget_w);
    let demand: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    obs.demand.set(demand);
    match try_weighted_split(budget_w, weights) {
        Some(split) => {
            obs.splits.inc();
            obs.granted_w.set(split.iter().sum());
            Some(split)
        }
        None => {
            obs.splits_refused.inc();
            obs.granted_w.set(0.0);
            None
        }
    }
}

/// Estimates the node's full-activity power at a P-state index, at the
/// node's present temperature (the quantity a RAPL controller regulates).
pub fn estimated_power_w(node: &Node, pstate_index: usize) -> f64 {
    estimated_power_at_temp(node, pstate_index, node.temp_c())
}

/// [`estimated_power_w`] at an explicitly supplied junction
/// temperature. A controller behind degraded telemetry must regulate
/// against its *sensed* (held/EWMA/assume-worst) temperature rather
/// than reaching into ground truth — that is the difference between a
/// model of the plant and the plant itself. Non-finite temperatures
/// fall back to a pessimistic 95 °C so a lying sensor can only
/// over-estimate power and back off.
pub fn estimated_power_at_temp(node: &Node, pstate_index: usize, temp_c: f64) -> f64 {
    let temp_c = if temp_c.is_finite() { temp_c } else { 95.0 };
    let pstate = node.spec().pstates.state(pstate_index);
    let per_socket =
        node.spec()
            .socket_power
            .total_w(pstate, 1.0, temp_c, node.variation().leakage_factor);
    per_socket * node.spec().sockets as f64
}

/// A node power capper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCapper {
    cap_w: f64,
}

impl PowerCapper {
    /// Creates a capper with the given node budget in watts.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    pub fn new(cap_w: f64) -> Self {
        Self::try_new(cap_w).expect("power cap must be positive")
    }

    /// Creates a capper, rejecting non-finite or non-positive caps with
    /// a typed error instead of panicking.
    pub fn try_new(cap_w: f64) -> Result<Self, RtrmError> {
        check_budget_w("power cap", cap_w).map(|cap_w| PowerCapper { cap_w })
    }

    /// The budget.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Updates the budget.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    pub fn set_cap(&mut self, cap_w: f64) {
        self.try_set_cap(cap_w).expect("power cap must be positive");
    }

    /// Updates the budget, rejecting invalid caps with a typed error.
    pub fn try_set_cap(&mut self, cap_w: f64) -> Result<(), RtrmError> {
        self.cap_w = check_budget_w("power cap", cap_w)?;
        Ok(())
    }

    /// The fastest P-state whose estimated power respects the cap
    /// (index 0 if even the slowest exceeds it — the cap is then
    /// unenforceable and the caller should shed load instead).
    pub fn admissible_pstate(&self, node: &Node) -> usize {
        self.admissible_pstate_at_temp(node, node.temp_c())
    }

    /// [`admissible_pstate`](PowerCapper::admissible_pstate) evaluated
    /// at an explicitly sensed junction temperature — the form a
    /// controller behind a degraded sensor channel must use (see
    /// [`estimated_power_at_temp`]).
    pub fn admissible_pstate_at_temp(&self, node: &Node, temp_c: f64) -> usize {
        let mut chosen = 0;
        for idx in 0..node.spec().pstates.len() {
            if estimated_power_at_temp(node, idx, temp_c) <= self.cap_w {
                chosen = idx;
            }
        }
        chosen
    }

    /// Applies the cap: clamps the node's current P-state.
    /// Returns the chosen index.
    pub fn enforce(&self, node: &mut Node) -> usize {
        let admissible = self.admissible_pstate(node);
        if node.pstate_index() > admissible {
            node.set_pstate(admissible);
        }
        node.pstate_index()
    }

    /// [`enforce`](PowerCapper::enforce) with the decision recorded on
    /// `obs`: counts the enforcement as a clamp only when the node's
    /// P-state was actually lowered.
    pub fn enforce_observed(&self, node: &mut Node, obs: &PowercapObs) -> usize {
        let before = node.pstate_index();
        let chosen = self.enforce(node);
        if chosen < before {
            obs.clamps.inc();
        }
        obs.budget_w.set(self.cap_w);
        chosen
    }
}

/// Splits a cluster budget uniformly across `nodes` nodes.
///
/// # Panics
///
/// Panics if `nodes` is zero; use [`try_uniform_split`] when the alive
/// set may be empty (e.g. every node crashed).
pub fn uniform_split(budget_w: f64, nodes: usize) -> Vec<f64> {
    try_uniform_split(budget_w, nodes).expect("no nodes to budget")
}

/// [`uniform_split`] that returns `None` instead of panicking when
/// `nodes` is zero — the case a fault-ridden cluster actually hits when
/// every node is down and there is nobody to give the budget to.
pub fn try_uniform_split(budget_w: f64, nodes: usize) -> Option<Vec<f64>> {
    if nodes == 0 {
        return None;
    }
    Some(vec![budget_w / nodes as f64; nodes])
}

/// Splits a cluster budget proportionally to per-node demand weights
/// (e.g. queued work); weights of zero receive an idle floor of 5% of the
/// uniform share.
///
/// # Panics
///
/// Panics if `weights` is empty; use [`try_weighted_split`] when the
/// alive set may be empty.
pub fn weighted_split(budget_w: f64, weights: &[f64]) -> Vec<f64> {
    try_weighted_split(budget_w, weights).expect("no nodes to budget")
}

/// [`weighted_split`] that returns `None` instead of panicking on an
/// empty weight list. Non-finite weights (a NaN utilization from a dead
/// sensor) are treated as zero demand rather than poisoning every
/// node's share.
pub fn try_weighted_split(budget_w: f64, weights: &[f64]) -> Option<Vec<f64>> {
    if weights.is_empty() {
        return None;
    }
    let weights: Vec<f64> = weights
        .iter()
        .map(|w| if w.is_finite() && *w > 0.0 { *w } else { 0.0 })
        .collect();
    Some(weighted_split_clean(budget_w, &weights))
}

/// A stable 64-bit digest of one cap decision — the budget and the
/// resulting per-node shares, folded bit-exactly (FNV-1a over the IEEE
/// bit patterns). The causal-tracing pipeline records this as the
/// payload of an `rtrm`-layer trace event, so a power split can be
/// linked to the requests it throttled and compared across runs
/// without serializing the whole share vector.
pub fn split_digest(budget_w: f64, shares: &[f64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(budget_w.to_bits());
    eat(shares.len() as u64);
    for share in shares {
        eat(share.to_bits());
    }
    hash
}

fn weighted_split_clean(budget_w: f64, weights: &[f64]) -> Vec<f64> {
    let floor = 0.05 * budget_w / weights.len() as f64;
    let reserve = floor * weights.len() as f64;
    let remaining = (budget_w - reserve).max(0.0);
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            if total > 0.0 {
                floor + remaining * w / total
            } else {
                budget_w / weights.len() as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::job::WorkUnit;
    use antarex_sim::node::NodeSpec;

    #[test]
    fn split_digest_is_stable_and_sensitive() {
        let shares = weighted_split(100.0, &[1.0, 2.0, 3.0]);
        let a = split_digest(100.0, &shares);
        let b = split_digest(100.0, &shares);
        assert_eq!(a, b, "digest is a pure function of the decision");
        assert_ne!(a, split_digest(101.0, &shares), "budget changes digest");
        let mut nudged = shares.clone();
        nudged[0] += 1e-9;
        assert_ne!(a, split_digest(100.0, &nudged), "bit-level sensitivity");
        assert_ne!(split_digest(0.0, &[]), split_digest(0.0, &[0.0]));
    }

    #[test]
    fn estimated_power_grows_with_pstate() {
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let lo = estimated_power_w(&node, 0);
        let hi = estimated_power_w(&node, node.spec().pstates.max_index());
        assert!(hi > lo * 1.5);
    }

    #[test]
    fn cap_selects_fastest_admissible_state() {
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let hi_power = estimated_power_w(&node, node.spec().pstates.max_index());
        // generous cap: fastest state allowed
        let capper = PowerCapper::new(hi_power + 10.0);
        assert_eq!(
            capper.admissible_pstate(&node),
            node.spec().pstates.max_index()
        );
        // tight cap: must back off
        let capper = PowerCapper::new(hi_power * 0.6);
        let idx = capper.admissible_pstate(&node);
        assert!(idx < node.spec().pstates.max_index());
        assert!(estimated_power_w(&node, idx) <= hi_power * 0.6);
    }

    #[test]
    fn enforce_clamps_but_never_raises() {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.set_pstate(2);
        let generous = PowerCapper::new(1e6);
        assert_eq!(generous.enforce(&mut node), 2, "cap must not overclock");
        node.set_pstate(node.spec().pstates.max_index());
        let tight = PowerCapper::new(estimated_power_w(&node, 3));
        let chosen = tight.enforce(&mut node);
        assert!(chosen <= 3);
    }

    #[test]
    fn capped_node_draws_less_power() {
        let work = WorkUnit::compute_bound(1e12);
        let mut free = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let uncapped = free.execute(&work);
        let mut capped = Node::nominal(NodeSpec::cineca_xeon(), 1);
        PowerCapper::new(uncapped.avg_power_w * 0.7).enforce(&mut capped);
        let capped_outcome = capped.execute(&work);
        assert!(capped_outcome.avg_power_w < uncapped.avg_power_w);
        assert!(
            capped_outcome.time_s > uncapped.time_s,
            "capping costs time"
        );
    }

    #[test]
    fn uniform_and_weighted_splits_conserve_budget() {
        let uniform = uniform_split(1000.0, 4);
        assert_eq!(uniform, vec![250.0; 4]);
        let weighted = weighted_split(1000.0, &[3.0, 1.0, 0.0, 0.0]);
        let total: f64 = weighted.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9);
        assert!(weighted[0] > weighted[1]);
        assert!(weighted[2] > 0.0, "idle floor present");
        assert_eq!(weighted[2], weighted[3]);
    }

    #[test]
    fn weighted_split_with_all_zero_weights_is_uniform() {
        let split = weighted_split(400.0, &[0.0, 0.0]);
        assert_eq!(split, vec![200.0, 200.0]);
    }

    #[test]
    fn try_splits_survive_an_empty_cluster() {
        assert_eq!(try_uniform_split(1000.0, 0), None);
        assert_eq!(try_weighted_split(1000.0, &[]), None);
        assert_eq!(try_uniform_split(1000.0, 2), Some(vec![500.0, 500.0]));
    }

    #[test]
    fn nan_weights_do_not_poison_the_split() {
        let split = try_weighted_split(1000.0, &[f64::NAN, 1.0]).expect("two nodes");
        assert!(split.iter().all(|w| w.is_finite()), "{split:?}");
        let total: f64 = split.iter().sum();
        assert!((total - 1000.0).abs() < 1e-9);
        assert!(split[1] > split[0], "the NaN node gets only the floor");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let _ = PowerCapper::new(0.0);
    }

    #[test]
    fn try_new_returns_typed_errors_instead_of_panicking() {
        assert!(PowerCapper::try_new(250.0).is_ok());
        for bad in [0.0, -10.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    PowerCapper::try_new(bad),
                    Err(RtrmError::InvalidBudget {
                        what: "power cap",
                        ..
                    })
                ),
                "cap {bad}"
            );
        }
        let mut capper = PowerCapper::new(100.0);
        assert!(capper.try_set_cap(f64::NAN).is_err());
        assert_eq!(capper.cap_w(), 100.0, "failed update must not corrupt");
        assert!(capper.try_set_cap(300.0).is_ok());
        assert_eq!(capper.cap_w(), 300.0);
    }

    #[test]
    fn explicit_temperature_estimation_matches_and_degrades_safely() {
        let node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let idx = node.spec().pstates.max_index();
        assert_eq!(
            estimated_power_w(&node, idx),
            estimated_power_at_temp(&node, idx, node.temp_c()),
            "at the true temperature the two estimators coincide"
        );
        // hotter silicon leaks more
        assert!(
            estimated_power_at_temp(&node, idx, 85.0) > estimated_power_at_temp(&node, idx, 45.0)
        );
        // a NaN-sensed temperature is assume-worst: at least as much
        // power as any plausible reading, so the capper backs off
        let worst = estimated_power_at_temp(&node, idx, f64::NAN);
        assert!(worst.is_finite());
        assert!(worst >= estimated_power_at_temp(&node, idx, 85.0));
        let cap = PowerCapper::new(estimated_power_at_temp(&node, idx, 45.0));
        assert!(
            cap.admissible_pstate_at_temp(&node, f64::NAN)
                <= cap.admissible_pstate_at_temp(&node, 45.0)
        );
    }

    #[test]
    fn observed_split_matches_unobserved_and_counts_decisions() {
        let registry = MetricsRegistry::new();
        let obs = PowercapObs::register(&registry);
        let weights = [3.0, 1.0, f64::NAN];
        let observed = try_weighted_split_observed(1000.0, &weights, &obs).expect("three nodes");
        assert_eq!(
            observed,
            try_weighted_split(1000.0, &weights).unwrap(),
            "observation must not change the policy"
        );
        assert_eq!(obs.splits(), 1);
        assert_eq!(obs.splits_refused(), 0);
        // empty alive set: refused, not split
        assert_eq!(try_weighted_split_observed(1000.0, &[], &obs), None);
        assert_eq!(obs.splits(), 1);
        assert_eq!(obs.splits_refused(), 1);
    }

    #[test]
    fn observed_enforce_counts_only_real_clamps() {
        let registry = MetricsRegistry::new();
        let obs = PowercapObs::register(&registry);
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        node.set_pstate(node.spec().pstates.max_index());
        let tight = PowerCapper::new(estimated_power_w(&node, 1));
        tight.enforce_observed(&mut node, &obs);
        assert_eq!(obs.clamps(), 1, "a lowering counts");
        tight.enforce_observed(&mut node, &obs);
        assert_eq!(obs.clamps(), 1, "already-admissible node is not a clamp");
    }

    #[test]
    fn observed_metrics_appear_on_the_registry() {
        let registry = MetricsRegistry::new();
        let obs = PowercapObs::register(&registry);
        try_weighted_split_observed(500.0, &[1.0, 1.0], &obs);
        let exposition = antarex_obs::exposition(&registry.snapshot(None));
        assert!(
            exposition.contains("rtrm_power_splits_total 1"),
            "{exposition}"
        );
        assert!(exposition.contains("rtrm_power_budget_watts 500"));
        assert!(exposition.contains("rtrm_power_granted_watts 500"));
    }
}
