//! DVFS governors.
//!
//! The paper's §V baseline is "the default frequency selection of the
//! Linux OS power governor", against which "an optimal selection of
//! operating points can save from 18% to 50% of node energy". The Linux
//! policies are reproduced with their documented semantics; the ANTAREX
//! [`GovernorKind::EnergyOptimal`] policy probes the P-state table for the
//! workload at hand (it has the node model available — the oracle the
//! paper's runtime learns toward).

use antarex_sim::job::WorkUnit;
use antarex_sim::node::Node;

/// Which frequency-selection policy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorKind {
    /// Pin the fastest P-state (Linux `performance`).
    Performance,
    /// Pin the slowest P-state (Linux `powersave`).
    Powersave,
    /// Jump to max when utilization exceeds 80%, otherwise drop to the
    /// lowest state that keeps utilization below it (Linux `ondemand`).
    Ondemand,
    /// Step one P-state up/down when utilization crosses 80%/20%
    /// (Linux `conservative`).
    Conservative,
    /// Choose the P-state minimizing measured energy for the workload
    /// (the ANTAREX optimal operating point).
    EnergyOptimal,
}

impl GovernorKind {
    /// All implemented policies.
    pub fn all() -> [GovernorKind; 5] {
        [
            GovernorKind::Performance,
            GovernorKind::Powersave,
            GovernorKind::Ondemand,
            GovernorKind::Conservative,
            GovernorKind::EnergyOptimal,
        ]
    }

    /// Canonical (Linux cpufreq) name.
    pub fn name(self) -> &'static str {
        match self {
            GovernorKind::Performance => "performance",
            GovernorKind::Powersave => "powersave",
            GovernorKind::Ondemand => "ondemand",
            GovernorKind::Conservative => "conservative",
            GovernorKind::EnergyOptimal => "energy-optimal",
        }
    }
}

/// A stateful governor instance driving one node.
#[derive(Debug, Clone)]
pub struct Governor {
    kind: GovernorKind,
    up_threshold: f64,
    down_threshold: f64,
    last_utilization: f64,
}

impl Governor {
    /// Creates a governor of the given kind with Linux-default thresholds
    /// (up 80%, down 20%).
    pub fn new(kind: GovernorKind) -> Self {
        Governor {
            kind,
            up_threshold: 0.8,
            down_threshold: 0.2,
            last_utilization: 1.0,
        }
    }

    /// The policy kind.
    pub fn kind(&self) -> GovernorKind {
        self.kind
    }

    /// Feeds the utilization observed over the last sampling period
    /// (0..=1); governors with dynamic policies react on the next
    /// [`Governor::select`].
    pub fn observe_utilization(&mut self, utilization: f64) {
        self.last_utilization = utilization.clamp(0.0, 1.0);
    }

    /// Selects the P-state index for the upcoming period. For
    /// `EnergyOptimal`, `workload` must describe the work about to run;
    /// the other policies ignore it.
    pub fn select(&mut self, node: &Node, workload: Option<&WorkUnit>) -> usize {
        let table = &node.spec().pstates;
        let max = table.max_index();
        match self.kind {
            GovernorKind::Performance => max,
            GovernorKind::Powersave => 0,
            GovernorKind::Ondemand => {
                if self.last_utilization > self.up_threshold {
                    max
                } else {
                    // lowest frequency that would keep utilization < up_threshold
                    let current_freq = node.pstate().freq_ghz;
                    let needed = current_freq * self.last_utilization / self.up_threshold;
                    table.nearest(needed)
                }
            }
            GovernorKind::Conservative => {
                let current = node.pstate_index();
                if self.last_utilization > self.up_threshold {
                    (current + 1).min(max)
                } else if self.last_utilization < self.down_threshold {
                    current.saturating_sub(1)
                } else {
                    current
                }
            }
            GovernorKind::EnergyOptimal => match workload {
                Some(work) => optimal_pstate(node, work),
                None => max,
            },
        }
    }
}

/// Probes every P-state on a clone of the node, returning the index that
/// minimizes energy for `work` (the oracle operating point).
pub fn optimal_pstate(node: &Node, work: &WorkUnit) -> usize {
    let mut best = (node.spec().pstates.max_index(), f64::INFINITY);
    for idx in 0..node.spec().pstates.len() {
        let mut probe = node.clone();
        probe.set_pstate(idx);
        let outcome = probe.execute(work);
        if outcome.energy_j < best.1 {
            best = (idx, outcome.energy_j);
        }
    }
    best.0
}

/// Runs a stream of work units under a governor, returning total
/// `(time_s, energy_j)`. Utilization is fed back between units the way
/// cpufreq samples CPU load.
pub fn run_with_governor(
    node: &mut Node,
    governor: &mut Governor,
    work_units: &[WorkUnit],
) -> (f64, f64) {
    let mut time = 0.0;
    let mut energy = 0.0;
    for work in work_units {
        let idx = governor.select(node, Some(work));
        node.set_pstate(idx);
        let outcome = node.execute(work);
        time += outcome.time_s;
        energy += outcome.energy_j;
        // utilization proxy: compute share of the roofline at this freq
        let peak = node.spec().cpu_peak_gflops(node.pstate().freq_ghz) * 1e9;
        let compute_s = work.flops / peak;
        governor.observe_utilization(compute_s / outcome.time_s);
    }
    (time, energy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::node::NodeSpec;

    fn node() -> Node {
        Node::nominal(NodeSpec::cineca_xeon(), 0)
    }

    #[test]
    fn static_policies() {
        let node = node();
        let max = node.spec().pstates.max_index();
        assert_eq!(
            Governor::new(GovernorKind::Performance).select(&node, None),
            max
        );
        assert_eq!(
            Governor::new(GovernorKind::Powersave).select(&node, None),
            0
        );
    }

    #[test]
    fn ondemand_races_when_busy_and_relaxes_when_idle() {
        let node = node();
        let mut gov = Governor::new(GovernorKind::Ondemand);
        gov.observe_utilization(0.95);
        assert_eq!(gov.select(&node, None), node.spec().pstates.max_index());
        gov.observe_utilization(0.10);
        assert!(gov.select(&node, None) < node.spec().pstates.max_index() / 2);
    }

    #[test]
    fn conservative_steps_gradually() {
        let mut n = node();
        n.set_pstate(4);
        let mut gov = Governor::new(GovernorKind::Conservative);
        gov.observe_utilization(0.95);
        assert_eq!(gov.select(&n, None), 5);
        gov.observe_utilization(0.05);
        assert_eq!(gov.select(&n, None), 3);
        gov.observe_utilization(0.5);
        assert_eq!(gov.select(&n, None), 4, "hysteresis band holds");
    }

    #[test]
    fn optimal_pstate_depends_on_workload() {
        let node = node();
        let mem = optimal_pstate(&node, &WorkUnit::memory_bound(5e11));
        let cpu = optimal_pstate(&node, &WorkUnit::compute_bound(5e12));
        assert!(
            mem < cpu,
            "memory-bound optimum ({mem}) below compute-bound ({cpu})"
        );
    }

    #[test]
    fn energy_optimal_beats_performance_governor() {
        // the C3 claim: optimal operating point saves substantial energy
        // vs the default Linux policy on a memory-heavy workload
        let work = vec![WorkUnit::memory_bound(2e11); 8];
        let mut n1 = node();
        let (_, e_perf) = run_with_governor(
            &mut n1,
            &mut Governor::new(GovernorKind::Performance),
            &work,
        );
        let mut n2 = node();
        let (_, e_opt) = run_with_governor(
            &mut n2,
            &mut Governor::new(GovernorKind::EnergyOptimal),
            &work,
        );
        let saving = 1.0 - e_opt / e_perf;
        assert!(
            saving > 0.18,
            "optimal saves only {:.1}% (< paper's 18–50% band)",
            saving * 100.0
        );
        assert!(saving < 0.60, "saving {saving} suspiciously large");
    }

    #[test]
    fn governor_names() {
        assert_eq!(GovernorKind::Ondemand.name(), "ondemand");
        assert_eq!(GovernorKind::all().len(), 5);
    }

    #[test]
    fn run_with_governor_accumulates() {
        let mut n = node();
        let mut gov = Governor::new(GovernorKind::Ondemand);
        let (t, e) = run_with_governor(&mut n, &mut gov, &[WorkUnit::compute_bound(1e12); 3]);
        assert!(t > 0.0 && e > 0.0);
        assert_eq!(n.flops_done(), 3e12);
    }
}
