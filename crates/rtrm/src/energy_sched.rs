//! Energy-aware frequency assignment for concurrent jobs.
//!
//! The paper cites the SuperMUC energy-aware scheduling study (§V, ref. 22):
//! a scheduler that assigns per-job CPU frequencies, trading a little
//! runtime for substantial energy under a facility power budget. The
//! [`EnergyAwareAssigner`] does exactly that over the simulated node
//! model:
//!
//! 1. start every job at its *energy-optimal* P-state (the per-workload
//!    optimum the ANTAREX runtime learns);
//! 2. while the concurrent power estimate exceeds the facility cap,
//!    down-clock the job with the cheapest marginal slowdown per watt
//!    shed.

use crate::governor::optimal_pstate;
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};

/// One job to co-schedule: a number of nodes running a workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Job identifier.
    pub id: u64,
    /// Nodes the job occupies.
    pub nodes: usize,
    /// Per-node repeating work unit (profile).
    pub profile: WorkUnit,
}

/// The frequency assignment for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Job identifier.
    pub job_id: u64,
    /// Chosen P-state index.
    pub pstate: usize,
    /// Estimated per-node power at that state, watts.
    pub node_power_w: f64,
    /// Estimated per-unit runtime at that state, seconds.
    pub unit_time_s: f64,
    /// Estimated per-unit, per-node energy, joules.
    pub unit_energy_j: f64,
}

/// Result of an assignment round.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPlan {
    /// Per-job assignments.
    pub assignments: Vec<Assignment>,
    /// Estimated total concurrent power, watts.
    pub total_power_w: f64,
    /// Whether the cap could be met.
    pub feasible: bool,
}

/// Probes a job profile at one P-state on a scratch node.
fn probe(spec: &NodeSpec, pstate: usize, profile: &WorkUnit) -> (f64, f64, f64) {
    let mut node = Node::nominal(spec.clone(), 0);
    node.set_pstate(pstate);
    let outcome = node.execute(profile);
    (outcome.avg_power_w, outcome.time_s, outcome.energy_j)
}

/// The energy-aware frequency assigner.
#[derive(Debug, Clone)]
pub struct EnergyAwareAssigner {
    spec: NodeSpec,
    cap_w: f64,
}

impl EnergyAwareAssigner {
    /// Creates an assigner for a homogeneous partition of `spec` nodes
    /// under a facility power cap.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    pub fn new(spec: NodeSpec, cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        EnergyAwareAssigner { spec, cap_w }
    }

    /// The facility cap.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Assigns P-states to the concurrent `jobs`.
    pub fn assign(&self, jobs: &[JobRequest]) -> EnergyPlan {
        let mut states: Vec<usize> = jobs
            .iter()
            .map(|job| {
                let node = Node::nominal(self.spec.clone(), 0);
                optimal_pstate(&node, &job.profile)
            })
            .collect();
        let metrics = |job: &JobRequest, pstate: usize| probe(&self.spec, pstate, &job.profile);

        let total = |states: &[usize]| -> f64 {
            jobs.iter()
                .zip(states)
                .map(|(job, &s)| metrics(job, s).0 * job.nodes as f64)
                .sum()
        };

        let mut feasible = true;
        while total(&states) > self.cap_w {
            // job with the cheapest marginal slowdown per watt shed
            let mut best: Option<(usize, f64)> = None;
            for (i, job) in jobs.iter().enumerate() {
                if states[i] == 0 {
                    continue;
                }
                let (p_now, t_now, _) = metrics(job, states[i]);
                let (p_down, t_down, _) = metrics(job, states[i] - 1);
                let shed = (p_now - p_down) * job.nodes as f64;
                if shed <= 0.0 {
                    continue;
                }
                let slowdown = (t_down - t_now).max(0.0);
                let ratio = slowdown / shed;
                if best.is_none_or(|(_, b)| ratio < b) {
                    best = Some((i, ratio));
                }
            }
            match best {
                Some((i, _)) => states[i] -= 1,
                None => {
                    feasible = false;
                    break;
                }
            }
        }

        let assignments = jobs
            .iter()
            .zip(&states)
            .map(|(job, &pstate)| {
                let (power, time, energy) = metrics(job, pstate);
                Assignment {
                    job_id: job.id,
                    pstate,
                    node_power_w: power,
                    unit_time_s: time,
                    unit_energy_j: energy,
                }
            })
            .collect();
        let total_power_w = total(&states);
        EnergyPlan {
            assignments,
            total_power_w,
            feasible: feasible && total_power_w <= self.cap_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> Vec<JobRequest> {
        vec![
            JobRequest {
                id: 0,
                nodes: 4,
                profile: WorkUnit::memory_bound(2e11),
            },
            JobRequest {
                id: 1,
                nodes: 4,
                profile: WorkUnit::compute_bound(5e11),
            },
        ]
    }

    #[test]
    fn generous_cap_keeps_energy_optimal_states() {
        let assigner = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 1e6);
        let plan = assigner.assign(&jobs());
        assert!(plan.feasible);
        // memory-bound job sits at a lower P-state than the compute-bound
        assert!(plan.assignments[0].pstate < plan.assignments[1].pstate);
    }

    #[test]
    fn tight_cap_downclocks_the_cheapest_job_first() {
        let generous = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 1e6).assign(&jobs());
        let cap = generous.total_power_w * 0.85;
        let plan = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), cap).assign(&jobs());
        assert!(plan.feasible, "15% shed must be achievable");
        assert!(plan.total_power_w <= cap);
        // someone was down-clocked
        let total_states: usize = plan.assignments.iter().map(|a| a.pstate).sum();
        let generous_states: usize = generous.assignments.iter().map(|a| a.pstate).sum();
        assert!(total_states < generous_states);
        // the memory-bound job (free slowdown) should absorb the first cuts
        assert!(
            plan.assignments[0].pstate <= generous.assignments[0].pstate,
            "memory-bound job down-clocked first"
        );
    }

    #[test]
    fn impossible_cap_is_reported_infeasible() {
        let plan = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 10.0).assign(&jobs());
        assert!(!plan.feasible);
        // everything pinned to the floor
        assert!(plan.assignments.iter().all(|a| a.pstate == 0));
    }

    #[test]
    fn capped_plan_costs_little_runtime() {
        // the SuperMUC finding: a modest cap costs percent-level runtime
        // on memory-sensitive mixes while shedding real power
        let generous = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 1e6).assign(&jobs());
        let cap = generous.total_power_w * 0.9;
        let plan = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), cap).assign(&jobs());
        let slowdown: f64 = plan
            .assignments
            .iter()
            .zip(&generous.assignments)
            .map(|(a, b)| a.unit_time_s / b.unit_time_s)
            .fold(1.0f64, f64::max);
        assert!(plan.total_power_w <= cap);
        assert!(slowdown < 1.30, "worst job slowdown {slowdown}");
    }

    #[test]
    fn empty_job_list() {
        let plan = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 100.0).assign(&[]);
        assert!(plan.feasible);
        assert_eq!(plan.total_power_w, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let _ = EnergyAwareAssigner::new(NodeSpec::cineca_xeon(), 0.0);
    }
}
