//! Hierarchical power management: cluster → node control loops.
//!
//! Paper §V calls for "scalable and hierarchical optimal control-loops
//! ... at different time scale". [`HierarchicalPowerManager`] composes a
//! slow cluster loop (splitting a facility power budget across nodes by
//! demand) with fast node loops (a capper clamping each node's P-state).
//! The ablation experiment (A3) contrasts it with [`FlatPowerManager`],
//! which pins one uniform P-state from a single global estimate and
//! cannot react to per-node demand or variability.

use crate::error::{check_budget_w, RtrmError};
use crate::powercap::{estimated_power_w, try_uniform_split, try_weighted_split, PowerCapper};
use antarex_sim::job::WorkUnit;
use antarex_sim::node::Node;

fn check_shape(nodes: usize, work: usize) -> Result<(), RtrmError> {
    if nodes == work {
        Ok(())
    } else {
        Err(RtrmError::ShapeMismatch {
            what: "one work list per node",
            expected: nodes,
            actual: work,
        })
    }
}

/// Outcome of running a managed workload phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagedOutcome {
    /// Total energy, joules.
    pub energy_j: f64,
    /// Makespan across nodes, seconds.
    pub makespan_s: f64,
    /// Peak simultaneous estimated power, watts.
    pub peak_power_w: f64,
    /// Seconds-weighted power-budget overshoot integral, W·s.
    pub overshoot_ws: f64,
}

/// The hierarchical manager: per-node cappers fed by a demand-weighted
/// split of the cluster budget.
#[derive(Debug, Clone)]
pub struct HierarchicalPowerManager {
    budget_w: f64,
}

impl HierarchicalPowerManager {
    /// Creates a manager with the given cluster budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn new(budget_w: f64) -> Self {
        Self::try_new(budget_w).expect("budget must be positive")
    }

    /// Creates a manager, rejecting non-finite or non-positive budgets
    /// with a typed error instead of panicking.
    pub fn try_new(budget_w: f64) -> Result<Self, RtrmError> {
        check_budget_w("cluster budget", budget_w)
            .map(|budget_w| HierarchicalPowerManager { budget_w })
    }

    /// Runs one phase: every node executes its own work list; before each
    /// unit the cluster loop re-splits the budget by remaining demand and
    /// the node loop enforces the local cap.
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one work list per node.
    pub fn run_phase(&self, nodes: &mut [Node], work: &[Vec<WorkUnit>]) -> ManagedOutcome {
        self.try_run_phase(nodes, work)
            .expect("one work list per node")
    }

    /// [`run_phase`](Self::run_phase) with the shape assertion turned
    /// into a typed error: a dispatcher that mis-counts its own queue
    /// gets an [`RtrmError::ShapeMismatch`] back, not a panic in the
    /// middle of the control loop.
    pub fn try_run_phase(
        &self,
        nodes: &mut [Node],
        work: &[Vec<WorkUnit>],
    ) -> Result<ManagedOutcome, RtrmError> {
        check_shape(nodes.len(), work.len())?;
        let mut node_time = vec![0.0f64; nodes.len()];
        let mut energy = 0.0;
        let mut peak: f64 = 0.0;
        let mut overshoot = 0.0;
        let rounds = work.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            // cluster loop: demand = remaining flops per node
            let weights: Vec<f64> = work
                .iter()
                .map(|list| {
                    list[round.min(list.len().saturating_sub(1))..]
                        .iter()
                        .map(|w| w.flops)
                        .sum::<f64>()
                        * if round < list.len() { 1.0 } else { 0.0 }
                })
                .collect();
            let caps =
                try_weighted_split(self.budget_w, &weights).ok_or(RtrmError::NoAliveNodes)?;
            let mut round_power = 0.0;
            for (i, node) in nodes.iter_mut().enumerate() {
                let Some(unit) = work[i].get(round) else {
                    continue;
                };
                // node loop: enforce the local cap at max speed otherwise
                node.set_pstate(node.spec().pstates.max_index());
                PowerCapper::new(caps[i].max(1.0)).enforce(node);
                let outcome = node.execute(unit);
                energy += outcome.energy_j;
                node_time[i] += outcome.time_s;
                round_power += outcome.avg_power_w;
            }
            peak = peak.max(round_power);
            if round_power > self.budget_w {
                overshoot += round_power - self.budget_w;
            }
        }
        Ok(ManagedOutcome {
            energy_j: energy,
            makespan_s: node_time.iter().cloned().fold(0.0, f64::max),
            peak_power_w: peak,
            overshoot_ws: overshoot,
        })
    }
}

/// The flat baseline: one global P-state chosen once from the nominal
/// node estimate, no per-node adjustment.
#[derive(Debug, Clone)]
pub struct FlatPowerManager {
    budget_w: f64,
}

impl FlatPowerManager {
    /// Creates the flat manager.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn new(budget_w: f64) -> Self {
        Self::try_new(budget_w).expect("budget must be positive")
    }

    /// Creates the flat manager, rejecting invalid budgets with a typed
    /// error instead of panicking.
    pub fn try_new(budget_w: f64) -> Result<Self, RtrmError> {
        check_budget_w("cluster budget", budget_w).map(|budget_w| FlatPowerManager { budget_w })
    }

    /// Runs one phase with a single uniform P-state for every node,
    /// derived from the uniform budget split against node 0's estimate.
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one work list per node.
    pub fn run_phase(&self, nodes: &mut [Node], work: &[Vec<WorkUnit>]) -> ManagedOutcome {
        self.try_run_phase(nodes, work)
            .expect("one work list per node")
    }

    /// [`run_phase`](Self::run_phase) with typed errors in place of the
    /// shape assertion and the empty-cluster panic.
    pub fn try_run_phase(
        &self,
        nodes: &mut [Node],
        work: &[Vec<WorkUnit>],
    ) -> Result<ManagedOutcome, RtrmError> {
        check_shape(nodes.len(), work.len())?;
        let caps = try_uniform_split(self.budget_w, nodes.len()).ok_or(RtrmError::NoAliveNodes)?;
        // one decision, from the first node's estimate only
        let mut pstate = 0;
        for idx in 0..nodes[0].spec().pstates.len() {
            if estimated_power_w(&nodes[0], idx) <= caps[0] {
                pstate = idx;
            }
        }
        let mut node_time = vec![0.0f64; nodes.len()];
        let mut energy = 0.0;
        let mut peak: f64 = 0.0;
        let mut overshoot = 0.0;
        let rounds = work.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            let mut round_power = 0.0;
            for (i, node) in nodes.iter_mut().enumerate() {
                let Some(unit) = work[i].get(round) else {
                    continue;
                };
                node.set_pstate(pstate);
                let outcome = node.execute(unit);
                energy += outcome.energy_j;
                node_time[i] += outcome.time_s;
                round_power += outcome.avg_power_w;
            }
            peak = peak.max(round_power);
            if round_power > self.budget_w {
                overshoot += round_power - self.budget_w;
            }
        }
        Ok(ManagedOutcome {
            energy_j: energy,
            makespan_s: node_time.iter().cloned().fold(0.0, f64::max),
            peak_power_w: peak,
            overshoot_ws: overshoot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::node::NodeSpec;
    use antarex_sim::variability::ProcessVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn varied_pool(n: usize, seed: u64) -> Vec<Node> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Node::with_variation(
                    NodeSpec::cineca_xeon(),
                    i,
                    ProcessVariation::sample(&mut rng),
                )
            })
            .collect()
    }

    fn skewed_work(n: usize) -> Vec<Vec<WorkUnit>> {
        // node 0 has 4x the work of the others
        (0..n)
            .map(|i| {
                let units = if i == 0 { 8 } else { 2 };
                vec![WorkUnit::compute_bound(1e12); units]
            })
            .collect()
    }

    #[test]
    fn hierarchical_respects_budget_better_than_flat() {
        let nodes_count = 4;
        let budget = 700.0;
        let mut pool_h = varied_pool(nodes_count, 10);
        let hier =
            HierarchicalPowerManager::new(budget).run_phase(&mut pool_h, &skewed_work(nodes_count));
        let mut pool_f = varied_pool(nodes_count, 10);
        let flat = FlatPowerManager::new(budget).run_phase(&mut pool_f, &skewed_work(nodes_count));
        assert!(
            hier.overshoot_ws <= flat.overshoot_ws + 1e-9,
            "hierarchical overshoot {} vs flat {}",
            hier.overshoot_ws,
            flat.overshoot_ws
        );
    }

    #[test]
    fn hierarchical_finishes_skewed_work_faster() {
        let nodes_count = 4;
        let budget = 800.0;
        let mut pool_h = varied_pool(nodes_count, 11);
        let hier =
            HierarchicalPowerManager::new(budget).run_phase(&mut pool_h, &skewed_work(nodes_count));
        let mut pool_f = varied_pool(nodes_count, 11);
        let flat = FlatPowerManager::new(budget).run_phase(&mut pool_f, &skewed_work(nodes_count));
        // demand-weighted budget lets the loaded node run faster
        assert!(
            hier.makespan_s <= flat.makespan_s * 1.05,
            "hier {} vs flat {}",
            hier.makespan_s,
            flat.makespan_s
        );
    }

    #[test]
    fn outcome_fields_populated() {
        let mut pool = varied_pool(2, 12);
        let outcome = HierarchicalPowerManager::new(600.0)
            .run_phase(&mut pool, &vec![vec![WorkUnit::compute_bound(1e12)]; 2]);
        assert!(outcome.energy_j > 0.0);
        assert!(outcome.makespan_s > 0.0);
        assert!(outcome.peak_power_w > 0.0);
    }

    #[test]
    #[should_panic(expected = "one work list per node")]
    fn mismatched_work_rejected() {
        let mut pool = varied_pool(2, 13);
        HierarchicalPowerManager::new(600.0).run_phase(&mut pool, &[vec![]]);
    }

    #[test]
    fn try_apis_return_typed_errors_instead_of_panicking() {
        use crate::error::RtrmError;
        for bad in [0.0, -100.0, f64::NAN, f64::INFINITY] {
            assert!(HierarchicalPowerManager::try_new(bad).is_err(), "{bad}");
            assert!(FlatPowerManager::try_new(bad).is_err(), "{bad}");
        }
        let hier = HierarchicalPowerManager::try_new(600.0).expect("valid budget");
        let mut pool = varied_pool(2, 14);
        assert_eq!(
            hier.try_run_phase(&mut pool, &[vec![]]),
            Err(RtrmError::ShapeMismatch {
                what: "one work list per node",
                expected: 2,
                actual: 1
            })
        );
        let flat = FlatPowerManager::try_new(600.0).expect("valid budget");
        assert!(flat.try_run_phase(&mut pool, &[vec![]]).is_err());
        // the empty cluster is an error, not a panic
        assert_eq!(
            flat.try_run_phase(&mut [], &[]),
            Err(RtrmError::NoAliveNodes)
        );
    }

    #[test]
    fn try_run_phase_matches_the_panicking_form() {
        let work = skewed_work(4);
        let mut pool_a = varied_pool(4, 15);
        let via_panic = HierarchicalPowerManager::new(700.0).run_phase(&mut pool_a, &work);
        let mut pool_b = varied_pool(4, 15);
        let via_result = HierarchicalPowerManager::try_new(700.0)
            .unwrap()
            .try_run_phase(&mut pool_b, &work)
            .unwrap();
        assert_eq!(via_panic, via_result);
    }
}
