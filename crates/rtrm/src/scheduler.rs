//! Batch scheduling: FIFO and EASY backfilling.
//!
//! The cluster-level "job dispatching" knob of §V. Jobs request node
//! counts; the scheduler assigns start times against a fixed node pool
//! using runtime estimates. EASY backfilling lets short narrow jobs jump
//! the queue when they cannot delay the first blocked job — the classic
//! utilization/energy win for irregular HPC workloads.

use antarex_sim::job::Job;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerPolicy {
    /// Strict first-come-first-served.
    Fifo,
    /// FCFS with EASY backfilling (conservative single-reservation).
    EasyBackfill,
}

/// One scheduled job.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The job id.
    pub job_id: u64,
    /// Assigned start time, seconds.
    pub start_s: f64,
    /// Estimated end time, seconds.
    pub end_s: f64,
    /// Number of nodes held.
    pub nodes: usize,
}

/// Result of scheduling a job list.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Placements in start order.
    pub placements: Vec<Placement>,
    /// Completion time of the last job.
    pub makespan_s: f64,
    /// Mean waiting time (start − arrival).
    pub mean_wait_s: f64,
}

/// A batch scheduler over `total_nodes` identical nodes.
///
/// Runtime estimates are provided by the caller via `estimate`, mirroring
/// the user-supplied wall-time limits real schedulers rely on.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    total_nodes: usize,
    policy: SchedulerPolicy,
}

impl BatchScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `total_nodes` is zero.
    pub fn new(total_nodes: usize, policy: SchedulerPolicy) -> Self {
        assert!(total_nodes > 0, "cluster has no nodes");
        BatchScheduler {
            total_nodes,
            policy,
        }
    }

    /// The node pool size.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// Schedules `jobs` (must be sorted by arrival), with `estimate`
    /// giving each job's runtime in seconds.
    ///
    /// # Panics
    ///
    /// Panics if a job requests more nodes than the pool holds.
    pub fn schedule(&self, jobs: &[Job], estimate: impl Fn(&Job) -> f64) -> Schedule {
        for job in jobs {
            assert!(
                job.nodes <= self.total_nodes,
                "job {} wants {} nodes, pool has {}",
                job.id,
                job.nodes,
                self.total_nodes
            );
        }
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo(jobs, &estimate),
            SchedulerPolicy::EasyBackfill => self.backfill(jobs, &estimate),
        }
    }

    fn fifo(&self, jobs: &[Job], estimate: &dyn Fn(&Job) -> f64) -> Schedule {
        let mut running: Vec<Placement> = Vec::new();
        let mut placements = Vec::new();
        for job in jobs {
            let duration = estimate(job);
            let start = self.earliest_start(&running, job.arrival_s, job.nodes);
            let placement = Placement {
                job_id: job.id,
                start_s: start,
                end_s: start + duration,
                nodes: job.nodes,
            };
            running.push(placement.clone());
            placements.push(placement);
        }
        summarize(jobs, placements)
    }

    fn backfill(&self, jobs: &[Job], estimate: &dyn Fn(&Job) -> f64) -> Schedule {
        // Process in arrival order, but allow later jobs to start before
        // an earlier blocked job when they do not push back its
        // reservation (EASY: one reservation for the queue head).
        let mut placements: Vec<Placement> = Vec::new();
        let mut scheduled = vec![false; jobs.len()];
        let mut count = 0;
        while count < jobs.len() {
            // queue head = first unscheduled job
            let head = (0..jobs.len())
                .find(|&i| !scheduled[i])
                .expect("jobs remain");
            let head_job = &jobs[head];
            let head_duration = estimate(head_job);
            let head_start = self.earliest_start(&placements, head_job.arrival_s, head_job.nodes);
            // try to backfill later arrivals that fit before head_start
            let mut backfilled = false;
            for i in (head + 1)..jobs.len() {
                if scheduled[i] || jobs[i].arrival_s > head_start {
                    continue;
                }
                let duration = estimate(&jobs[i]);
                let start = self.earliest_start(&placements, jobs[i].arrival_s, jobs[i].nodes);
                // must end before the head reservation OR leave enough
                // nodes for the head to start on time
                let coexists = self.free_nodes_at(
                    &placements,
                    head_start,
                    Some((start, start + duration, jobs[i].nodes)),
                ) >= head_job.nodes;
                if start + duration <= head_start || coexists {
                    placements.push(Placement {
                        job_id: jobs[i].id,
                        start_s: start,
                        end_s: start + duration,
                        nodes: jobs[i].nodes,
                    });
                    scheduled[i] = true;
                    count += 1;
                    backfilled = true;
                    break;
                }
            }
            if backfilled {
                continue;
            }
            placements.push(Placement {
                job_id: head_job.id,
                start_s: head_start,
                end_s: head_start + head_duration,
                nodes: head_job.nodes,
            });
            scheduled[head] = true;
            count += 1;
        }
        placements.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        summarize(jobs, placements)
    }

    /// Earliest time ≥ `not_before` at which `nodes` nodes are free.
    fn earliest_start(&self, running: &[Placement], not_before: f64, nodes: usize) -> f64 {
        let mut candidates: Vec<f64> = vec![not_before];
        candidates.extend(running.iter().map(|p| p.end_s).filter(|&t| t > not_before));
        candidates.sort_by(f64::total_cmp);
        for t in candidates {
            if self.free_nodes_at(running, t, None) >= nodes {
                return t;
            }
        }
        unreachable!("all jobs eventually end")
    }

    /// Free nodes at time `t` (half-open intervals `[start, end)`), with
    /// an optional hypothetical extra placement.
    fn free_nodes_at(
        &self,
        running: &[Placement],
        t: f64,
        extra: Option<(f64, f64, usize)>,
    ) -> usize {
        let mut used: usize = running
            .iter()
            .filter(|p| p.start_s <= t && t < p.end_s)
            .map(|p| p.nodes)
            .sum();
        if let Some((start, end, nodes)) = extra {
            if start <= t && t < end {
                used += nodes;
            }
        }
        self.total_nodes.saturating_sub(used)
    }
}

fn summarize(jobs: &[Job], placements: Vec<Placement>) -> Schedule {
    let makespan_s = placements.iter().map(|p| p.end_s).fold(0.0, f64::max);
    let mut wait = 0.0;
    for job in jobs {
        if let Some(p) = placements.iter().find(|p| p.job_id == job.id) {
            wait += p.start_s - job.arrival_s;
        }
    }
    let mean_wait_s = if jobs.is_empty() {
        0.0
    } else {
        wait / jobs.len() as f64
    };
    Schedule {
        placements,
        makespan_s,
        mean_wait_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::job::WorkUnit;

    fn job(id: u64, arrival: f64, nodes: usize) -> Job {
        Job::new(id, arrival, nodes, WorkUnit::compute_bound(1e12))
    }

    /// Fixed one-hour estimate for every job.
    fn hour(_: &Job) -> f64 {
        3600.0
    }

    #[test]
    fn fifo_runs_jobs_in_order_with_capacity() {
        let scheduler = BatchScheduler::new(4, SchedulerPolicy::Fifo);
        let jobs = vec![job(0, 0.0, 2), job(1, 0.0, 2), job(2, 0.0, 2)];
        let schedule = scheduler.schedule(&jobs, hour);
        // jobs 0 and 1 run together; job 2 waits
        assert_eq!(schedule.placements[0].start_s, 0.0);
        assert_eq!(schedule.placements[1].start_s, 0.0);
        assert_eq!(schedule.placements[2].start_s, 3600.0);
        assert_eq!(schedule.makespan_s, 7200.0);
    }

    #[test]
    fn fifo_head_of_line_blocking() {
        let scheduler = BatchScheduler::new(4, SchedulerPolicy::Fifo);
        // wide job blocks; narrow job behind it must wait under FIFO
        let jobs = vec![job(0, 0.0, 4), job(1, 1.0, 4), job(2, 2.0, 1)];
        let schedule = scheduler.schedule(&jobs, hour);
        let p2 = schedule.placements.iter().find(|p| p.job_id == 2).unwrap();
        assert!(p2.start_s >= 7200.0, "narrow job stuck behind wide ones");
    }

    #[test]
    fn backfill_lets_narrow_jobs_jump_safely() {
        let scheduler = BatchScheduler::new(4, SchedulerPolicy::EasyBackfill);
        // job 0 holds all nodes for an hour; job 1 (wide) must wait until
        // 3600; job 2 (narrow, short) can backfill into the empty space...
        // there is none at t<3600 (all 4 busy), so give job 0 only 3 nodes.
        let jobs = vec![
            Job::new(0, 0.0, 3, WorkUnit::compute_bound(1e12)),
            Job::new(1, 1.0, 4, WorkUnit::compute_bound(1e12)),
            Job::new(2, 2.0, 1, WorkUnit::compute_bound(1e12)),
        ];
        let schedule = scheduler.schedule(&jobs, hour);
        let p1 = schedule.placements.iter().find(|p| p.job_id == 1).unwrap();
        let p2 = schedule.placements.iter().find(|p| p.job_id == 2).unwrap();
        assert_eq!(p1.start_s, 3600.0, "wide job reserved at hour one");
        assert!(
            p2.start_s < 3600.0,
            "narrow job backfills the idle node: started {}",
            p2.start_s
        );
        // and the reservation was not delayed
        assert_eq!(p1.start_s, 3600.0);
    }

    #[test]
    fn backfill_never_beats_fifo_on_makespan_here() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| job(i, i as f64 * 10.0, 1 + (i as usize % 3)))
            .collect();
        let fifo = BatchScheduler::new(4, SchedulerPolicy::Fifo).schedule(&jobs, hour);
        let easy = BatchScheduler::new(4, SchedulerPolicy::EasyBackfill).schedule(&jobs, hour);
        assert!(easy.mean_wait_s <= fifo.mean_wait_s + 1e-9);
        assert!(easy.makespan_s <= fifo.makespan_s + 1e-9);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let scheduler = BatchScheduler::new(4, SchedulerPolicy::EasyBackfill);
        let jobs: Vec<Job> = (0..12).map(|i| job(i, (i / 3) as f64, 2)).collect();
        let schedule = scheduler.schedule(&jobs, hour);
        // sample usage at many instants
        for k in 0..200 {
            let t = k as f64 * 120.0;
            let used: usize = schedule
                .placements
                .iter()
                .filter(|p| p.start_s <= t && t < p.end_s)
                .map(|p| p.nodes)
                .sum();
            assert!(used <= 4, "overcommitted at t={t}: {used}");
        }
    }

    #[test]
    #[should_panic(expected = "wants")]
    fn oversized_job_rejected() {
        let scheduler = BatchScheduler::new(2, SchedulerPolicy::Fifo);
        scheduler.schedule(&[job(0, 0.0, 3)], hour);
    }
}
