//! # antarex-rtrm — runtime resource & power management
//!
//! Implements the ANTAREX RTRM/RTPM work package (Silvano et al., DATE
//! 2016, §V): "scalable and hierarchical optimal control-loops capable of
//! dynamically leveraging the control knobs together with classical
//! performance/energy control knobs (job dispatching, resource management
//! and DVFS) at different time scale ... to always operate the
//! supercomputer and each application at the most energy-efficient and
//! thermally-safe point."
//!
//! * [`governor`] — DVFS governors: faithful re-implementations of the
//!   Linux `performance`, `powersave`, `ondemand` and `conservative`
//!   policies (the paper's baseline: "the default frequency selection of
//!   the Linux OS power governor"), plus the ANTAREX energy-optimal
//!   per-workload policy;
//! * [`powercap`] — RAPL-style node power capping and cluster-level
//!   budget distribution;
//! * [`scheduler`] — FIFO and EASY-backfilling batch scheduling over the
//!   simulated cluster;
//! * [`dispatch`] — task-pool dispatch strategies for malleable workloads
//!   (static partition, dynamic self-scheduling, heterogeneity-aware) —
//!   the knobs of the drug-discovery use case;
//! * [`thermal_ctrl`] — the thermally-safe operating point: junction
//!   throttling plus the MS3-style "do less when it's too hot" admission
//!   policy;
//! * [`hierarchy`] — the multi-layer control loop composing cluster power
//!   budgeting, job-level managers and node governors;
//! * [`checkpoint`] — coordinated checkpoint/restart with a tunable
//!   interval (Daly-optimal baseline) for the resiliency experiments;
//! * [`cluster_ctrl`] — the fault-tolerant cluster-scale control plane:
//!   facility budget tracking ambient cooling efficiency, sensor-hardened
//!   per-node region cappers, checkpoint-based requeue on node crashes;
//! * [`error`] — typed [`RtrmError`] returned by the non-panicking
//!   control-plane APIs.

pub mod checkpoint;
pub mod cluster_ctrl;
pub mod dispatch;
pub mod energy_sched;
pub mod error;
pub mod governor;
pub mod hierarchy;
pub mod powercap;
pub mod replay;
pub mod scheduler;
pub mod thermal_ctrl;

pub use error::RtrmError;
pub use governor::{Governor, GovernorKind};
pub use powercap::PowerCapper;
pub use scheduler::{BatchScheduler, SchedulerPolicy};
