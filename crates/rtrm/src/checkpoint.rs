//! Coordinated checkpoint/restart with a tunable interval.
//!
//! On a machine that crashes, an application either restarts from zero
//! (losing everything) or periodically saves state and resumes from the
//! last checkpoint. The checkpoint interval is a classic autotuning
//! knob: checkpoint too often and the overhead dominates, too rarely
//! and every crash wastes a long stretch of work. The analytic optimum
//! is Daly's first-order formula `τ* ≈ √(2·C·M) − C` for checkpoint
//! cost `C` and MTBF `M` ([`CheckpointPolicy::daly`]); the resiliency
//! campaign in `antarex-bench` sweeps the interval around it.
//!
//! [`run_to_completion`] replays a piece of work against a list of
//! crash times (from `antarex_sim::faults`) and accounts every second
//! of wall clock as completed work, checkpoint overhead, restart
//! overhead, or wasted (lost) work — the quantities the fault campaign
//! reports.

/// When and how expensively to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Work seconds between checkpoints; `f64::INFINITY` disables
    /// checkpointing (restart-from-zero baseline).
    pub interval_s: f64,
    /// Wall-clock cost of writing one checkpoint, seconds.
    pub cost_s: f64,
    /// Wall-clock cost of restarting from a checkpoint (or from zero)
    /// after a crash, seconds.
    pub restart_s: f64,
}

impl CheckpointPolicy {
    /// A policy with a fixed interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not positive, or costs are negative.
    pub fn every(interval_s: f64, cost_s: f64, restart_s: f64) -> Self {
        assert!(interval_s > 0.0, "checkpoint interval must be positive");
        assert!(
            cost_s >= 0.0 && restart_s >= 0.0,
            "checkpoint costs must be non-negative"
        );
        CheckpointPolicy {
            interval_s,
            cost_s,
            restart_s,
        }
    }

    /// The no-resiliency baseline: never checkpoint, every crash
    /// restarts the run from zero.
    pub fn none(restart_s: f64) -> Self {
        CheckpointPolicy {
            interval_s: f64::INFINITY,
            cost_s: 0.0,
            restart_s,
        }
    }

    /// Daly's first-order optimal interval `√(2·C·M) − C` for
    /// checkpoint cost `C` = `cost_s` and mean time between failures
    /// `M` = `mtbf_s`, clamped below by `cost_s` (the formula goes
    /// non-positive when `M < C/2`, where one should checkpoint
    /// continuously).
    ///
    /// # Panics
    ///
    /// Panics if `mtbf_s` or `cost_s` is not positive.
    pub fn daly(mtbf_s: f64, cost_s: f64, restart_s: f64) -> Self {
        assert!(mtbf_s > 0.0, "MTBF must be positive");
        assert!(cost_s > 0.0, "checkpoint cost must be positive");
        let interval = ((2.0 * cost_s * mtbf_s).sqrt() - cost_s).max(cost_s);
        CheckpointPolicy::every(interval, cost_s, restart_s)
    }

    /// Does this policy ever checkpoint?
    pub fn checkpoints(&self) -> bool {
        self.interval_s.is_finite()
    }
}

/// Daly's first-order optimal interval `√(2·C·M) − C` as a bare
/// cadence, clamped below by `cost_s` — the form consumed by layers
/// that snapshot state but model no separate restart cost (e.g. the
/// serving tier's session-journal compaction).
///
/// # Panics
///
/// Panics if `mtbf_s` or `cost_s` is not positive.
pub fn daly_interval_s(mtbf_s: f64, cost_s: f64) -> f64 {
    CheckpointPolicy::daly(mtbf_s, cost_s, 0.0).interval_s
}

/// Wall-clock accounting of one run under faults.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CheckpointRun {
    /// Productive work completed, seconds. Always equals the requested
    /// work once the run finishes.
    pub completed_work_s: f64,
    /// Work lost to crashes (progress past the last checkpoint),
    /// seconds.
    pub wasted_work_s: f64,
    /// Time spent writing checkpoints, seconds.
    pub checkpoint_overhead_s: f64,
    /// Time spent restarting after crashes, seconds.
    pub restart_overhead_s: f64,
    /// Number of crashes survived.
    pub restarts: usize,
    /// Total wall-clock time, seconds.
    pub wall_clock_s: f64,
}

impl CheckpointRun {
    /// Fraction of wall clock that was not productive work.
    pub fn overhead_fraction(&self) -> f64 {
        if self.wall_clock_s <= 0.0 {
            return 0.0;
        }
        1.0 - self.completed_work_s / self.wall_clock_s
    }
}

/// Runs `work_s` seconds of work under `policy`, injecting the crashes
/// whose wall-clock times are produced by `crashes_between(t0, t1)` —
/// typically a closure over
/// [`FaultSchedule::any_crash_between`](antarex_sim::faults::FaultSchedule::any_crash_between)
/// for coordinated (all-nodes) checkpointing. Only the first crash in
/// each queried window matters; the run restarts and re-queries from
/// the restart time.
///
/// Progress is saved at every checkpoint boundary; a crash loses
/// everything after the last completed checkpoint (or everything, if
/// the policy never checkpoints). The returned [`CheckpointRun`] always
/// has `completed_work_s == work_s`: completed (checkpointed) work is
/// never lost, no matter how the crashes fall.
///
/// # Panics
///
/// Panics if `work_s` is not positive and finite, or if the crash
/// source keeps crashing the run forever (more than 100 000 restarts —
/// an MTBF far below the checkpoint cost, which no interval survives).
pub fn run_to_completion(
    work_s: f64,
    policy: CheckpointPolicy,
    mut crashes_between: impl FnMut(f64, f64) -> Option<f64>,
) -> CheckpointRun {
    assert!(
        work_s > 0.0 && work_s.is_finite(),
        "work must be positive and finite"
    );
    let mut run = CheckpointRun::default();
    let mut saved_work_s = 0.0; // work safely checkpointed
    let mut clock = 0.0; // wall-clock now
    while saved_work_s < work_s {
        // next segment: up to one checkpoint interval, or to the end
        let segment = (work_s - saved_work_s).min(policy.interval_s);
        let is_final = saved_work_s + segment >= work_s;
        // final segment needs no checkpoint write after it
        let ckpt_cost = if is_final || !policy.checkpoints() {
            0.0
        } else {
            policy.cost_s
        };
        let segment_end = clock + segment + ckpt_cost;
        match crashes_between(clock, segment_end) {
            Some(crash_at) => {
                // lose progress since the last checkpoint
                let progressed = (crash_at - clock).min(segment);
                run.wasted_work_s += progressed;
                // partial checkpoint writes are wasted overhead too
                run.checkpoint_overhead_s += (crash_at - clock - progressed).max(0.0);
                run.restarts += 1;
                run.restart_overhead_s += policy.restart_s;
                clock = crash_at + policy.restart_s;
                if !policy.checkpoints() {
                    // restart from zero: all prior "saved" work is gone
                    run.wasted_work_s += saved_work_s;
                    saved_work_s = 0.0;
                }
                assert!(
                    run.restarts <= 100_000,
                    "crash rate too high for this policy to ever finish"
                );
            }
            None => {
                saved_work_s += segment;
                run.checkpoint_overhead_s += ckpt_cost;
                clock = segment_end;
            }
        }
    }
    run.completed_work_s = work_s;
    run.wall_clock_s = clock;
    run
}

/// Adapts a sorted crash-time list (e.g. from
/// [`FaultSchedule::any_crash_between`](antarex_sim::faults::FaultSchedule::any_crash_between)
/// over the whole horizon) into the `crashes_between` closure shape,
/// treating times past the list's end as crash-free.
pub fn crash_source(crash_times: Vec<f64>) -> impl FnMut(f64, f64) -> Option<f64> {
    move |from, to| crash_times.iter().copied().find(|&t| t >= from && t < to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_is_work_plus_checkpoints() {
        let policy = CheckpointPolicy::every(100.0, 2.0, 10.0);
        let run = run_to_completion(1000.0, policy, |_, _| None);
        assert_eq!(run.completed_work_s, 1000.0);
        assert_eq!(run.wasted_work_s, 0.0);
        assert_eq!(run.restarts, 0);
        // 10 segments, final one unwritten: 9 checkpoints
        assert_eq!(run.checkpoint_overhead_s, 18.0);
        assert_eq!(run.wall_clock_s, 1018.0);
    }

    #[test]
    fn no_checkpoint_policy_has_zero_overhead_without_faults() {
        let run = run_to_completion(500.0, CheckpointPolicy::none(10.0), |_, _| None);
        assert_eq!(run.wall_clock_s, 500.0);
        assert_eq!(run.overhead_fraction(), 0.0);
    }

    #[test]
    fn crash_loses_only_uncheckpointed_work() {
        let policy = CheckpointPolicy::every(100.0, 0.0, 5.0);
        // one crash at t=250: 50 s past the checkpoint at t=200
        let run = run_to_completion(1000.0, policy, crash_source(vec![250.0]));
        assert_eq!(run.completed_work_s, 1000.0);
        assert_eq!(run.wasted_work_s, 50.0);
        assert_eq!(run.restarts, 1);
        assert_eq!(run.wall_clock_s, 1000.0 + 50.0 + 5.0);
    }

    #[test]
    fn restart_from_zero_loses_everything() {
        let policy = CheckpointPolicy::none(5.0);
        let run = run_to_completion(300.0, policy, crash_source(vec![250.0]));
        // lost the full 250 s of progress, then reran the whole job
        assert_eq!(run.wasted_work_s, 250.0);
        assert_eq!(run.wall_clock_s, 250.0 + 5.0 + 300.0);
    }

    #[test]
    fn checkpointing_beats_restart_from_zero_under_faults() {
        let crashes = vec![400.0, 900.0, 1400.0, 2100.0, 2900.0];
        let with = run_to_completion(
            2000.0,
            CheckpointPolicy::every(100.0, 1.0, 5.0),
            crash_source(crashes.clone()),
        );
        let without = run_to_completion(2000.0, CheckpointPolicy::none(5.0), crash_source(crashes));
        assert!(with.wasted_work_s < without.wasted_work_s);
        assert!(with.wall_clock_s < without.wall_clock_s);
    }

    #[test]
    fn completed_work_never_lost() {
        // a crash during the checkpoint write itself must not lose the
        // preceding (already saved) segments
        let policy = CheckpointPolicy::every(100.0, 10.0, 2.0);
        // segment [0,100) + ckpt [100,110); crash mid-write at t=105
        let run = run_to_completion(200.0, policy, crash_source(vec![105.0]));
        assert_eq!(run.completed_work_s, 200.0);
        // crash at 105 falls in the first segment's window [0,110):
        // the 100 s of work in it are lost (write unfinished), plus 5 s
        // of partial checkpoint overhead
        assert_eq!(run.wasted_work_s, 100.0);
        assert!(run.wall_clock_s >= 200.0);
    }

    #[test]
    fn daly_interval_matches_formula() {
        let policy = CheckpointPolicy::daly(3600.0, 10.0, 30.0);
        let expected = (2.0f64 * 10.0 * 3600.0).sqrt() - 10.0;
        assert!((policy.interval_s - expected).abs() < 1e-9);
        // degenerate MTBF clamps to the cost floor rather than 0
        let tiny = CheckpointPolicy::daly(1.0, 10.0, 30.0);
        assert_eq!(tiny.interval_s, 10.0);
    }

    #[test]
    fn daly_near_optimal_on_poisson_crashes() {
        // deterministic pseudo-Poisson crash train with MTBF ~ 500 s
        let mtbf = 500.0;
        let mut crashes = Vec::new();
        let mut rng_state: u64 = 42;
        let mut t = 0.0;
        for _ in 0..400 {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (rng_state >> 11) as f64 / (1u64 << 53) as f64;
            t += -mtbf * (1.0 - u).max(f64::EPSILON).ln();
            crashes.push(t);
        }
        let cost = 5.0;
        let daly = CheckpointPolicy::daly(mtbf, cost, 10.0);
        let daly_run = run_to_completion(20_000.0, daly, crash_source(crashes.clone()));
        for interval in [10.0, 5000.0] {
            let other = CheckpointPolicy::every(interval, cost, 10.0);
            let run = run_to_completion(20_000.0, other, crash_source(crashes.clone()));
            assert!(
                daly_run.wall_clock_s <= run.wall_clock_s * 1.05,
                "daly ({:.0}s) lost to interval {interval}: {:.0} vs {:.0}",
                daly.interval_s,
                daly_run.wall_clock_s,
                run.wall_clock_s
            );
        }
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let _ = CheckpointPolicy::every(0.0, 1.0, 1.0);
    }

    #[test]
    fn bare_cadence_matches_the_policy_interval() {
        assert_eq!(
            daly_interval_s(3600.0, 10.0),
            CheckpointPolicy::daly(3600.0, 10.0, 30.0).interval_s
        );
        // degenerate MTBF clamps to the cost floor
        assert_eq!(daly_interval_s(1.0, 10.0), 10.0);
    }
}
