//! Typed errors for the resource-management control plane.
//!
//! A facility controller that re-splits its budget every few virtual
//! seconds cannot afford a panic because one telemetry sample carried a
//! NaN or a crashed node shrank the alive set to zero. Constructors and
//! phase runners in [`crate::hierarchy`] and [`crate::powercap`] expose
//! `try_` variants returning [`RtrmError`]; the legacy panicking forms
//! remain as thin `expect` wrappers so existing callers compile.

use std::fmt;

/// An invalid input to an RTRM control-plane API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtrmError {
    /// A power budget or cap that must be strictly positive and finite
    /// was not.
    InvalidBudget {
        /// Which budget.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two parallel collections that must line up did not (e.g. one
    /// work list per node).
    ShapeMismatch {
        /// What must match.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An operation needed at least one alive node and found none.
    NoAliveNodes,
}

impl fmt::Display for RtrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtrmError::InvalidBudget { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            RtrmError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected {expected}, got {actual}"),
            RtrmError::NoAliveNodes => write!(f, "no alive nodes to manage"),
        }
    }
}

impl std::error::Error for RtrmError {}

/// Validates a budget/cap value: must be finite and strictly positive.
pub fn check_budget_w(what: &'static str, value: f64) -> Result<f64, RtrmError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(RtrmError::InvalidBudget { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RtrmError::InvalidBudget {
            what: "budget",
            value: -1.0
        }
        .to_string()
        .contains("positive"));
        assert!(RtrmError::ShapeMismatch {
            what: "one work list per node",
            expected: 4,
            actual: 3
        }
        .to_string()
        .contains("expected 4"));
        assert!(RtrmError::NoAliveNodes.to_string().contains("alive"));
    }

    #[test]
    fn budget_check_accepts_only_positive_finite() {
        assert!(check_budget_w("b", 100.0).is_ok());
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            assert!(check_budget_w("b", bad).is_err(), "{bad}");
        }
    }
}
