//! Deterministic in-workspace stand-in for the `rand` crate.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the (small) slice of the `rand 0.8` API it actually uses:
//! [`RngCore`] / [`Rng`] / [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] and the [`distributions::Standard`] sampler.
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12),
//! but with the same contract the simulator relies on: identical seeds
//! yield identical sequences, on every platform, forever.

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations. The deterministic generators
/// in this workspace never fail; the type exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RNG failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A half-open range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = unit_f64(rng.next_u64());
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = unit_f64(rng.next_u64()) as f32;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // multiply-shift keeps the draw unbiased enough for
                // simulation purposes and branch-free for determinism
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// expansion upstream `rand` uses, so seeds stay portable).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not cryptographically secure — statistics-grade only, exactly
    /// what a simulator wants: fast, tiny state, fully reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // an all-zero state would be a fixed point of xoshiro
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod distributions {
    //! Minimal distribution framework backing [`Rng::gen`](crate::Rng::gen).

    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: uniform `[0, 1)` for floats,
    /// uniform over the full domain for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod seq {
    //! Random slice operations.

    use super::{Rng, SampleRange};

    /// Choosing from and shuffling slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (0..self.len()).sample_single(rng);
                self.get(idx)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&v));
            let n = rng.gen_range(0..13usize);
            assert!(n < 13);
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(19);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let one = [42];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(23);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen::<f64>();
        assert!((0.0..1.0).contains(&v));
        let items = [1, 2, 3];
        assert!(items.choose(dynamic).is_some());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut ok = [0u8; 5];
        assert!(rng.try_fill_bytes(&mut ok).is_ok());
    }
}
