//! # antarex-precision — customized-precision autotuning
//!
//! "In recent years, customized precision has emerged as a promising
//! approach to achieve power/performance trade-offs when an application can
//! tolerate some loss of quality" (Silvano et al., DATE 2016, §IV). This
//! crate implements the precision-autotuning work package over the mini-C
//! substrate:
//!
//! * [`vars`] — inventory of the floating-point declarations of a function
//!   (parameters, locals, arrays, return type) and type rewriting;
//! * [`profile`] — dynamic-range profiling of function parameters across a
//!   test-input set ("data acquired at runtime, e.g. dynamic range of
//!   function parameters");
//! * [`error`] — output-quality metrics (relative error, RMSE);
//! * [`tuner`] — a Precimonious-style greedy search that lowers each
//!   variable's mantissa width as far as an error budget allows, measuring
//!   quality against the full-precision output and energy via the
//!   interpreter's precision-weighted
//!   [`flop_energy`](antarex_ir::cost::ExecStats::flop_energy).
//!
//! # Examples
//!
//! ```
//! use antarex_ir::parse_program;
//! use antarex_precision::tuner::{PrecisionTuner, TunerOptions};
//! use antarex_ir::value::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "double axpy(double a, double x, double y) {
//!          double t = a * x;
//!          return t + y;
//!      }",
//! )?;
//! let inputs: Vec<Vec<Value>> = (1..=8)
//!     .map(|i| vec![Value::Float(1.5), Value::Float(i as f64), Value::Float(0.25)])
//!     .collect();
//! let tuner = PrecisionTuner::new(program, "axpy", inputs);
//! let outcome = tuner.tune(&TunerOptions { error_budget: 1e-2, ..TunerOptions::default() })?;
//! assert!(outcome.energy_ratio < 1.0, "some precision was shed");
//! assert!(outcome.max_rel_error <= 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod profile;
pub mod tuner;
pub mod vars;

pub use error::{max_rel_error, rel_error, rmse};
pub use tuner::{PrecisionTuner, TuneOutcome, TunerOptions};
pub use vars::{FloatVar, VarKind};
