//! Output-quality metrics for precision tuning.

use antarex_ir::value::Value;

/// Relative error of `approx` against `exact`, with an absolute fallback
/// near zero: `|approx - exact| / max(|exact|, 1e-12)`.
pub fn rel_error(exact: f64, approx: f64) -> f64 {
    (approx - exact).abs() / exact.abs().max(1e-12)
}

/// Maximum relative error across paired outputs. Non-numeric or
/// length-mismatched pairs count as infinite error (fail closed).
pub fn max_rel_error(exact: &[Value], approx: &[Value]) -> f64 {
    if exact.len() != approx.len() {
        return f64::INFINITY;
    }
    exact
        .iter()
        .zip(approx)
        .map(|(e, a)| value_rel_error(e, a))
        .fold(0.0, f64::max)
}

fn value_rel_error(exact: &Value, approx: &Value) -> f64 {
    match (exact, approx) {
        (Value::Array(e), Value::Array(a)) => {
            if e.len() != a.len() {
                return f64::INFINITY;
            }
            e.iter()
                .zip(a)
                .map(|(x, y)| value_rel_error(x, y))
                .fold(0.0, f64::max)
        }
        _ => match (exact.as_f64(), approx.as_f64()) {
            (Some(e), Some(a)) => {
                if e.is_nan() && a.is_nan() {
                    0.0
                } else {
                    rel_error(e, a)
                }
            }
            _ => f64::INFINITY,
        },
    }
}

/// Root-mean-square error across paired scalar outputs.
pub fn rmse(exact: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "length mismatch");
    if exact.is_empty() {
        return 0.0;
    }
    let sum: f64 = exact.iter().zip(approx).map(|(e, a)| (e - a).powi(2)).sum();
    (sum / exact.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error_basic() {
        assert_eq!(rel_error(2.0, 2.0), 0.0);
        assert!((rel_error(2.0, 2.2) - 0.1).abs() < 1e-12);
        // near-zero exact values fall back to absolute scale
        assert!(rel_error(0.0, 1e-6) > 0.0);
    }

    #[test]
    fn max_rel_error_over_values() {
        let exact = [Value::Float(1.0), Value::Float(10.0)];
        let approx = [Value::Float(1.0), Value::Float(11.0)];
        assert!((max_rel_error(&exact, &approx) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn arrays_compared_elementwise() {
        let exact = [Value::from(vec![1.0, 2.0])];
        let approx = [Value::from(vec![1.0, 2.1])];
        assert!((max_rel_error(&exact, &approx) - 0.05).abs() < 1e-12);
        let short = [Value::from(vec![1.0])];
        assert_eq!(max_rel_error(&exact, &short), f64::INFINITY);
    }

    #[test]
    fn type_mismatch_is_infinite() {
        let exact = [Value::Float(1.0)];
        let approx = [Value::Str("oops".into())];
        assert_eq!(max_rel_error(&exact, &approx), f64::INFINITY);
    }

    #[test]
    fn int_outputs_compare_numerically() {
        let exact = [Value::Int(10)];
        let approx = [Value::Int(10)];
        assert_eq!(max_rel_error(&exact, &approx), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
