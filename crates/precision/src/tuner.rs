//! Greedy precision lowering under an error budget.
//!
//! The tuner follows the Precimonious recipe adapted to our substrate:
//! compute full-precision reference outputs over a test-input set, then
//! repeatedly try lowering one variable a rung down the precision ladder,
//! keeping the change only if the worst-case relative error stays within
//! budget. Energy is measured by the engine's precision-weighted
//! [`flop_energy`](antarex_ir::cost::ExecStats::flop_energy).
//!
//! Candidates run on the bytecode VM by default (bit-identical to the
//! reference interpreter, much faster across the many sweep evaluations);
//! [`PrecisionTuner::with_reference_engine`] switches back to the
//! interpreter, and [`PrecisionTuner::with_cache`] shares instrumented
//! bytecode across candidates, sweeps and tuner instances.

use crate::error::max_rel_error;
use crate::vars::{float_vars, set_precision};
use antarex_ir::cost::CostModel;
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::value::Value;
use antarex_ir::{Executor, IrError, Program};
use antarex_vm::{InstrumentedCodeCache, Vm};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The precision ladder, full precision first.
pub const LADDER: [u8; 7] = [52, 23, 16, 12, 10, 8, 5];

/// Options controlling the tuning run.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    /// Maximum tolerated worst-case relative output error.
    pub error_budget: f64,
    /// Maximum greedy sweeps over the variable list.
    pub max_sweeps: usize,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            error_budget: 1e-6,
            max_sweeps: 8,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The program with lowered declarations.
    pub program: Program,
    /// Chosen mantissa width per variable name.
    pub assignment: BTreeMap<String, u8>,
    /// Worst-case relative error of the tuned program over the test set.
    pub max_rel_error: f64,
    /// FP energy of the tuned program relative to full precision (1.0 =
    /// no saving).
    pub energy_ratio: f64,
    /// Evaluations of the test set performed during tuning.
    pub evaluations: usize,
}

/// Precision tuner for one entry function over a test-input set.
#[derive(Debug)]
pub struct PrecisionTuner {
    program: Program,
    function: String,
    inputs: Vec<Vec<Value>>,
    use_reference_engine: bool,
    cache: Option<Arc<InstrumentedCodeCache>>,
}

impl PrecisionTuner {
    /// Creates a tuner. `inputs` is the representative test set; every
    /// candidate assignment is validated against all of it.
    pub fn new(program: Program, function: impl Into<String>, inputs: Vec<Vec<Value>>) -> Self {
        PrecisionTuner {
            program,
            function: function.into(),
            inputs,
            use_reference_engine: false,
            cache: None,
        }
    }

    /// Evaluates candidates on the reference tree-walking interpreter
    /// instead of the bytecode VM (slower; results are identical).
    pub fn with_reference_engine(mut self) -> Self {
        self.use_reference_engine = true;
        self
    }

    /// Shares an instrumented-code cache: candidate programs that recur
    /// across sweeps (or across tuners) lower once.
    pub fn with_cache(mut self, cache: Arc<InstrumentedCodeCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builds the candidate-evaluation engine for one program.
    fn engine(&self, program: &Program) -> Box<dyn Executor> {
        if self.use_reference_engine {
            Box::new(Interp::new(program.clone()))
        } else if let Some(cache) = &self.cache {
            Box::new(Vm::with_cache(program.clone(), CostModel::new(), cache))
        } else {
            Box::new(Vm::new(program.clone()))
        }
    }

    /// Runs the test set, returning outputs and total FP energy.
    fn run(&self, program: &Program) -> Result<(Vec<Value>, f64), IrError> {
        let mut engine = self.engine(program);
        let mut env = ExecEnv::new();
        let mut outputs = Vec::with_capacity(self.inputs.len());
        for args in &self.inputs {
            outputs.push(engine.call(&self.function, args, &mut env)?);
        }
        Ok((outputs, env.stats.flop_energy))
    }

    /// Greedy tuning under the given options.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] if the entry function is missing or the test
    /// set fails to execute at full precision.
    pub fn tune(&self, options: &TunerOptions) -> Result<TuneOutcome, IrError> {
        let function = self
            .program
            .function(&self.function)
            .ok_or_else(|| IrError::Unresolved(self.function.clone()))?;
        let vars = float_vars(function);
        let (reference, full_energy) = self.run(&self.program)?;
        let mut evaluations = 1;

        let mut program = self.program.clone();
        // rung index per variable, all starting at full precision
        let mut rungs: Vec<usize> = vec![0; vars.len()];
        let mut current_error = 0.0;

        for _sweep in 0..options.max_sweeps {
            let mut progressed = false;
            for (i, var) in vars.iter().enumerate() {
                if rungs[i] + 1 >= LADDER.len() {
                    continue;
                }
                let candidate_bits = LADDER[rungs[i] + 1];
                let mut candidate = program.clone();
                set_precision(&mut candidate, &self.function, var, candidate_bits)?;
                match self.run(&candidate) {
                    Ok((outputs, _)) => {
                        evaluations += 1;
                        let err = max_rel_error(&reference, &outputs);
                        if err <= options.error_budget {
                            program = candidate;
                            rungs[i] += 1;
                            current_error = err;
                            progressed = true;
                        }
                    }
                    // lowered precision caused a runtime failure (e.g. a
                    // loop bound collapsing): reject the candidate
                    Err(_) => {
                        evaluations += 1;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        let (outputs, tuned_energy) = self.run(&program)?;
        evaluations += 1;
        let final_error = max_rel_error(&reference, &outputs);
        debug_assert!(final_error <= options.error_budget || vars.is_empty());
        let _ = current_error;
        Ok(TuneOutcome {
            assignment: vars
                .iter()
                .zip(&rungs)
                .map(|(v, &r)| (v.name.clone(), LADDER[r]))
                .collect(),
            program,
            max_rel_error: final_error,
            energy_ratio: if full_energy > 0.0 {
                tuned_energy / full_energy
            } else {
                1.0
            },
            evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    const DOT: &str = "double dot(double a[], double b[], int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
        return s;
    }";

    fn dot_inputs() -> Vec<Vec<Value>> {
        (1..=6)
            .map(|k| {
                let a: Vec<f64> = (0..8).map(|i| 0.1 * (i + k) as f64).collect();
                let b: Vec<f64> = (0..8).map(|i| 1.0 / (1.0 + i as f64)).collect();
                vec![Value::from(a), Value::from(b), Value::Int(8)]
            })
            .collect()
    }

    #[test]
    fn loose_budget_sheds_energy() {
        let program = parse_program(DOT).unwrap();
        let tuner = PrecisionTuner::new(program, "dot", dot_inputs());
        let outcome = tuner
            .tune(&TunerOptions {
                error_budget: 1e-2,
                max_sweeps: 8,
            })
            .unwrap();
        assert!(outcome.energy_ratio < 0.5, "ratio {}", outcome.energy_ratio);
        assert!(outcome.max_rel_error <= 1e-2);
        // some variable actually dropped below double
        assert!(outcome.assignment.values().any(|&b| b < 52));
    }

    #[test]
    fn tight_budget_keeps_more_bits_than_loose() {
        let program = parse_program(DOT).unwrap();
        let tuner = PrecisionTuner::new(program, "dot", dot_inputs());
        let tight = tuner
            .tune(&TunerOptions {
                error_budget: 1e-10,
                max_sweeps: 8,
            })
            .unwrap();
        let loose = tuner
            .tune(&TunerOptions {
                error_budget: 1e-1,
                max_sweeps: 8,
            })
            .unwrap();
        let bits = |o: &TuneOutcome| o.assignment.values().map(|&b| u32::from(b)).sum::<u32>();
        assert!(
            bits(&tight) >= bits(&loose),
            "tight {} vs loose {}",
            bits(&tight),
            bits(&loose)
        );
        assert!(tight.energy_ratio >= loose.energy_ratio);
        assert!(tight.max_rel_error <= 1e-10);
    }

    #[test]
    fn zero_budget_changes_nothing_risky() {
        let program = parse_program(DOT).unwrap();
        let tuner = PrecisionTuner::new(program.clone(), "dot", dot_inputs());
        let outcome = tuner
            .tune(&TunerOptions {
                error_budget: 0.0,
                max_sweeps: 4,
            })
            .unwrap();
        assert_eq!(outcome.max_rel_error, 0.0);
    }

    #[test]
    fn unknown_function_errors() {
        let program = parse_program(DOT).unwrap();
        let tuner = PrecisionTuner::new(program, "ghost", vec![]);
        assert!(tuner.tune(&TunerOptions::default()).is_err());
    }

    #[test]
    fn integer_function_is_a_no_op() {
        let program = parse_program("int f(int x) { return x * 2; }").unwrap();
        let tuner = PrecisionTuner::new(program, "f", vec![vec![Value::Int(3)]]);
        let outcome = tuner.tune(&TunerOptions::default()).unwrap();
        assert!(outcome.assignment.is_empty());
        assert_eq!(outcome.energy_ratio, 1.0);
    }

    #[test]
    fn vm_and_reference_engine_tune_identically() {
        // the greedy search is driven by bit-exact outputs and energies,
        // so both engines must take the exact same decisions
        let options = TunerOptions {
            error_budget: 1e-4,
            max_sweeps: 8,
        };
        let program = parse_program(DOT).unwrap();
        let vm = PrecisionTuner::new(program.clone(), "dot", dot_inputs())
            .tune(&options)
            .unwrap();
        let reference = PrecisionTuner::new(program, "dot", dot_inputs())
            .with_reference_engine()
            .tune(&options)
            .unwrap();
        assert_eq!(vm.assignment, reference.assignment);
        assert_eq!(vm.evaluations, reference.evaluations);
        assert_eq!(
            vm.max_rel_error.to_bits(),
            reference.max_rel_error.to_bits()
        );
        assert_eq!(vm.energy_ratio.to_bits(), reference.energy_ratio.to_bits());
    }

    #[test]
    fn shared_cache_replays_candidate_lowerings() {
        let cache = Arc::new(InstrumentedCodeCache::new());
        let program = parse_program(DOT).unwrap();
        let options = TunerOptions {
            error_budget: 1e-2,
            max_sweeps: 8,
        };
        let first = PrecisionTuner::new(program.clone(), "dot", dot_inputs())
            .with_cache(Arc::clone(&cache))
            .tune(&options)
            .unwrap();
        let after_first = cache.misses();
        // a second tuner over the same program re-walks the same candidate
        // ladder: every lowering replays from the cache
        let second = PrecisionTuner::new(program, "dot", dot_inputs())
            .with_cache(Arc::clone(&cache))
            .tune(&options)
            .unwrap();
        assert_eq!(first.assignment, second.assignment);
        assert_eq!(cache.misses(), after_first, "no new lowerings");
        assert!(cache.hits() >= after_first);
    }

    #[test]
    fn tuned_program_prints_custom_types() {
        let program = parse_program(DOT).unwrap();
        let tuner = PrecisionTuner::new(program, "dot", dot_inputs());
        let outcome = tuner
            .tune(&TunerOptions {
                error_budget: 1e-2,
                max_sweeps: 8,
            })
            .unwrap();
        let text = antarex_ir::printer::print_program(&outcome.program);
        assert!(
            text.contains("float") || outcome.assignment.values().all(|&b| b == 52),
            "{text}"
        );
    }
}
