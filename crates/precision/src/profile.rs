//! Dynamic-range profiling of function parameters.
//!
//! The paper plans "fully automatic dynamic optimizations, based on
//! profiling information, and data acquired at runtime, e.g. dynamic range
//! of function parameters" (§IV). The profiler runs the test-input set and
//! records, per parameter, the observed magnitude range; the tuner uses it
//! to decide which variables to attack first (narrow ranges tolerate fewer
//! mantissa bits gracefully) and to compute the minimum *exponent* range a
//! custom format would need.

use antarex_ir::value::Value;
use antarex_ir::Function;
use std::collections::BTreeMap;

/// Observed value range of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Smallest observed non-zero magnitude.
    pub min_magnitude: f64,
    /// Largest observed magnitude.
    pub max_magnitude: f64,
    /// Number of observations.
    pub samples: u64,
    /// Whether zero was observed.
    pub saw_zero: bool,
}

impl Range {
    fn empty() -> Self {
        Range {
            min_magnitude: f64::INFINITY,
            max_magnitude: 0.0,
            samples: 0,
            saw_zero: false,
        }
    }

    fn observe(&mut self, value: f64) {
        self.samples += 1;
        let mag = value.abs();
        if mag == 0.0 {
            self.saw_zero = true;
            return;
        }
        self.min_magnitude = self.min_magnitude.min(mag);
        self.max_magnitude = self.max_magnitude.max(mag);
    }

    /// Binary orders of magnitude spanned (log2 of max/min), 0 when fewer
    /// than two distinct magnitudes were seen.
    pub fn dynamic_range_bits(&self) -> f64 {
        if self.samples == 0 || self.min_magnitude > self.max_magnitude {
            return 0.0;
        }
        (self.max_magnitude / self.min_magnitude).log2().max(0.0)
    }
}

/// Per-parameter dynamic ranges of a function over a test-input set.
#[derive(Debug, Clone, Default)]
pub struct RangeProfile {
    ranges: BTreeMap<String, Range>,
}

impl RangeProfile {
    /// Profiles `function`'s parameters over `inputs` (each entry is one
    /// argument list). Array arguments contribute every element.
    pub fn of(function: &Function, inputs: &[Vec<Value>]) -> RangeProfile {
        let mut ranges: BTreeMap<String, Range> = BTreeMap::new();
        for args in inputs {
            for (param, arg) in function.params.iter().zip(args) {
                if !param.ty.is_float() {
                    continue;
                }
                let range = ranges
                    .entry(param.name.clone())
                    .or_insert_with(Range::empty);
                match arg {
                    Value::Float(v) => range.observe(*v),
                    Value::Int(v) => range.observe(*v as f64),
                    Value::Array(items) => {
                        for item in items {
                            if let Some(v) = item.as_f64() {
                                range.observe(v);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        RangeProfile { ranges }
    }

    /// The observed range of a parameter.
    pub fn range(&self, param: &str) -> Option<&Range> {
        self.ranges.get(param)
    }

    /// Parameters ordered by ascending dynamic range — the ones most
    /// tolerant of precision reduction first.
    pub fn tuning_order(&self) -> Vec<&str> {
        let mut names: Vec<(&str, f64)> = self
            .ranges
            .iter()
            .map(|(name, range)| (name.as_str(), range.dynamic_range_bits()))
            .collect();
        names.sort_by(|a, b| a.1.total_cmp(&b.1));
        names.into_iter().map(|(n, _)| n).collect()
    }

    /// Number of profiled parameters.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Returns `true` when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    #[test]
    fn profiles_scalars_and_arrays() {
        let program =
            parse_program("double f(double x, double a[], int n) { return x + a[0] + n; }")
                .unwrap();
        let f = program.function("f").unwrap();
        let inputs = vec![
            vec![
                Value::Float(2.0),
                Value::from(vec![0.5, 100.0]),
                Value::Int(1),
            ],
            vec![Value::Float(4.0), Value::from(vec![0.25]), Value::Int(2)],
        ];
        let profile = RangeProfile::of(f, &inputs);
        assert_eq!(profile.len(), 2, "int parameter not profiled");
        let x = profile.range("x").unwrap();
        assert_eq!(x.min_magnitude, 2.0);
        assert_eq!(x.max_magnitude, 4.0);
        assert_eq!(x.samples, 2);
        let a = profile.range("a").unwrap();
        assert_eq!(a.max_magnitude, 100.0);
        assert_eq!(a.min_magnitude, 0.25);
    }

    #[test]
    fn dynamic_range_and_ordering() {
        let program =
            parse_program("double f(double narrow, double wide) { return narrow + wide; }")
                .unwrap();
        let f = program.function("f").unwrap();
        let inputs = vec![
            vec![Value::Float(1.0), Value::Float(1e-6)],
            vec![Value::Float(2.0), Value::Float(1e6)],
        ];
        let profile = RangeProfile::of(f, &inputs);
        assert!(profile.range("narrow").unwrap().dynamic_range_bits() < 2.0);
        assert!(profile.range("wide").unwrap().dynamic_range_bits() > 30.0);
        assert_eq!(profile.tuning_order(), vec!["narrow", "wide"]);
    }

    #[test]
    fn zero_values_tracked_separately() {
        let program = parse_program("double f(double x) { return x; }").unwrap();
        let f = program.function("f").unwrap();
        let inputs = vec![vec![Value::Float(0.0)], vec![Value::Float(3.0)]];
        let profile = RangeProfile::of(f, &inputs);
        let x = profile.range("x").unwrap();
        assert!(x.saw_zero);
        assert_eq!(x.min_magnitude, 3.0, "zero excluded from magnitude range");
    }

    #[test]
    fn empty_inputs_empty_profile() {
        let program = parse_program("double f(double x) { return x; }").unwrap();
        let profile = RangeProfile::of(program.function("f").unwrap(), &[]);
        assert!(profile.is_empty());
    }
}
