//! Inventory and rewriting of a function's floating-point declarations.

use antarex_ir::{Function, IrError, NodePath, Program, Stmt, Type};

/// Where a float variable is declared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Function parameter (by index).
    Param(usize),
    /// Local scalar declaration at a statement path.
    Local(NodePath),
    /// Local array declaration at a statement path.
    Array(NodePath),
    /// The function's return type.
    Return,
}

/// One tunable floating-point declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FloatVar {
    /// Variable name (`"<return>"` for the return type).
    pub name: String,
    /// Declaration site.
    pub kind: VarKind,
    /// Declared type at inventory time.
    pub ty: Type,
}

/// Lists every float declaration of `function`: parameters, locals,
/// arrays and the return type, in a stable order.
pub fn float_vars(function: &Function) -> Vec<FloatVar> {
    let mut vars = Vec::new();
    for (i, param) in function.params.iter().enumerate() {
        if param.ty.is_float() {
            vars.push(FloatVar {
                name: param.name.clone(),
                kind: VarKind::Param(i),
                ty: param.ty,
            });
        }
    }
    for (path, stmt) in NodePath::enumerate(&function.body) {
        match stmt {
            Stmt::Decl { name, ty, .. } if ty.is_float() => vars.push(FloatVar {
                name: name.clone(),
                kind: VarKind::Local(path),
                ty: *ty,
            }),
            Stmt::ArrayDecl { name, ty, .. } if ty.is_float() => vars.push(FloatVar {
                name: name.clone(),
                kind: VarKind::Array(path),
                ty: *ty,
            }),
            _ => {}
        }
    }
    if let Some(ret) = function.ret {
        if ret.is_float() {
            vars.push(FloatVar {
                name: "<return>".to_string(),
                kind: VarKind::Return,
                ty: ret,
            });
        }
    }
    vars
}

/// Rewrites the declaration identified by `var` in `function` (of
/// `program`) to the given mantissa width (52 restores `double`, 23 maps
/// to `float`).
///
/// # Errors
///
/// Returns [`IrError`] if the function or declaration site no longer
/// exists.
pub fn set_precision(
    program: &mut Program,
    function: &str,
    var: &FloatVar,
    bits: u8,
) -> Result<(), IrError> {
    let ty = type_for_bits(bits);
    let mut result = Ok(());
    program.edit_function(function, |f| {
        result = apply(f, var, ty);
    })?;
    result
}

fn apply(function: &mut Function, var: &FloatVar, ty: Type) -> Result<(), IrError> {
    match &var.kind {
        VarKind::Param(i) => {
            let param = function
                .params
                .get_mut(*i)
                .ok_or_else(|| IrError::Unresolved(format!("parameter #{i}")))?;
            param.ty = ty;
            Ok(())
        }
        VarKind::Return => {
            function.ret = Some(ty);
            Ok(())
        }
        VarKind::Local(path) => {
            let (block, idx) = path.resolve_block_mut(&mut function.body)?;
            match block.get_mut(idx) {
                Some(Stmt::Decl { ty: t, .. }) => {
                    *t = ty;
                    Ok(())
                }
                _ => Err(IrError::BadPath(format!("no declaration at {path}"))),
            }
        }
        VarKind::Array(path) => {
            let (block, idx) = path.resolve_block_mut(&mut function.body)?;
            match block.get_mut(idx) {
                Some(Stmt::ArrayDecl { ty: t, .. }) => {
                    *t = ty;
                    Ok(())
                }
                _ => Err(IrError::BadPath(format!("no array declaration at {path}"))),
            }
        }
    }
}

/// Maps a mantissa width back to a source type (52 → `double`,
/// 23 → `float`, otherwise a custom width).
pub fn type_for_bits(bits: u8) -> Type {
    match bits {
        52 => Type::F64,
        23 => Type::F32,
        other => Type::float_custom(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_ir::parse_program;

    const SRC: &str = "double kernel(double a[], double scale, int n) {
        double acc = 0.0;
        double tmp[4];
        for (int i = 0; i < n; i++) { acc += a[i] * scale; }
        return acc;
    }";

    #[test]
    fn inventory_finds_all_float_decls() {
        let program = parse_program(SRC).unwrap();
        let vars = float_vars(program.function("kernel").unwrap());
        let names: Vec<&str> = vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["a", "scale", "acc", "tmp", "<return>"]);
        assert!(matches!(vars[0].kind, VarKind::Param(0)));
        assert!(matches!(vars[4].kind, VarKind::Return));
    }

    #[test]
    fn int_only_function_has_no_float_vars() {
        let program = parse_program("int f(int x) { return x; }").unwrap();
        assert!(float_vars(program.function("f").unwrap()).is_empty());
    }

    #[test]
    fn set_precision_rewrites_each_site() {
        let mut program = parse_program(SRC).unwrap();
        let vars = float_vars(program.function("kernel").unwrap());
        for var in &vars {
            set_precision(&mut program, "kernel", var, 10).unwrap();
        }
        let f = program.function("kernel").unwrap();
        assert_eq!(f.params[0].ty, Type::FCustom(10));
        assert_eq!(f.params[1].ty, Type::FCustom(10));
        assert_eq!(f.ret, Some(Type::FCustom(10)));
        let text = antarex_ir::printer::print_function(f);
        assert!(text.contains("float10 acc"));
        assert!(text.contains("float10 tmp[4];"));
    }

    #[test]
    fn bits_round_trip_to_named_types() {
        assert_eq!(type_for_bits(52), Type::F64);
        assert_eq!(type_for_bits(23), Type::F32);
        assert_eq!(type_for_bits(10), Type::FCustom(10));
    }

    #[test]
    fn lowered_precision_changes_result_and_energy() {
        use antarex_ir::interp::{ExecEnv, Interp};
        use antarex_ir::value::Value;
        let program = parse_program(SRC).unwrap();
        let mut lowered = program.clone();
        let vars = float_vars(program.function("kernel").unwrap());
        for var in &vars {
            set_precision(&mut lowered, "kernel", var, 6).unwrap();
        }
        let args = [
            Value::from(vec![0.123456789, 0.987654321, 0.5, 0.25]),
            Value::Float(1.11),
            Value::Int(4),
        ];
        let mut env_full = ExecEnv::new();
        let full = Interp::new(program)
            .call("kernel", &args, &mut env_full)
            .unwrap();
        let mut env_low = ExecEnv::new();
        let low = Interp::new(lowered)
            .call("kernel", &args, &mut env_low)
            .unwrap();
        assert_ne!(full, low, "6 mantissa bits must perturb the result");
        assert!(
            env_low.stats.flop_energy < env_full.stats.flop_energy,
            "lowered precision must cost less energy"
        );
        // but the result is still in the right ballpark
        let (Value::Float(a), Value::Float(b)) = (full, low) else {
            panic!()
        };
        assert!((a - b).abs() / a.abs() < 0.2);
    }
}
