//! Crash-recoverable sessions: write-ahead journal, snapshots, replay.
//!
//! The serving tier's state — per-tenant managers with their learned
//! knowledge, the design-point cache, the circuit breakers — lives in
//! memory. A service crash would lose every tenant's online learning.
//! This module models the persistent side of the story:
//!
//! * every state mutation the service performs is first appended to a
//!   **write-ahead [`Journal`]** as a [`JournalEntry`] delta, sharded
//!   by tenant (cache deltas by key) with a global sequence number so
//!   replay has a total order;
//! * on a Daly-informed cadence (from
//!   [`antarex_rtrm::checkpoint::daly_interval_s`]) the service takes a
//!   [`Snapshot`] — full clones of sessions, cache entries, breaker
//!   states — and compacts the journal up to it;
//! * after a crash, [`replay`] applies the journal suffix on top of
//!   the last snapshot. Because every mutating call
//!   (`select`/`observe`/`adapt`, breaker transitions, cache fills) is
//!   deterministic and the journal preserves program order, the
//!   recovered state is **bit-identical** to the pre-crash state — the
//!   property the `r2` chaos experiment checks end to end.
//!
//! The journal lives in memory here (the simulator has no disk), but
//! the contract is exactly a WAL's: entries are durable the moment
//! they are appended, snapshots are atomic, and recovery = snapshot +
//! ordered suffix.

use crate::admission::{AdmissionController, TenantAdmission};
use crate::autoscale::{Autoscaler, AutoscalerState};
use crate::breaker::{BreakerBank, CircuitBreaker};
use crate::cache::{DesignKey, DesignPointCache, Metrics};
use crate::store::{mix64, Session, SessionStore, TenantClass, TenantId};
use antarex_tuner::manager::AppManager;
use antarex_tuner::Configuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One durable state delta of the serving tier.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// A tenant registered with its workload features. The manager is
    /// not journaled: registration-time managers are reproducible from
    /// the tenant id (the `make_manager` factory handed to [`replay`]).
    Register {
        /// The new tenant.
        tenant: TenantId,
        /// Its workload features.
        features: Vec<f64>,
        /// Its workload class (scheduler policy + metric bucket).
        class: TenantClass,
    },
    /// The tenant's manager ran one `select()` during request
    /// admission (deploys/updates its current configuration).
    Select {
        /// The selecting tenant.
        tenant: TenantId,
    },
    /// The tenant's breaker admitted a request at the time (replayed so
    /// open → half-open transitions happen at identical instants).
    BreakerAllow {
        /// The admitted tenant.
        tenant: TenantId,
        /// Virtual admission time, seconds.
        time_s: f64,
    },
    /// A request was answered: session bookkeeping plus one
    /// `observe()` per metric, and breaker success feedback.
    Learn {
        /// The answered tenant.
        tenant: TenantId,
        /// Virtual arrival time of the request, seconds.
        time_s: f64,
        /// The configuration that answered it.
        config: Configuration,
        /// The measured (or cached) metrics fed to the monitors.
        metrics: Metrics,
    },
    /// A request failed for a known tenant: rejection bookkeeping, and
    /// breaker failure feedback when the error was a worker fault.
    Reject {
        /// The rejected tenant.
        tenant: TenantId,
        /// Virtual arrival time of the request, seconds.
        time_s: f64,
        /// Whether the failure counts against the tenant's breaker
        /// (worker crash / deadline — not shed, not contract errors).
        breaker_feedback: bool,
    },
    /// The tenant ran one adaptation round at the batch end.
    Adapt {
        /// The adapting tenant.
        tenant: TenantId,
        /// Virtual adaptation time, seconds.
        now_s: f64,
    },
    /// A verified design point landed in the cache.
    CacheInsert {
        /// The design point.
        key: DesignKey,
        /// Its metrics.
        metrics: Metrics,
    },
    /// A design point was quarantined (failed or corrupted evaluation).
    Quarantine {
        /// The evicted design point.
        key: DesignKey,
    },
    /// One admission-controller feedback window for a tenant: the
    /// batch's SLO check/violation tally at the batch end time. Replay
    /// calls the exact `update` the live path called, so EWMA burns
    /// and tier transitions recover bit-identically.
    AdmissionUpdate {
        /// The tenant whose burn was updated.
        tenant: TenantId,
        /// Virtual batch end time of the window, seconds.
        time_s: f64,
        /// SLO checks the window produced for this tenant.
        checked: u64,
        /// How many of them violated (or were degraded probe demand).
        violations: u64,
    },
    /// The autoscaler resized the pool's virtual capacity.
    Scale {
        /// Virtual decision time, seconds.
        time_s: f64,
        /// The new virtual worker capacity.
        workers: usize,
    },
}

impl JournalEntry {
    /// The 64-bit routing hash that picks this entry's journal shard.
    fn route(&self) -> u64 {
        match self {
            JournalEntry::Register { tenant, .. }
            | JournalEntry::Select { tenant }
            | JournalEntry::BreakerAllow { tenant, .. }
            | JournalEntry::Learn { tenant, .. }
            | JournalEntry::Reject { tenant, .. }
            | JournalEntry::Adapt { tenant, .. }
            | JournalEntry::AdmissionUpdate { tenant, .. } => mix64(*tenant),
            JournalEntry::CacheInsert { key, .. } | JournalEntry::Quarantine { key } => key.seed(),
            // capacity is global state: all scale decisions share one
            // shard (ordering still comes from the global sequence)
            JournalEntry::Scale { .. } => mix64(u64::MAX),
        }
    }
}

/// The sharded write-ahead journal. Entries append to the shard of
/// their tenant (or cache key) under that shard's lock; a global atomic
/// sequence number gives replay a total order across shards.
#[derive(Debug)]
pub struct Journal {
    shards: Vec<Mutex<Vec<(u64, JournalEntry)>>>,
    seq: AtomicU64,
}

impl Journal {
    /// An empty journal with the given shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "journal needs at least one shard");
        Journal {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
        }
    }

    fn lock(&self, index: usize) -> std::sync::MutexGuard<'_, Vec<(u64, JournalEntry)>> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends one delta; returns its sequence number.
    pub fn append(&self, entry: JournalEntry) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = (entry.route() % self.shards.len() as u64) as usize;
        self.lock(shard).push((seq, entry));
        seq
    }

    /// The sequence number the *next* append will get — the compaction
    /// watermark a snapshot records.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Entries currently held (post-compaction).
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Returns `true` when no entry is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pending entries merged back into append order.
    pub fn entries_in_order(&self) -> Vec<JournalEntry> {
        let mut all: Vec<(u64, JournalEntry)> = Vec::new();
        for i in 0..self.shards.len() {
            all.extend(self.lock(i).iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, entry)| entry).collect()
    }

    /// Drops every entry with a sequence number below `through_seq` —
    /// they are covered by a snapshot now.
    pub fn compact(&self, through_seq: u64) {
        for i in 0..self.shards.len() {
            self.lock(i).retain(|(seq, _)| *seq >= through_seq);
        }
    }
}

/// One atomic checkpoint of the full serving state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Virtual time the snapshot was taken, seconds.
    pub at_s: f64,
    /// Journal watermark: entries with `seq < through_seq` are covered.
    pub through_seq: u64,
    /// Every tenant session, sorted by tenant id.
    pub sessions: Vec<(TenantId, Session)>,
    /// Every cached design point, sorted by key.
    pub cache: Vec<(DesignKey, Metrics)>,
    /// Every tenant's circuit breaker, sorted by tenant id.
    pub breakers: Vec<(TenantId, CircuitBreaker)>,
    /// Every tenant's admission state, sorted by tenant id (empty
    /// when the service runs without a front door).
    pub admission: Vec<(TenantId, TenantAdmission)>,
    /// The autoscaler's state (`None` without a front door).
    pub autoscaler: Option<AutoscalerState>,
}

/// Captures a snapshot of the serving state at virtual time `at_s`.
/// `front_door` carries the admission controller and autoscaler when
/// the service runs one.
pub fn take_snapshot(
    at_s: f64,
    journal: &Journal,
    store: &SessionStore,
    cache: &DesignPointCache,
    breakers: &BreakerBank,
    front_door: Option<(&AdmissionController, &Autoscaler)>,
) -> Snapshot {
    Snapshot {
        at_s,
        through_seq: journal.next_seq(),
        sessions: store.dump(),
        cache: cache.entries(),
        breakers: breakers.snapshot(),
        admission: front_door
            .map(|(admission, _)| admission.snapshot())
            .unwrap_or_default(),
        autoscaler: front_door.map(|(_, autoscaler)| autoscaler.snapshot()),
    }
}

/// Replays a journal suffix onto (already snapshot-restored) state.
///
/// Entries must be in append order. `make_manager` rebuilds the
/// registration-time manager of tenants whose `Register` landed after
/// the snapshot — it must be the same deterministic factory the
/// original registration used. `front_door` receives admission and
/// scaling entries; a service without one ignores them.
///
/// Every application step is the exact call the service performed, so
/// replay is bit-identical to the original execution.
pub fn replay<F>(
    entries: &[JournalEntry],
    store: &SessionStore,
    cache: &DesignPointCache,
    breakers: &BreakerBank,
    front_door: Option<(&AdmissionController, &Autoscaler)>,
    make_manager: &F,
) where
    F: Fn(TenantId) -> AppManager,
{
    // the live path feeds breakers only when they are enabled; replay
    // must mirror that or it would materialize breakers the original
    // execution never touched
    let breaker_on = breakers.config().failure_threshold > 0;
    for entry in entries {
        match entry {
            JournalEntry::Register {
                tenant,
                features,
                class,
            } => {
                let _ = store.insert(
                    *tenant,
                    Session::classed(make_manager(*tenant), features.clone(), *class),
                );
            }
            JournalEntry::Select { tenant } => {
                let _ = store.with(*tenant, |session| {
                    let _ = session.manager.select();
                });
            }
            JournalEntry::BreakerAllow { tenant, time_s } => {
                breakers.with(*tenant, |b| {
                    let _ = b.allow(*time_s);
                });
            }
            JournalEntry::Learn {
                tenant,
                time_s,
                config,
                metrics,
            } => {
                let _ = store.with(*tenant, |session| {
                    session.requests += 1;
                    session.last_config = Some(config.clone());
                    session.power_demand_w = metrics.get("power").copied().unwrap_or(0.0);
                    for (metric, value) in metrics {
                        session.manager.observe(*time_s, metric, *value);
                    }
                });
                if breaker_on {
                    breakers.with(*tenant, |b| b.on_success(*time_s));
                }
            }
            JournalEntry::Reject {
                tenant,
                time_s,
                breaker_feedback,
            } => {
                if *breaker_feedback {
                    breakers.with(*tenant, |b| b.on_failure(*time_s));
                }
                let _ = store.with(*tenant, |session| {
                    session.rejected += 1;
                });
            }
            JournalEntry::Adapt { tenant, now_s } => {
                let _ = store.with(*tenant, |session| {
                    session.manager.adapt(*now_s);
                });
            }
            JournalEntry::CacheInsert { key, metrics } => {
                cache.insert(key.clone(), metrics.clone());
            }
            JournalEntry::Quarantine { key } => {
                cache.quarantine(key);
            }
            JournalEntry::AdmissionUpdate {
                tenant,
                time_s,
                checked,
                violations,
            } => {
                if let Some((admission, _)) = front_door {
                    let _ = admission.update(*tenant, *time_s, *checked, *violations);
                }
            }
            JournalEntry::Scale { time_s, workers } => {
                if let Some((_, autoscaler)) = front_door {
                    autoscaler.force(*time_s, *workers);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use antarex_tuner::goal::{Constraint, Objective};
    use antarex_tuner::{KnobValue, KnowledgeBase, OperatingPoint};

    fn kb() -> KnowledgeBase {
        (1..=3)
            .map(|l| {
                let mut c = Configuration::new();
                c.set("level", KnobValue::Int(l));
                OperatingPoint::new(
                    c,
                    [
                        ("latency".to_string(), 0.1 * l as f64),
                        ("power".to_string(), 10.0 * l as f64),
                    ],
                )
            })
            .collect()
    }

    fn make_manager(_tenant: TenantId) -> AppManager {
        let mut m = AppManager::new(kb(), Objective::minimize("latency"));
        m.add_constraint(Constraint::at_most("latency", 0.5));
        m
    }

    fn level(l: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(l));
        c
    }

    fn metrics(latency: f64) -> Metrics {
        [
            ("latency".to_string(), latency),
            ("power".to_string(), 11.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn entries_merge_back_in_append_order() {
        let journal = Journal::new(4);
        let script = vec![
            JournalEntry::Register {
                tenant: 3,
                features: vec![1.0],
                class: TenantClass::Generic,
            },
            JournalEntry::Select { tenant: 3 },
            JournalEntry::CacheInsert {
                key: DesignKey::new(&level(1), &[1.0]),
                metrics: metrics(0.1),
            },
            JournalEntry::Learn {
                tenant: 3,
                time_s: 2.0,
                config: level(1),
                metrics: metrics(0.1),
            },
            JournalEntry::Adapt {
                tenant: 3,
                now_s: 2.0,
            },
        ];
        for entry in &script {
            journal.append(entry.clone());
        }
        assert_eq!(journal.entries_in_order(), script);
        assert_eq!(journal.len(), script.len());
    }

    #[test]
    fn compaction_drops_only_covered_entries() {
        let journal = Journal::new(2);
        journal.append(JournalEntry::Select { tenant: 1 });
        journal.append(JournalEntry::Select { tenant: 2 });
        let watermark = journal.next_seq();
        journal.append(JournalEntry::Select { tenant: 3 });
        journal.compact(watermark);
        assert_eq!(
            journal.entries_in_order(),
            vec![JournalEntry::Select { tenant: 3 }]
        );
    }

    #[test]
    fn replay_reproduces_direct_execution() {
        // execute a small script directly...
        let direct_store = SessionStore::new(4);
        let direct_cache = DesignPointCache::new(4);
        let direct_breakers = BreakerBank::new(BreakerConfig::hardened());
        let journal = Journal::new(4);

        let run = |entry: JournalEntry| {
            journal.append(entry.clone());
            replay(
                &[entry],
                &direct_store,
                &direct_cache,
                &direct_breakers,
                None,
                &make_manager,
            );
        };
        run(JournalEntry::Register {
            tenant: 7,
            features: vec![2.0],
            class: TenantClass::Docking,
        });
        run(JournalEntry::Select { tenant: 7 });
        run(JournalEntry::Learn {
            tenant: 7,
            time_s: 1.5,
            config: level(1),
            metrics: metrics(0.12),
        });
        run(JournalEntry::Reject {
            tenant: 7,
            time_s: 2.0,
            breaker_feedback: true,
        });
        run(JournalEntry::Adapt {
            tenant: 7,
            now_s: 2.5,
        });

        // ...then recover from the journal alone
        let recovered_store = SessionStore::new(4);
        let recovered_cache = DesignPointCache::new(4);
        let recovered_breakers = BreakerBank::new(BreakerConfig::hardened());
        replay(
            &journal.entries_in_order(),
            &recovered_store,
            &recovered_cache,
            &recovered_breakers,
            None,
            &make_manager,
        );

        let fingerprint = |store: &SessionStore, breakers: &BreakerBank| {
            let sessions = store.fold(String::new(), |mut acc, t, s| {
                acc.push_str(&format!(
                    "{t}:{}:{}:{:.6}:{:?};",
                    s.requests, s.rejected, s.power_demand_w, s.manager
                ));
                acc
            });
            let banks: Vec<String> = breakers
                .snapshot()
                .iter()
                .map(|(t, b)| format!("{t}:{}", b.state_label()))
                .collect();
            format!("{sessions}|{}", banks.join(","))
        };
        assert_eq!(
            fingerprint(&direct_store, &direct_breakers),
            fingerprint(&recovered_store, &recovered_breakers),
            "replayed state must be bit-identical"
        );
    }

    #[test]
    fn snapshot_plus_suffix_recovers_cache_and_breakers() {
        let store = SessionStore::new(2);
        let cache = DesignPointCache::new(2);
        let breakers = BreakerBank::new(BreakerConfig::hardened());
        let journal = Journal::new(2);

        let early = JournalEntry::CacheInsert {
            key: DesignKey::new(&level(1), &[1.0]),
            metrics: metrics(0.1),
        };
        journal.append(early.clone());
        replay(&[early], &store, &cache, &breakers, None, &make_manager);

        let snapshot = take_snapshot(10.0, &journal, &store, &cache, &breakers, None);
        journal.compact(snapshot.through_seq);
        assert!(journal.is_empty());

        let late = JournalEntry::CacheInsert {
            key: DesignKey::new(&level(2), &[1.0]),
            metrics: metrics(0.2),
        };
        journal.append(late.clone());
        replay(&[late], &store, &cache, &breakers, None, &make_manager);

        // recover: snapshot first, then the suffix
        let r_store = SessionStore::new(2);
        let r_cache = DesignPointCache::new(2);
        let r_breakers = BreakerBank::new(BreakerConfig::hardened());
        for (key, m) in &snapshot.cache {
            r_cache.insert(key.clone(), m.clone());
        }
        r_breakers.restore(&snapshot.breakers);
        replay(
            &journal.entries_in_order(),
            &r_store,
            &r_cache,
            &r_breakers,
            None,
            &make_manager,
        );
        assert_eq!(r_cache.entries(), cache.entries());
    }

    #[test]
    fn quarantine_replays_as_eviction() {
        let store = SessionStore::new(1);
        let cache = DesignPointCache::new(1);
        let breakers = BreakerBank::new(BreakerConfig::disabled());
        let key = DesignKey::new(&level(1), &[3.0]);
        replay(
            &[
                JournalEntry::CacheInsert {
                    key: key.clone(),
                    metrics: metrics(0.3),
                },
                JournalEntry::Quarantine { key: key.clone() },
            ],
            &store,
            &cache,
            &breakers,
            None,
            &make_manager,
        );
        assert!(cache.is_empty());
        assert_eq!(cache.quarantined(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Journal::new(0);
    }
}
