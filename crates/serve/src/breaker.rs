//! Per-tenant circuit breakers for the serving tier.
//!
//! A tenant whose probes keep dying — a poisoned evaluator, a design
//! space that lands on a corrupted worker class, a deadline budget far
//! below its probe cost — would otherwise consume pool capacity on
//! every batch, retrying and hedging work that is doomed. The breaker
//! contains the blast radius: after
//! [`BreakerConfig::failure_threshold`] *consecutive* transient
//! failures the tenant's circuit opens and its requests fail fast with
//! [`ServeError::CircuitOpen`](crate::ServeError::CircuitOpen) —
//! costing a cache-lookup, not a probe. After
//! [`BreakerConfig::cooldown_s`] of virtual time the circuit goes
//! half-open: one trial request is admitted; its success (repeated
//! [`BreakerConfig::half_open_successes`] times) closes the circuit,
//! its failure re-opens it for another cooldown.
//!
//! The state machine is driven entirely by virtual timestamps, so
//! breaker trips are as reproducible as everything else in the stack.

use crate::store::TenantId;
use antarex_obs::Counter;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Tuning of one circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that open the circuit; 0 disables
    /// the breaker entirely (requests always admitted).
    pub failure_threshold: u32,
    /// Virtual seconds an open circuit waits before going half-open.
    pub cooldown_s: f64,
    /// Successful trials required to close a half-open circuit.
    pub half_open_successes: u32,
}

impl BreakerConfig {
    /// The hardened default: open after 3 consecutive failures, retry
    /// one trial after 5 virtual seconds, close after 2 clean trials.
    pub fn hardened() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_s: 5.0,
            half_open_successes: 2,
        }
    }

    /// Breaker disabled: every request admitted, failures ignored.
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            cooldown_s: 0.0,
            half_open_successes: 1,
        }
    }
}

/// Breaker state; the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Requests flow; counting consecutive failures.
    Closed {
        /// Transient failures since the last success.
        consecutive_failures: u32,
    },
    /// Requests fail fast until the cooldown elapses.
    Open {
        /// Virtual time the circuit opened.
        since_s: f64,
    },
    /// Trial requests admitted; counting successes toward closing.
    HalfOpen {
        /// Clean trials so far.
        successes: u32,
    },
}

/// One tenant's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Total number of times the circuit opened (for reporting).
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the circuit has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// May a request for this tenant proceed at virtual time `now_s`?
    /// Transitions open → half-open when the cooldown has elapsed.
    pub fn allow(&mut self, now_s: f64) -> bool {
        if self.config.failure_threshold == 0 {
            return true;
        }
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen { .. } => true,
            BreakerState::Open { since_s } => {
                if now_s - since_s >= self.config.cooldown_s {
                    self.state = BreakerState::HalfOpen { successes: 0 };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successfully served request.
    pub fn on_success(&mut self, _now_s: f64) {
        if self.config.failure_threshold == 0 {
            return;
        }
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
            }
            BreakerState::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    self.state = BreakerState::HalfOpen { successes };
                }
            }
            BreakerState::Open { .. } => {} // stale feedback, ignore
        }
    }

    /// Records a transient (retryable) failure of a served request at
    /// virtual time `now_s`. Contract errors (unknown tenant,
    /// infeasible SLA) must not be fed here — they say nothing about
    /// the health of the evaluation path.
    pub fn on_failure(&mut self, now_s: f64) {
        if self.config.failure_threshold == 0 {
            return;
        }
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let consecutive_failures = consecutive_failures + 1;
                if consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open { since_s: now_s };
                    self.trips += 1;
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures,
                    };
                }
            }
            BreakerState::HalfOpen { .. } => {
                // the trial failed: straight back to open
                self.state = BreakerState::Open { since_s: now_s };
                self.trips += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Compact deterministic state label for reports: `closed(n)`,
    /// `open(t)`, or `half-open(n)`.
    pub fn state_label(&self) -> String {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => format!("closed({consecutive_failures})"),
            BreakerState::Open { since_s } => format!("open({since_s:.3})"),
            BreakerState::HalfOpen { successes } => format!("half-open({successes})"),
        }
    }
}

/// The service's breaker bank: one breaker per tenant, created lazily,
/// behind a single mutex (breaker updates are tiny compared to probes).
///
/// The bank keeps the total trip count in a shareable [`Counter`]: per-
/// tenant trips live on each [`CircuitBreaker`] (they are part of the
/// crash-recovery snapshot), and every trip observed inside
/// [`with`](BreakerBank::with) is mirrored onto the counter, so the
/// metric registry and [`total_trips`](BreakerBank::total_trips) read
/// the same cell instead of re-summing the map.
#[derive(Debug)]
pub struct BreakerBank {
    config: BreakerConfig,
    breakers: Mutex<BTreeMap<TenantId, CircuitBreaker>>,
    trips: Counter,
}

impl BreakerBank {
    /// An empty bank; breakers materialize on first touch. The trip
    /// counter is standalone (not yet visible on any registry).
    pub fn new(config: BreakerConfig) -> Self {
        Self::with_trip_counter(config, Counter::new())
    }

    /// An empty bank whose aggregate trip count lands in the given
    /// counter handle — typically one registered on a metric registry.
    pub fn with_trip_counter(config: BreakerConfig, trips: Counter) -> Self {
        BreakerBank {
            config,
            breakers: Mutex::new(BTreeMap::new()),
            trips,
        }
    }

    /// The bank's tuning.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Runs `f` on the tenant's breaker (creating it closed if absent).
    /// Trips that happen inside `f` are mirrored onto the bank's trip
    /// counter.
    pub fn with<R>(&self, tenant: TenantId, f: impl FnOnce(&mut CircuitBreaker) -> R) -> R {
        let mut breakers = self.breakers.lock().expect("breaker bank poisoned");
        let breaker = breakers
            .entry(tenant)
            .or_insert_with(|| CircuitBreaker::new(self.config));
        let trips_before = breaker.trips();
        let result = f(breaker);
        let tripped = breaker.trips() - trips_before;
        if tripped > 0 {
            self.trips.add(tripped);
        }
        result
    }

    /// Snapshot of every tenant's breaker, sorted by tenant id.
    pub fn snapshot(&self) -> Vec<(TenantId, CircuitBreaker)> {
        let breakers = self.breakers.lock().expect("breaker bank poisoned");
        breakers.iter().map(|(&t, &b)| (t, b)).collect()
    }

    /// Restores the bank to an exact prior state (crash recovery),
    /// syncing the trip counter to the restored per-breaker totals.
    pub fn restore(&self, states: &[(TenantId, CircuitBreaker)]) {
        let mut breakers = self.breakers.lock().expect("breaker bank poisoned");
        breakers.clear();
        for &(tenant, breaker) in states {
            breakers.insert(tenant, breaker);
        }
        self.trips.store(breakers.values().map(|b| b.trips()).sum());
    }

    /// Total circuit trips across all tenants — a read of the shared
    /// trip counter, which [`with`](BreakerBank::with) and
    /// [`restore`](BreakerBank::restore) keep equal to the sum of
    /// per-breaker trips.
    pub fn total_trips(&self) -> u64 {
        self.trips.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig::hardened());
        assert!(b.allow(0.0));
        b.on_failure(0.1);
        b.on_failure(0.2);
        assert!(b.allow(0.3), "below threshold stays closed");
        b.on_failure(0.3);
        assert_eq!(b.state(), BreakerState::Open { since_s: 0.3 });
        assert!(!b.allow(0.4), "open fails fast");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig::hardened());
        b.on_failure(0.1);
        b.on_failure(0.2);
        b.on_success(0.3); // streak broken
        b.on_failure(0.4);
        b.on_failure(0.5);
        assert!(b.allow(0.6), "non-consecutive failures never open");
    }

    #[test]
    fn open_goes_half_open_after_cooldown_then_closes_on_trials() {
        let config = BreakerConfig {
            failure_threshold: 1,
            cooldown_s: 5.0,
            half_open_successes: 2,
        };
        let mut b = CircuitBreaker::new(config);
        b.on_failure(1.0);
        assert!(!b.allow(3.0), "cooldown not elapsed");
        assert!(b.allow(6.0), "half-open admits a trial");
        assert_eq!(b.state(), BreakerState::HalfOpen { successes: 0 });
        b.on_success(6.1);
        assert_eq!(b.state(), BreakerState::HalfOpen { successes: 1 });
        b.on_success(6.2);
        assert_eq!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
    }

    #[test]
    fn failed_trial_reopens_the_circuit() {
        let config = BreakerConfig {
            failure_threshold: 1,
            cooldown_s: 5.0,
            half_open_successes: 1,
        };
        let mut b = CircuitBreaker::new(config);
        b.on_failure(0.0);
        assert!(b.allow(5.0), "half-open at exactly the cooldown");
        b.on_failure(5.5);
        assert_eq!(b.state(), BreakerState::Open { since_s: 5.5 });
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(6.0));
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for i in 0..100 {
            b.on_failure(i as f64);
        }
        assert!(b.allow(100.0));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn bank_isolates_tenants_and_round_trips_snapshots() {
        let bank = BreakerBank::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_s: 10.0,
            half_open_successes: 1,
        });
        bank.with(7, |b| b.on_failure(1.0));
        assert!(!bank.with(7, |b| b.allow(2.0)), "tenant 7 tripped");
        assert!(bank.with(8, |b| b.allow(2.0)), "tenant 8 untouched");
        assert_eq!(bank.total_trips(), 1);

        let snapshot = bank.snapshot();
        let restored = BreakerBank::new(bank.config());
        restored.restore(&snapshot);
        assert!(!restored.with(7, |b| b.allow(2.0)));
        assert!(restored.with(8, |b| b.allow(2.0)));
        assert_eq!(restored.snapshot(), snapshot);
    }

    #[test]
    fn bank_trip_counter_mirrors_per_breaker_trips() {
        let config = BreakerConfig {
            failure_threshold: 1,
            cooldown_s: 10.0,
            half_open_successes: 1,
        };
        let registry = antarex_obs::MetricsRegistry::new();
        let counter = registry.counter("breaker-test_trips_total", antarex_obs::Scope::Invariant);
        let bank = BreakerBank::with_trip_counter(config, counter.clone());
        bank.with(1, |b| b.on_failure(0.0));
        bank.with(2, |b| b.on_failure(0.0));
        assert_eq!(counter.get(), 2, "registry sees every trip");
        assert_eq!(bank.total_trips(), 2);

        // restore syncs the counter to the snapshot's totals
        let snapshot = bank.snapshot();
        let other = BreakerBank::with_trip_counter(
            config,
            registry.counter(
                "breaker-test_trips_restored_total",
                antarex_obs::Scope::Invariant,
            ),
        );
        other.restore(&snapshot);
        assert_eq!(other.total_trips(), 2);
    }

    #[test]
    fn state_labels_are_deterministic() {
        let mut b = CircuitBreaker::new(BreakerConfig::hardened());
        assert_eq!(b.state_label(), "closed(0)");
        b.on_failure(0.25);
        assert_eq!(b.state_label(), "closed(1)");
        b.on_failure(0.5);
        b.on_failure(0.75);
        assert_eq!(b.state_label(), "open(0.750)");
        assert!(b.allow(10.0));
        assert_eq!(b.state_label(), "half-open(0)");
    }
}
