//! Drug-discovery docking as a serving-tier tenant class.
//!
//! Wires the §VII-a use case through the service: a probe for a
//! (`poses` knob, workload features) pair docks a real synthetic ligand
//! against the evaluator's binding pocket and reports latency, binding
//! affinity, and a power proxy. The per-probe cost follows the real
//! `atoms × pocket_spheres × poses` work law of
//! [`antarex_apps::docking::scoring::dock_ligand`] — the heavy-tailed,
//! "unpredictable imbalance" workload the deterministic work-stealing
//! scheduler exists for. Like [`NavEvaluator`](crate::nav::NavEvaluator)
//! the probe derives its ligand geometry from [`probe_seed`], making
//! every evaluation a pure function of (configuration, features).
//!
//! [`TenantMux`] lets navigation and docking tenants coexist in one
//! campaign behind a single service: probes dispatch on the knob the
//! configuration carries (`poses` → docking, everything else → nav).

use crate::cache::probe_seed;
use crate::pool::Evaluation;
use crate::service::Evaluator;
use crate::store::{mix64, TenantClass, TenantId};
use crate::TuningService;
use antarex_apps::docking::molecule::{generate_ligand, generate_pocket, Pocket};
use antarex_apps::docking::scoring::dock_ligand;
use antarex_sim::workload::lognormal;
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::manager::AppManager;
use antarex_tuner::{Configuration, KnobValue, KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Calibrated platform flops per scored atom–sphere interaction, the
/// same constant as [`antarex_apps::docking::scoring::estimated_flops`].
const FLOPS_PER_INTERACTION: f64 = 2000.0;

/// Median heavy-atom count of a screening library
/// ([`generate_library`](antarex_apps::docking::molecule::generate_library)'s
/// realistic default).
const MEDIAN_ATOMS: f64 = 24.0;

/// Evaluates docking design points against a fixed binding pocket.
///
/// Knob: `poses` (int, 1..=64) — rigid orientations sampled per probe,
/// the use case's autotuning knob. Workload features: `[atoms]` — the
/// tenant's ligand size (heavy atoms, defaults to the library median of
/// 24), which is what makes per-tenant probe costs heavy-tailed.
#[derive(Debug, Clone)]
pub struct DockingEvaluator {
    pocket: Pocket,
    /// Docking kernel throughput, flops per virtual second per core
    /// (a 2015 Xeon core).
    pub flops_per_s: f64,
    /// Power proxy: baseline watts plus per-pose intensity.
    pub watts_base: f64,
    /// Additional watts per sampled pose (deeper vectorized loops).
    pub watts_per_pose: f64,
}

impl DockingEvaluator {
    /// Creates an evaluator over an explicit pocket.
    pub fn new(pocket: Pocket) -> Self {
        DockingEvaluator {
            pocket,
            flops_per_s: 4.0e9,
            watts_base: 15.0,
            watts_per_pose: 0.15,
        }
    }

    /// A standard 30-sphere screening pocket, seeded.
    pub fn screening(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DockingEvaluator::new(generate_pocket(30, &mut rng))
    }

    /// The binding pocket probed.
    pub fn pocket(&self) -> &Pocket {
        &self.pocket
    }
}

impl Evaluator for DockingEvaluator {
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        let poses = config.get_int("poses").unwrap_or(8).clamp(1, 64) as usize;
        let atoms = features
            .first()
            .copied()
            .unwrap_or(MEDIAN_ATOMS)
            .clamp(4.0, 250.0) as usize;
        // ligand geometry derives from the design key: identical
        // (config, features) pairs dock identical molecules forever
        let mut rng = StdRng::seed_from_u64(probe_seed(config, features));
        let ligand = generate_ligand(0, atoms, &mut rng);
        let score = dock_ligand(&ligand, &self.pocket, poses, &mut rng);
        // cost follows the real work law exactly: interactions is
        // atoms × pocket_spheres × poses by construction
        let latency_s = score.interactions as f64 * FLOPS_PER_INTERACTION / self.flops_per_s;
        let affinity = -score.best_score;
        let power_w = self.watts_base + self.watts_per_pose * poses as f64;
        Evaluation {
            metrics: [
                ("latency".to_string(), latency_s),
                ("affinity".to_string(), affinity),
                ("power".to_string(), power_w),
            ]
            .into_iter()
            .collect(),
            cost_s: latency_s,
            energy_j: power_w * latency_s,
        }
    }
}

/// The `poses` knob's design-time knowledge base: optimistic estimates
/// (median-ligand latency, log-growing affinity) the service corrects
/// through online learning.
pub fn docking_knowledge() -> KnowledgeBase {
    [2i64, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|poses| {
            let mut config = Configuration::new();
            config.set("poses", KnobValue::Int(poses));
            let median_flops = FLOPS_PER_INTERACTION * MEDIAN_ATOMS * 30.0 * poses as f64;
            OperatingPoint::new(
                config,
                [
                    ("latency".to_string(), median_flops / 4.0e9),
                    ("affinity".to_string(), 1.0 + (poses as f64).ln()),
                    ("power".to_string(), 15.0 + 0.15 * poses as f64),
                ],
            )
        })
        .collect()
}

/// A per-tenant runtime manager over [`docking_knowledge`] with the
/// screening SLA: maximize binding affinity while probe latency stays
/// within `sla_s`.
pub fn docking_manager(sla_s: f64) -> AppManager {
    let mut manager = AppManager::new(docking_knowledge(), Objective::maximize("affinity"));
    manager.add_constraint(Constraint::at_most("latency", sla_s));
    manager
}

/// Workload features of docking tenant `index`: a ligand size drawn
/// from the screening library's lognormal distribution (median 24,
/// log-σ 0.5) — per-tenant heavy tails, deterministic in `seed`.
pub fn docking_features(index: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(mix64(
        seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    ));
    let atoms = (MEDIAN_ATOMS * lognormal(&mut rng, 0.0, 0.5))
        .round()
        .clamp(4.0, 250.0);
    vec![atoms]
}

/// Registers `count` docking tenants with ids starting at `first`, each
/// classed [`TenantClass::Docking`] with lognormal ligand-size features.
pub fn register_docking_tenants<E: Evaluator>(
    service: &TuningService<E>,
    first: TenantId,
    count: usize,
    seed: u64,
    sla_s: f64,
) {
    for index in 0..count {
        let tenant = first + index as TenantId;
        let _ = service.register_tenant_classed(
            tenant,
            TenantClass::Docking,
            docking_manager(sla_s),
            docking_features(index, seed),
        );
    }
}

/// Dispatches probes of a mixed nav + docking campaign to the evaluator
/// the configuration belongs to: a `poses` knob marks a docking design
/// point, everything else is navigation.
#[derive(Debug, Clone)]
pub struct TenantMux {
    /// The navigation evaluator (use case b).
    pub nav: crate::nav::NavEvaluator,
    /// The docking evaluator (use case a).
    pub docking: DockingEvaluator,
}

impl TenantMux {
    /// A standard mixed campaign: seeded city grid + screening pocket.
    pub fn city_and_screening(seed: u64) -> Self {
        TenantMux {
            nav: crate::nav::NavEvaluator::city(seed),
            docking: DockingEvaluator::screening(seed ^ 0xD0C4),
        }
    }
}

impl Evaluator for TenantMux {
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        if config.get_int("poses").is_some() {
            self.docking.evaluate(config, features)
        } else {
            self.nav.evaluate(config, features)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::autoscale::AutoscaleConfig;
    use crate::pool::{SchedConfig, SchedPolicy};
    use crate::service::{FrontDoorConfig, ServiceConfig, TuningRequest};

    fn config(poses: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("poses", KnobValue::Int(poses));
        c
    }

    #[test]
    fn evaluation_is_pure() {
        let evaluator = DockingEvaluator::screening(40);
        let a = evaluator.evaluate(&config(8), &[24.0]);
        let b = evaluator.evaluate(&config(8), &[24.0]);
        assert_eq!(a, b, "identical design points must evaluate identically");
    }

    #[test]
    fn cost_follows_the_work_law() {
        let evaluator = DockingEvaluator::screening(41);
        let latency = |poses: i64, atoms: f64| {
            evaluator.evaluate(&config(poses), &[atoms]).metrics["latency"]
        };
        // exact atoms × spheres × poses proportionality
        assert!((latency(16, 24.0) - 2.0 * latency(8, 24.0)).abs() < 1e-12);
        assert!((latency(8, 100.0) - 2.0 * latency(8, 50.0)).abs() < 1e-12);
    }

    #[test]
    fn whale_ligands_are_heavy() {
        let evaluator = DockingEvaluator::screening(42);
        let small = evaluator.evaluate(&config(8), &[8.0]);
        let whale = evaluator.evaluate(&config(8), &[250.0]);
        assert!(
            whale.cost_s > 20.0 * small.cost_s,
            "whale {} vs small {}",
            whale.cost_s,
            small.cost_s
        );
    }

    #[test]
    fn missing_knob_defaults_to_eight_poses() {
        let evaluator = DockingEvaluator::screening(43);
        let e = evaluator.evaluate(&Configuration::new(), &[]);
        assert!(e.metrics["latency"] > 0.0);
        assert_eq!(e.cost_s, e.metrics["latency"]);
    }

    #[test]
    fn feature_distribution_is_heavy_tailed() {
        let sizes: Vec<f64> = (0..500).map(|i| docking_features(i, 7)[0]).collect();
        let mut sorted = sizes.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        assert!((18.0..=32.0).contains(&median), "median {median}");
        assert!(sorted.last().unwrap() > &(2.0 * median));
        assert_eq!(
            docking_features(3, 7),
            docking_features(3, 7),
            "features are a pure function of (index, seed)"
        );
    }

    #[test]
    fn mux_dispatches_on_the_knob() {
        let mux = TenantMux::city_and_screening(11);
        let docking = mux.evaluate(&config(8), &[24.0]);
        assert!(docking.metrics.contains_key("affinity"));
        let mut nav_config = Configuration::new();
        nav_config.set("alternatives", KnobValue::Int(4));
        let nav = mux.evaluate(&nav_config, &[8.0 * 3600.0, 1.0]);
        assert!(nav.metrics.contains_key("quality"));
    }

    #[test]
    fn mixed_campaign_serves_both_classes_end_to_end() {
        let service =
            TuningService::new(ServiceConfig::default(), TenantMux::city_and_screening(17))
                .with_scheduler(
                    SchedConfig::default().with_class(TenantClass::Docking, SchedPolicy::WorkSteal),
                );
        crate::driver::register_nav_tenants(&service, &crate::driver::DriverConfig::smoke(17), 0.5);
        register_docking_tenants(&service, 1000, 8, 17, 0.5);
        let mut requests: Vec<TuningRequest> = (0..4)
            .map(|tenant| TuningRequest {
                tenant,
                arrival_s: 0.01 * tenant as f64,
            })
            .collect();
        requests.extend((1000..1008).map(|tenant| TuningRequest {
            tenant,
            arrival_s: 0.05,
        }));
        let report = service.serve_batch(&requests);
        assert_eq!(report.responses.len(), 12);
        assert!(report.responses.iter().all(|r| r.is_ok()));
        // both classes flowed through one pool: makespans recorded per class
        let store = service.store();
        store
            .with(2, |s| assert_eq!(s.class, TenantClass::Generic))
            .unwrap();
        store
            .with(1003, |s| assert_eq!(s.class, TenantClass::Docking))
            .unwrap();
    }

    #[test]
    fn docking_outcomes_are_physical_worker_invariant() {
        let run = |physical: usize| {
            let mut cfg = ServiceConfig::default();
            cfg.pool.workers = physical;
            // the front door's pinned autoscaler (4..=4) fixes *virtual*
            // capacity, so `physical` varies thread parallelism alone
            let front_door = FrontDoorConfig {
                admission: AdmissionConfig::hardened(),
                autoscale: AutoscaleConfig {
                    min_workers: 4,
                    max_workers: 4,
                    ..AutoscaleConfig::hardened()
                },
            };
            let service = TuningService::new(cfg, DockingEvaluator::screening(23))
                .with_scheduler(SchedConfig::work_stealing())
                .with_front_door(front_door);
            register_docking_tenants(&service, 0, 32, 23, 0.5);
            let requests: Vec<TuningRequest> = (0..32)
                .map(|tenant| TuningRequest {
                    tenant,
                    arrival_s: 0.001 * tenant as f64,
                })
                .collect();
            let mut digest = String::new();
            for response in service.serve_batch(&requests).responses {
                digest.push_str(&format!("{response:?}\n"));
            }
            digest.push_str(&service.state_report());
            digest
        };
        let reference = run(1);
        for workers in [2usize, 4, 8] {
            assert_eq!(run(workers), reference, "physical workers leaked in");
        }
    }
}
