//! Mini-C kernels as serving-tier design-point evaluators.
//!
//! Closes the loop between the serving layer and the functional
//! substrate: a tenant's design point is a *precision knob* on a real
//! mini-C kernel, and a probe runs that kernel on the metered bytecode
//! VM ([`antarex_vm::Vm`]). All instrumented bytecode flows through one
//! shared [`InstrumentedCodeCache`], so a `(program digest, metering
//! params)` pair lowers exactly once no matter how many tenants,
//! design-space-exploration rounds, or precision rungs replay it —
//! the sharing story the VM's weave-time cache exists for.
//!
//! Like [`NavEvaluator`](crate::nav::NavEvaluator), the probe derives
//! its input data from [`probe_seed`], making every evaluation a pure
//! function of (configuration, workload features): the purity the pool
//! and the design-point cache demand. Metrics are virtual (derived from
//! metered cost and precision-weighted FP energy), never wall clock, so
//! results are bit-identical across machines and thread counts.

use crate::cache::probe_seed;
use crate::pool::Evaluation;
use crate::service::{Evaluator, ProbeSegment};
use antarex_ir::cost::CostModel;
use antarex_ir::cost::ExecStats;
use antarex_ir::value::Value;
use antarex_ir::{parse_program, IrError, Program};
use antarex_precision::vars::{float_vars, set_precision};
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::manager::AppManager;
use antarex_tuner::{Configuration, KnobValue, KnowledgeBase, OperatingPoint};
use antarex_vm::{InstrumentedCodeCache, Vm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The default probe kernel: a fused multiply-accumulate reduction with
/// enough float locals for the precision knob to bite.
pub const DEFAULT_KERNEL: &str = "double kernel(double a[], double b[], int n) {
    double acc = 0.0;
    double scale = 0.5;
    for (int i = 0; i < n; i++) {
        double t = a[i] * b[i] + scale * a[i];
        acc += t * t;
    }
    return acc;
}";

/// Evaluates precision design points of a mini-C kernel on the VM.
///
/// Knob: `mantissa` (int, 2..=52) — the mantissa width every float
/// declaration in the kernel is lowered to. Workload features:
/// `[problem_size]` (elements; defaults to 32).
#[derive(Debug, Clone)]
pub struct KernelEvaluator {
    source: String,
    function: String,
    cost_model: CostModel,
    cache: Arc<InstrumentedCodeCache>,
    /// Abstract metered cost units per virtual second (probe
    /// throughput calibration).
    pub cost_per_second: f64,
    /// Watts per unit of precision-weighted FP energy per element.
    pub watts_per_unit_energy: f64,
}

impl KernelEvaluator {
    /// Creates an evaluator over `function` of the given mini-C source,
    /// with a fresh instrumented-code cache.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] if the source fails to parse or lacks the
    /// function.
    pub fn new(source: impl Into<String>, function: impl Into<String>) -> Result<Self, IrError> {
        let source = source.into();
        let function = function.into();
        let program = parse_program(&source)?;
        if program.function(&function).is_none() {
            return Err(IrError::Unresolved(function));
        }
        Ok(KernelEvaluator {
            source,
            function,
            cost_model: CostModel::new(),
            cache: Arc::new(InstrumentedCodeCache::new()),
            cost_per_second: 2.0e6,
            watts_per_unit_energy: 0.02,
        })
    }

    /// The standard FMA-reduction kernel ([`DEFAULT_KERNEL`]).
    pub fn fma() -> Self {
        KernelEvaluator::new(DEFAULT_KERNEL, "kernel").expect("default kernel parses")
    }

    /// Shares an instrumented-code cache (e.g. one cache across every
    /// tenant of a service, or across services).
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<InstrumentedCodeCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The shared instrumented-code cache (hit/miss accounting).
    pub fn cache(&self) -> &Arc<InstrumentedCodeCache> {
        &self.cache
    }

    /// The base program at full precision.
    fn base_program(&self) -> Program {
        parse_program(&self.source).expect("validated at construction")
    }

    /// The program with every float declaration lowered to `bits`.
    fn variant(&self, bits: u8) -> Program {
        let mut program = self.base_program();
        let vars = program
            .function(&self.function)
            .map(|f| float_vars(f))
            .unwrap_or_default();
        for var in &vars {
            set_precision(&mut program, &self.function, var, bits)
                .expect("inventoried variable exists");
        }
        program
    }

    /// Runs one program over the seeded inputs, returning the scalar
    /// output and the metered statistics.
    fn run(&self, program: Program, args: &[Value]) -> Result<(f64, ExecStats), IrError> {
        let mut vm = Vm::with_cache(program, self.cost_model.clone(), &self.cache);
        let (value, stats) = vm.run_segment(&self.function, args)?;
        Ok((scalar(&value), stats))
    }

    /// Converts one segment's metered stats to (virtual seconds,
    /// joules) under the evaluator's calibration.
    fn meter(&self, stats: &ExecStats, n: usize) -> (f64, f64) {
        let latency_s = stats.cost as f64 / self.cost_per_second;
        // power is intensity, not total work: weight FP energy per element
        let power_w = 5.0 + self.watts_per_unit_energy * stats.flop_energy / n as f64;
        (latency_s, power_w * latency_s)
    }
}

fn scalar(value: &Value) -> f64 {
    match value {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        _ => 0.0,
    }
}

impl Evaluator for KernelEvaluator {
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        self.evaluate_segmented(config, features).0
    }

    fn evaluate_segmented(
        &self,
        config: &Configuration,
        features: &[f64],
    ) -> (Evaluation, Vec<ProbeSegment>) {
        let bits = config.get_int("mantissa").unwrap_or(52).clamp(2, 52) as u8;
        let n = features.first().copied().unwrap_or(32.0).clamp(4.0, 256.0) as usize;
        // inputs derive from the design key: identical (config, features)
        // pairs probe identical data forever
        let mut rng = StdRng::seed_from_u64(probe_seed(config, features));
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let args = vec![Value::from(a), Value::from(b), Value::Int(n as i64)];

        let (reference, ref_stats) = self
            .run(self.base_program(), &args)
            .expect("full-precision kernel runs");
        let (tuned, stats) = if bits < 52 {
            self.run(self.variant(bits), &args)
                .expect("lowered kernel runs")
        } else {
            self.run(self.base_program(), &args)
                .expect("full-precision kernel runs")
        };

        let error = (tuned - reference).abs() / reference.abs().max(1e-12);
        let latency_s = stats.cost as f64 / self.cost_per_second;
        // power is intensity, not total work: weight FP energy per element
        let power_w = 5.0 + self.watts_per_unit_energy * stats.flop_energy / n as f64;
        let (ref_cost_s, ref_energy_j) = self.meter(&ref_stats, n);
        let (tuned_cost_s, tuned_energy_j) = self.meter(&stats, n);
        let evaluation = Evaluation {
            metrics: [
                ("latency".to_string(), latency_s),
                ("error".to_string(), error),
                ("power".to_string(), power_w),
            ]
            .into_iter()
            .collect(),
            cost_s: latency_s,
            energy_j: tuned_energy_j,
        };
        // the reference run is metered too, but only the tuned kernel
        // is the probe's billable work: segments describe both for the
        // trace, the evaluation charges the tuned run alone
        let segments = vec![
            ProbeSegment {
                name: "reference",
                cost_s: ref_cost_s,
                energy_j: ref_energy_j,
            },
            ProbeSegment {
                name: "tuned",
                cost_s: tuned_cost_s,
                energy_j: tuned_energy_j,
            },
        ];
        (evaluation, segments)
    }
}

/// Design-time knowledge for the precision knob: optimistic estimates
/// the service corrects through online learning.
pub fn kernel_knowledge() -> KnowledgeBase {
    [52i64, 23, 12, 8]
        .into_iter()
        .map(|bits| {
            let mut config = Configuration::new();
            config.set("mantissa", KnobValue::Int(bits));
            OperatingPoint::new(
                config,
                [
                    ("latency".to_string(), 0.01),
                    ("error".to_string(), (2.0f64).powi(-(bits as i32))),
                    ("power".to_string(), 5.0 + 0.1 * bits as f64),
                ],
            )
        })
        .collect()
}

/// A per-tenant runtime manager over [`kernel_knowledge`]: minimize
/// power while the precision-loss error stays within `error_budget`.
pub fn kernel_manager(error_budget: f64) -> AppManager {
    let mut manager = AppManager::new(kernel_knowledge(), Objective::minimize("power"));
    manager.add_constraint(Constraint::at_most("error", error_budget));
    manager
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceConfig, TuningRequest, TuningService};

    fn config(bits: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("mantissa", KnobValue::Int(bits));
        c
    }

    #[test]
    fn evaluation_is_pure() {
        let evaluator = KernelEvaluator::fma();
        let a = evaluator.evaluate(&config(12), &[32.0]);
        let b = evaluator.evaluate(&config(12), &[32.0]);
        assert_eq!(a, b, "identical design points must evaluate identically");
    }

    #[test]
    fn lower_mantissa_sheds_power_but_adds_error() {
        let evaluator = KernelEvaluator::fma();
        let full = evaluator.evaluate(&config(52), &[64.0]);
        let low = evaluator.evaluate(&config(8), &[64.0]);
        assert_eq!(full.metrics["error"], 0.0, "full precision is exact");
        assert!(low.metrics["error"] > 0.0, "8 mantissa bits lose accuracy");
        assert!(
            low.metrics["power"] < full.metrics["power"],
            "narrow flops are cheaper: {} vs {}",
            low.metrics["power"],
            full.metrics["power"]
        );
    }

    #[test]
    fn replay_hits_the_instrumented_code_cache() {
        let evaluator = KernelEvaluator::fma();
        for round in 0..25 {
            for bits in [52i64, 23, 12, 8] {
                let features = [16.0 + (round % 3) as f64 * 8.0];
                evaluator.evaluate(&config(bits), &features);
            }
        }
        let cache = evaluator.cache();
        assert_eq!(cache.misses(), 4, "one lowering per distinct program");
        assert!(
            cache.hit_rate() >= 0.95,
            "serving-tier replay must hit: {}",
            cache.hit_rate()
        );
    }

    #[test]
    fn service_serves_kernel_tenants_end_to_end() {
        let service = TuningService::new(ServiceConfig::default(), KernelEvaluator::fma());
        for tenant in 0..4 {
            service
                .register_tenant(tenant, kernel_manager(1e-3), vec![32.0])
                .unwrap();
        }
        let requests: Vec<TuningRequest> = (0..4)
            .map(|tenant| TuningRequest {
                tenant,
                arrival_s: 0.1 * tenant as f64,
            })
            .collect();
        let report = service.serve_batch(&requests);
        assert_eq!(report.responses.len(), 4);
        assert!(report.evaluated >= 1);
        assert!(
            service.cache().hits() + service.cache().misses() > 0,
            "design points flowed through the memo cache"
        );
    }
}
