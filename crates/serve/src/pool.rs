//! The parallel evaluation pool.
//!
//! Batches of design-point probes run on scoped worker threads pulling
//! from a shared index — real parallelism — while every observable
//! output stays deterministic: probes are pure functions of their job,
//! results are merged back in job order, and timing is *virtual*: a
//! policy-selected schedule from [`antarex_sim::sched`] replays the
//! batch on `workers` virtual cores using the probes' reported compute
//! costs. The virtual makespan, not the wall clock, is what reports and
//! tests consume, so runs are byte-identical at any physical core
//! count.
//!
//! The default [`SchedPolicy::Static`] replays the legacy greedy list
//! schedule (earliest-finishing worker first, lowest index on ties)
//! bit for bit. Heavy-tailed tenant classes (drug-discovery docking)
//! opt into [`SchedPolicy::WorkSteal`] — a deterministic work-stealing
//! simulation whose placement runs on *estimated* costs from the pool's
//! [`CostEstimator`] (quantized feature keys, EWMA-refined from
//! observed probe costs) — or the [`SchedPolicy::Lpt`] placement
//! fallback. A mixed batch resolves to the most dynamic policy among
//! its classes.
//!
//! Admission control follows the shed pattern of
//! [`antarex_apps::nav::server`]: the queue is bounded, and a batch
//! that overflows it has its tail shed *before* any work starts rather
//! than stalling every tenant behind it.

use crate::cache::{probe_seed, Metrics};
use crate::error::ServeError;
use crate::store::{TenantClass, TenantId};
use antarex_obs::TraceCtx;
use antarex_sim::sched;
pub use antarex_sim::sched::{SchedPolicy, SchedStats};
use antarex_tuner::Configuration;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One design-point probe to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalJob {
    /// Position in the batch (assignment and merge order).
    pub id: usize,
    /// Tenant that first requested this design point.
    pub tenant: TenantId,
    /// Workload class of the requesting tenant; selects the scheduler
    /// policy and the metric bucket.
    pub class: TenantClass,
    /// The knob configuration to measure.
    pub config: Configuration,
    /// Workload features the probe runs under.
    pub features: Vec<f64>,
    /// Causal context of the request that first demanded this probe;
    /// [`TraceCtx::NONE`] for untraced work.
    pub trace: TraceCtx,
}

/// What a probe reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Measured metrics of the design point.
    pub metrics: Metrics,
    /// Virtual compute cost of the probe, seconds.
    pub cost_s: f64,
    /// Metered IT energy the probe spent, joules (VM `flop_energy`
    /// rolled up through the evaluator's power model). Direct input to
    /// per-request energy attribution.
    pub energy_j: f64,
}

/// One merged result.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The job this result answers.
    pub job: EvalJob,
    /// The probe's evaluation.
    pub evaluation: Evaluation,
    /// Virtual completion time of the job within the batch, seconds
    /// after batch start (queue wait + compute on its virtual worker).
    pub completion_s: f64,
}

/// Outcome of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Results in job-id order (admitted jobs only).
    pub results: Vec<EvalResult>,
    /// Jobs shed by admission control (the batch tail past capacity).
    pub shed: Vec<EvalJob>,
    /// Virtual makespan of the admitted jobs on `workers` cores.
    pub makespan_s: f64,
    /// The policy the batch was scheduled with.
    pub policy: SchedPolicy,
    /// Steal/queue accounting from the virtual schedule.
    pub stats: SchedStats,
}

/// Pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (and virtual cores in the replayed schedule).
    pub workers: usize,
    /// Bounded queue: probes admitted per batch before shedding.
    pub queue_capacity: usize,
}

impl PoolConfig {
    /// A pool with the given worker count and a 256-probe queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> Self {
        let config = PoolConfig {
            workers,
            queue_capacity: 256,
        };
        config.validate();
        config
    }

    /// Validates the sizing, returning a typed error instead of
    /// panicking.
    pub fn try_validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "pool needs at least one worker",
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue capacity must be positive",
            });
        }
        Ok(())
    }

    fn validate(&self) {
        if let Err(ServeError::InvalidConfig { reason }) = self.try_validate() {
            panic!("{}", reason);
        }
    }
}

/// Per-class scheduler policy selection.
///
/// Each tenant class resolves to its override, falling back to the
/// default; a batch mixing classes is scheduled with the most dynamic
/// resolved policy (work stealing > LPT > block > static), so a single
/// heavy-tailed tenant class is enough to turn rebalancing on for the
/// batches it appears in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedConfig {
    /// Policy for classes without an override.
    pub default: SchedPolicy,
    /// Per-class overrides, indexed by [`TenantClass::index`].
    pub per_class: [Option<SchedPolicy>; TenantClass::COUNT],
}

impl SchedConfig {
    /// The legacy static list schedule for every class.
    pub fn static_only() -> Self {
        SchedConfig::default()
    }

    /// Work stealing for every class.
    pub fn work_stealing() -> Self {
        SchedConfig {
            default: SchedPolicy::WorkSteal,
            per_class: [None; TenantClass::COUNT],
        }
    }

    /// Sets the policy override for one tenant class.
    pub fn with_class(mut self, class: TenantClass, policy: SchedPolicy) -> Self {
        self.per_class[class.index()] = Some(policy);
        self
    }

    /// The policy a single class resolves to.
    pub fn resolve(&self, class: TenantClass) -> SchedPolicy {
        self.per_class[class.index()].unwrap_or(self.default)
    }

    /// The policy a batch of jobs resolves to: the most dynamic among
    /// the classes present (default for an empty batch).
    pub fn policy_for<I: IntoIterator<Item = TenantClass>>(&self, classes: I) -> SchedPolicy {
        classes
            .into_iter()
            .map(|class| self.resolve(class))
            .max_by_key(|policy| policy.dynamism())
            .unwrap_or(self.default)
    }
}

/// Exponentially-weighted moving-average cost predictor keyed by the
/// quantized (configuration, features) probe seed.
///
/// Estimates feed *placement* decisions of the estimate-driven policies
/// ([`SchedPolicy::Lpt`], [`SchedPolicy::WorkSteal`]); execution time
/// in the virtual replay always uses the observed probe costs, so a bad
/// estimate degrades balance, never correctness or determinism. The
/// table is refined in job-id order after every batch, which keeps it a
/// pure function of the job stream — independent of physical thread
/// count.
#[derive(Debug, Clone, Default)]
pub struct CostEstimator {
    state: Arc<Mutex<EstimatorState>>,
}

#[derive(Debug, Default)]
struct EstimatorState {
    table: BTreeMap<u64, f64>,
    mean: f64,
    observed: u64,
}

/// EWMA smoothing factor for refining cost estimates.
const ESTIMATE_ALPHA: f64 = 0.3;

impl CostEstimator {
    /// Predicted cost for a probe key: the refined per-key EWMA, the
    /// global mean for unseen keys, or 1.0 before any observation.
    pub fn estimate(&self, key: u64) -> f64 {
        let state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match state.table.get(&key) {
            Some(&cost) => cost,
            None if state.observed > 0 => state.mean,
            None => 1.0,
        }
    }

    /// Folds an observed probe cost into the per-key EWMA and the
    /// global mean.
    pub fn observe(&self, key: u64, cost_s: f64) {
        let cost = cost_s.max(0.0);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state
            .table
            .entry(key)
            .and_modify(|old| *old = ESTIMATE_ALPHA * cost + (1.0 - ESTIMATE_ALPHA) * *old)
            .or_insert(cost);
        state.observed += 1;
        let n = state.observed as f64;
        state.mean += (cost - state.mean) / n;
    }

    /// Number of distinct probe keys with a refined estimate.
    pub fn keys(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .table
            .len()
    }
}

/// The evaluation pool.
#[derive(Debug, Clone)]
pub struct EvalPool {
    config: PoolConfig,
    sched: SchedConfig,
    estimator: CostEstimator,
}

impl EvalPool {
    /// Creates a pool with the default static schedule.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero workers or zero capacity.
    pub fn new(config: PoolConfig) -> Self {
        config.validate();
        EvalPool {
            config,
            sched: SchedConfig::default(),
            estimator: CostEstimator::default(),
        }
    }

    /// Creates a pool, returning a typed error on an invalid sizing
    /// instead of panicking.
    pub fn try_new(config: PoolConfig) -> Result<Self, ServeError> {
        config.try_validate()?;
        Ok(EvalPool {
            config,
            sched: SchedConfig::default(),
            estimator: CostEstimator::default(),
        })
    }

    /// Replaces the scheduler policy selection.
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// The pool sizing.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// The scheduler policy selection.
    pub fn sched(&self) -> SchedConfig {
        self.sched
    }

    /// The pool's cost estimator (shared across clones).
    pub fn estimator(&self) -> &CostEstimator {
        &self.estimator
    }

    /// Evaluates a batch: admits up to `queue_capacity` jobs, sheds the
    /// rest, runs the admitted probes on scoped worker threads, and
    /// merges results deterministically.
    ///
    /// `probe` must be a pure function of the job — the contract that
    /// makes the parallel schedule invisible in the output.
    pub fn evaluate_batch<F>(&self, jobs: Vec<EvalJob>, probe: &F) -> BatchOutcome
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        self.evaluate_batch_on(jobs, self.config.workers, probe)
    }

    /// [`evaluate_batch`](EvalPool::evaluate_batch) with an explicit
    /// *virtual* core count for the replayed schedule — the
    /// autoscaler's entry point. Physical parallelism stays at the
    /// configured worker count; only the virtual schedule (and hence
    /// completion times and makespan) follows `virtual_workers`, so a
    /// capacity change is a pure work-content decision and the output
    /// stays byte-identical at any physical thread count.
    ///
    /// # Panics
    ///
    /// Panics if `virtual_workers` is zero.
    pub fn evaluate_batch_on<F>(
        &self,
        jobs: Vec<EvalJob>,
        virtual_workers: usize,
        probe: &F,
    ) -> BatchOutcome
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        match self.try_evaluate_batch_on(jobs, virtual_workers, probe) {
            Ok(outcome) => outcome,
            Err(ServeError::InvalidConfig { reason }) => panic!("{}", reason),
            Err(other) => panic!("{}", other),
        }
    }

    /// [`evaluate_batch_on`](EvalPool::evaluate_batch_on) returning a
    /// typed [`ServeError::InvalidConfig`] when `virtual_workers` is
    /// zero instead of panicking.
    pub fn try_evaluate_batch_on<F>(
        &self,
        mut jobs: Vec<EvalJob>,
        virtual_workers: usize,
        probe: &F,
    ) -> Result<BatchOutcome, ServeError>
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        if virtual_workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "need at least one virtual worker",
            });
        }
        let admitted_count = jobs.len().min(self.config.queue_capacity);
        let shed = jobs.split_off(admitted_count);
        let evaluations = self.run_parallel(&jobs, probe);
        let policy = self.sched.policy_for(jobs.iter().map(|job| job.class));
        let costs: Vec<f64> = evaluations.iter().map(|e| e.cost_s).collect();
        let schedule = if policy == SchedPolicy::Static {
            // The legacy list schedule places by actual cost; skip the
            // estimator entirely so the hot path stays unchanged.
            sched::list_schedule(&costs, virtual_workers)
        } else {
            let keys: Vec<u64> = jobs
                .iter()
                .map(|job| probe_seed(&job.config, &job.features))
                .collect();
            let estimates: Vec<f64> = keys
                .iter()
                .map(|&key| self.estimator.estimate(key))
                .collect();
            let schedule = sched::schedule(policy, &costs, &estimates, virtual_workers);
            // Refine in job-id order: deterministic at any thread count.
            for (&key, &cost) in keys.iter().zip(&costs) {
                self.estimator.observe(key, cost);
            }
            schedule
        };
        let results = jobs
            .into_iter()
            .zip(evaluations)
            .zip(schedule.completions)
            .map(|((job, evaluation), completion_s)| EvalResult {
                job,
                evaluation,
                completion_s,
            })
            .collect();
        Ok(BatchOutcome {
            results,
            shed,
            makespan_s: schedule.makespan_s,
            policy,
            stats: schedule.stats,
        })
    }

    /// Runs the probes on `workers` scoped threads; returns evaluations
    /// in job order regardless of which thread ran what.
    fn run_parallel<F>(&self, jobs: &[EvalJob], probe: &F) -> Vec<Evaluation>
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let threads = self.config.workers.min(jobs.len());
        if threads == 1 {
            return jobs.iter().map(probe).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Evaluation>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let evaluation = probe(job);
                    if let Ok(mut slot) = slots[index].lock() {
                        *slot = Some(evaluation);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or(Evaluation {
                        metrics: Metrics::new(),
                        cost_s: 0.0,
                        energy_j: 0.0,
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::KnobValue;

    fn job(id: usize) -> EvalJob {
        let mut config = Configuration::new();
        config.set("level", KnobValue::Int(id as i64));
        EvalJob {
            id,
            tenant: id as u64,
            class: TenantClass::Generic,
            config,
            features: vec![id as f64],
            trace: TraceCtx::NONE,
        }
    }

    fn probe(j: &EvalJob) -> Evaluation {
        Evaluation {
            metrics: [("latency".to_string(), 0.01 * (j.id + 1) as f64)]
                .into_iter()
                .collect(),
            cost_s: 1.0,
            energy_j: 0.5,
        }
    }

    #[test]
    fn results_come_back_in_job_order() {
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        let outcome = pool.evaluate_batch((0..37).map(job).collect(), &probe);
        assert_eq!(outcome.results.len(), 37);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.job.id, i);
            assert_eq!(
                r.evaluation.metrics.get("latency"),
                Some(&(0.01 * (i + 1) as f64))
            );
        }
        assert!(outcome.shed.is_empty());
    }

    #[test]
    fn parallel_batches_are_byte_identical() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let four = EvalPool::new(PoolConfig::with_workers(4));
        let a = four.evaluate_batch(jobs.clone(), &probe);
        let b = four.evaluate_batch(jobs, &probe);
        assert_eq!(a, b, "same batch must merge identically across runs");
    }

    #[test]
    fn virtual_makespan_scales_with_workers() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let one = EvalPool::new(PoolConfig::with_workers(1))
            .evaluate_batch(jobs.clone(), &probe)
            .makespan_s;
        let four = EvalPool::new(PoolConfig::with_workers(4))
            .evaluate_batch(jobs, &probe)
            .makespan_s;
        assert!((one - 64.0).abs() < 1e-9);
        assert!(
            (four - 16.0).abs() < 1e-9,
            "64 unit jobs on 4 cores: {four}"
        );
    }

    #[test]
    fn admission_control_sheds_the_tail() {
        let pool = EvalPool::new(PoolConfig {
            workers: 2,
            queue_capacity: 10,
        });
        let outcome = pool.evaluate_batch((0..15).map(job).collect(), &probe);
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(outcome.shed.len(), 5);
        assert_eq!(outcome.shed[0].id, 10, "shed jobs are the batch tail");
    }

    #[test]
    fn completion_times_include_queue_wait() {
        let pool = EvalPool::new(PoolConfig::with_workers(2));
        let outcome = pool.evaluate_batch((0..4).map(job).collect(), &probe);
        let completions: Vec<f64> = outcome.results.iter().map(|r| r.completion_s).collect();
        // unit costs, 2 virtual cores: jobs 0,1 finish at 1.0; jobs 2,3 at 2.0
        assert_eq!(completions, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(outcome.makespan_s, 2.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        let outcome = pool.evaluate_batch(Vec::new(), &probe);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.makespan_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolConfig::with_workers(0);
    }

    #[test]
    fn virtual_capacity_overrides_schedule_not_parallelism() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        // 16 virtual cores on a 4-thread pool: the schedule follows
        // the virtual count
        let scaled = pool.evaluate_batch_on(jobs.clone(), 16, &probe);
        assert!((scaled.makespan_s - 4.0).abs() < 1e-9);
        // and the outcome is byte-identical to a pool physically
        // configured with 16 workers
        let native = EvalPool::new(PoolConfig {
            workers: 16,
            queue_capacity: 256,
        })
        .evaluate_batch(jobs, &probe);
        assert_eq!(scaled, native);
    }

    #[test]
    #[should_panic(expected = "virtual worker")]
    fn zero_virtual_workers_rejected() {
        let pool = EvalPool::new(PoolConfig::with_workers(2));
        let _ = pool.evaluate_batch_on(vec![job(0)], 0, &probe);
    }

    #[test]
    fn try_path_returns_typed_invalid_config() {
        let pool = EvalPool::new(PoolConfig::with_workers(2));
        let err = pool
            .try_evaluate_batch_on(vec![job(0)], 0, &probe)
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidConfig {
                reason: "need at least one virtual worker"
            }
        );
        assert!(!err.is_retryable(), "misconfiguration never clears alone");
        assert!(EvalPool::try_new(PoolConfig {
            workers: 0,
            queue_capacity: 8,
        })
        .is_err());
        assert!(PoolConfig {
            workers: 2,
            queue_capacity: 0,
        }
        .try_validate()
        .is_err());
    }

    /// Heavy-tailed probe whose cost is its id, descending — a sorted
    /// "library" where static block partitioning piles the whales onto
    /// core zero.
    fn whale_probe(j: &EvalJob) -> Evaluation {
        Evaluation {
            metrics: Metrics::new(),
            cost_s: (256 - j.id) as f64,
            energy_j: 0.0,
        }
    }

    #[test]
    fn work_stealing_rebalances_a_sorted_tail() {
        let jobs: Vec<EvalJob> = (0..256).map(job).collect();
        let static_pool = EvalPool::new(PoolConfig {
            workers: 4,
            queue_capacity: 1024,
        })
        .with_sched(SchedConfig {
            default: SchedPolicy::Block,
            per_class: [None; TenantClass::COUNT],
        });
        let steal_pool = EvalPool::new(PoolConfig {
            workers: 4,
            queue_capacity: 1024,
        })
        .with_sched(SchedConfig::work_stealing());
        let blocked = static_pool.evaluate_batch(jobs.clone(), &whale_probe);
        let stolen = steal_pool.evaluate_batch(jobs, &whale_probe);
        assert_eq!(blocked.policy, SchedPolicy::Block);
        assert_eq!(stolen.policy, SchedPolicy::WorkSteal);
        assert!(
            stolen.makespan_s < blocked.makespan_s,
            "steal {} vs block {}",
            stolen.makespan_s,
            blocked.makespan_s
        );
        assert!(stolen.stats.steals > 0);
    }

    #[test]
    fn stealing_outcome_is_physical_worker_invariant() {
        let jobs: Vec<EvalJob> = (0..128).map(job).collect();
        let outcomes: Vec<BatchOutcome> = [1usize, 2, 4, 8]
            .iter()
            .map(|&physical| {
                EvalPool::new(PoolConfig {
                    workers: physical,
                    queue_capacity: 1024,
                })
                .with_sched(SchedConfig::work_stealing())
                .evaluate_batch_on(jobs.clone(), 4, &whale_probe)
            })
            .collect();
        for other in &outcomes[1..] {
            assert_eq!(&outcomes[0], other, "schedule must not see thread count");
        }
    }

    #[test]
    fn mixed_batches_resolve_to_the_most_dynamic_class_policy() {
        let sched = SchedConfig::default()
            .with_class(TenantClass::Docking, SchedPolicy::WorkSteal)
            .with_class(TenantClass::Nav, SchedPolicy::Static);
        assert_eq!(
            sched.policy_for([TenantClass::Nav, TenantClass::Generic]),
            SchedPolicy::Static
        );
        assert_eq!(
            sched.policy_for([TenantClass::Nav, TenantClass::Docking]),
            SchedPolicy::WorkSteal
        );
        assert_eq!(sched.policy_for([]), SchedPolicy::Static);
    }

    #[test]
    fn estimator_refines_toward_observed_costs() {
        let estimator = CostEstimator::default();
        assert_eq!(estimator.estimate(7), 1.0, "cold estimator guesses unit");
        estimator.observe(7, 4.0);
        assert_eq!(estimator.estimate(7), 4.0, "first observation seeds");
        estimator.observe(7, 8.0);
        let refined = estimator.estimate(7);
        assert!(refined > 4.0 && refined < 8.0, "EWMA moved: {refined}");
        assert_eq!(
            estimator.estimate(99),
            estimator.state.lock().unwrap().mean,
            "unseen keys fall back to the global mean"
        );
        assert_eq!(estimator.keys(), 1);
    }
}
