//! The parallel evaluation pool.
//!
//! Batches of design-point probes run on scoped worker threads pulling
//! from a shared index — real parallelism — while every observable
//! output stays deterministic: probes are pure functions of their job,
//! results are merged back in job order, and timing is *virtual*: a
//! list schedule (earliest-finishing worker first, lowest index on
//! ties) replays the batch on `workers` virtual cores using the probes'
//! reported compute costs. The virtual makespan, not the wall clock, is
//! what reports and tests consume, so runs are byte-identical at any
//! physical core count.
//!
//! Admission control follows the shed pattern of
//! [`antarex_apps::nav::server`]: the queue is bounded, and a batch
//! that overflows it has its tail shed *before* any work starts rather
//! than stalling every tenant behind it.

use crate::cache::Metrics;
use crate::store::TenantId;
use antarex_tuner::Configuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One design-point probe to evaluate.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalJob {
    /// Position in the batch (assignment and merge order).
    pub id: usize,
    /// Tenant that first requested this design point.
    pub tenant: TenantId,
    /// The knob configuration to measure.
    pub config: Configuration,
    /// Workload features the probe runs under.
    pub features: Vec<f64>,
}

/// What a probe reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Measured metrics of the design point.
    pub metrics: Metrics,
    /// Virtual compute cost of the probe, seconds.
    pub cost_s: f64,
}

/// One merged result.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// The job this result answers.
    pub job: EvalJob,
    /// The probe's evaluation.
    pub evaluation: Evaluation,
    /// Virtual completion time of the job within the batch, seconds
    /// after batch start (queue wait + compute on its virtual worker).
    pub completion_s: f64,
}

/// Outcome of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Results in job-id order (admitted jobs only).
    pub results: Vec<EvalResult>,
    /// Jobs shed by admission control (the batch tail past capacity).
    pub shed: Vec<EvalJob>,
    /// Virtual makespan of the admitted jobs on `workers` cores.
    pub makespan_s: f64,
}

/// Pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (and virtual cores in the replayed schedule).
    pub workers: usize,
    /// Bounded queue: probes admitted per batch before shedding.
    pub queue_capacity: usize,
}

impl PoolConfig {
    /// A pool with the given worker count and a 256-probe queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn with_workers(workers: usize) -> Self {
        let config = PoolConfig {
            workers,
            queue_capacity: 256,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.workers > 0, "pool needs at least one worker");
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
    }
}

/// The evaluation pool.
#[derive(Debug, Clone, Copy)]
pub struct EvalPool {
    config: PoolConfig,
}

impl EvalPool {
    /// Creates a pool.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero workers or zero capacity.
    pub fn new(config: PoolConfig) -> Self {
        config.validate();
        EvalPool { config }
    }

    /// The pool sizing.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Evaluates a batch: admits up to `queue_capacity` jobs, sheds the
    /// rest, runs the admitted probes on scoped worker threads, and
    /// merges results deterministically.
    ///
    /// `probe` must be a pure function of the job — the contract that
    /// makes the parallel schedule invisible in the output.
    pub fn evaluate_batch<F>(&self, jobs: Vec<EvalJob>, probe: &F) -> BatchOutcome
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        self.evaluate_batch_on(jobs, self.config.workers, probe)
    }

    /// [`evaluate_batch`](EvalPool::evaluate_batch) with an explicit
    /// *virtual* core count for the replayed schedule — the
    /// autoscaler's entry point. Physical parallelism stays at the
    /// configured worker count; only the virtual list schedule (and
    /// hence completion times and makespan) follows `virtual_workers`,
    /// so a capacity change is a pure work-content decision and the
    /// output stays byte-identical at any physical thread count.
    ///
    /// # Panics
    ///
    /// Panics if `virtual_workers` is zero.
    pub fn evaluate_batch_on<F>(
        &self,
        mut jobs: Vec<EvalJob>,
        virtual_workers: usize,
        probe: &F,
    ) -> BatchOutcome
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        assert!(virtual_workers > 0, "need at least one virtual worker");
        let admitted_count = jobs.len().min(self.config.queue_capacity);
        let shed = jobs.split_off(admitted_count);
        let evaluations = self.run_parallel(&jobs, probe);
        let completions = virtual_schedule(&evaluations, virtual_workers);
        let makespan_s = completions.iter().cloned().fold(0.0, f64::max);
        let results = jobs
            .into_iter()
            .zip(evaluations)
            .zip(completions)
            .map(|((job, evaluation), completion_s)| EvalResult {
                job,
                evaluation,
                completion_s,
            })
            .collect();
        BatchOutcome {
            results,
            shed,
            makespan_s,
        }
    }

    /// Runs the probes on `workers` scoped threads; returns evaluations
    /// in job order regardless of which thread ran what.
    fn run_parallel<F>(&self, jobs: &[EvalJob], probe: &F) -> Vec<Evaluation>
    where
        F: Fn(&EvalJob) -> Evaluation + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let threads = self.config.workers.min(jobs.len());
        if threads == 1 {
            return jobs.iter().map(probe).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Evaluation>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let evaluation = probe(job);
                    if let Ok(mut slot) = slots[index].lock() {
                        *slot = Some(evaluation);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or(Evaluation {
                        metrics: Metrics::new(),
                        cost_s: 0.0,
                    })
            })
            .collect()
    }
}

/// Replays the batch on `workers` virtual cores: jobs in id order, each
/// assigned to the earliest-available worker (lowest index on ties).
/// Returns each job's virtual completion time.
fn virtual_schedule(evaluations: &[Evaluation], workers: usize) -> Vec<f64> {
    let mut busy_until = vec![0.0f64; workers.max(1)];
    evaluations
        .iter()
        .map(|evaluation| {
            let worker = busy_until
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            busy_until[worker] += evaluation.cost_s.max(0.0);
            busy_until[worker]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::KnobValue;

    fn job(id: usize) -> EvalJob {
        let mut config = Configuration::new();
        config.set("level", KnobValue::Int(id as i64));
        EvalJob {
            id,
            tenant: id as u64,
            config,
            features: vec![id as f64],
        }
    }

    fn probe(j: &EvalJob) -> Evaluation {
        Evaluation {
            metrics: [("latency".to_string(), 0.01 * (j.id + 1) as f64)]
                .into_iter()
                .collect(),
            cost_s: 1.0,
        }
    }

    #[test]
    fn results_come_back_in_job_order() {
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        let outcome = pool.evaluate_batch((0..37).map(job).collect(), &probe);
        assert_eq!(outcome.results.len(), 37);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.job.id, i);
            assert_eq!(
                r.evaluation.metrics.get("latency"),
                Some(&(0.01 * (i + 1) as f64))
            );
        }
        assert!(outcome.shed.is_empty());
    }

    #[test]
    fn parallel_batches_are_byte_identical() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let four = EvalPool::new(PoolConfig::with_workers(4));
        let a = four.evaluate_batch(jobs.clone(), &probe);
        let b = four.evaluate_batch(jobs, &probe);
        assert_eq!(a, b, "same batch must merge identically across runs");
    }

    #[test]
    fn virtual_makespan_scales_with_workers() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let one = EvalPool::new(PoolConfig::with_workers(1))
            .evaluate_batch(jobs.clone(), &probe)
            .makespan_s;
        let four = EvalPool::new(PoolConfig::with_workers(4))
            .evaluate_batch(jobs, &probe)
            .makespan_s;
        assert!((one - 64.0).abs() < 1e-9);
        assert!(
            (four - 16.0).abs() < 1e-9,
            "64 unit jobs on 4 cores: {four}"
        );
    }

    #[test]
    fn admission_control_sheds_the_tail() {
        let pool = EvalPool::new(PoolConfig {
            workers: 2,
            queue_capacity: 10,
        });
        let outcome = pool.evaluate_batch((0..15).map(job).collect(), &probe);
        assert_eq!(outcome.results.len(), 10);
        assert_eq!(outcome.shed.len(), 5);
        assert_eq!(outcome.shed[0].id, 10, "shed jobs are the batch tail");
    }

    #[test]
    fn completion_times_include_queue_wait() {
        let pool = EvalPool::new(PoolConfig::with_workers(2));
        let outcome = pool.evaluate_batch((0..4).map(job).collect(), &probe);
        let completions: Vec<f64> = outcome.results.iter().map(|r| r.completion_s).collect();
        // unit costs, 2 virtual cores: jobs 0,1 finish at 1.0; jobs 2,3 at 2.0
        assert_eq!(completions, vec![1.0, 1.0, 2.0, 2.0]);
        assert_eq!(outcome.makespan_s, 2.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        let outcome = pool.evaluate_batch(Vec::new(), &probe);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.makespan_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolConfig::with_workers(0);
    }

    #[test]
    fn virtual_capacity_overrides_schedule_not_parallelism() {
        let jobs: Vec<EvalJob> = (0..64).map(job).collect();
        let pool = EvalPool::new(PoolConfig::with_workers(4));
        // 16 virtual cores on a 4-thread pool: the schedule follows
        // the virtual count
        let scaled = pool.evaluate_batch_on(jobs.clone(), 16, &probe);
        assert!((scaled.makespan_s - 4.0).abs() < 1e-9);
        // and the outcome is byte-identical to a pool physically
        // configured with 16 workers
        let native = EvalPool::new(PoolConfig {
            workers: 16,
            queue_capacity: 256,
        })
        .evaluate_batch(jobs, &probe);
        assert_eq!(scaled, native);
    }

    #[test]
    #[should_panic(expected = "virtual worker")]
    fn zero_virtual_workers_rejected() {
        let pool = EvalPool::new(PoolConfig::with_workers(2));
        let _ = pool.evaluate_batch_on(vec![job(0)], 0, &probe);
    }
}
