//! The deterministic virtual-time request driver.
//!
//! Synthesizes the "thousands of concurrent application instances"
//! workload: every tenant emits Poisson arrivals on its own seeded RNG
//! stream, the merged arrival sequence is chunked into batch windows,
//! and each window is served through the [`TuningService`]. All timing
//! is virtual (arrival clocks, pool makespans), so a run is a pure
//! function of its seed: byte-identical however many worker threads the
//! pool really uses.

use crate::service::{Evaluator, TuningRequest, TuningService};
use crate::store::TenantId;
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::manager::AppManager;
use antarex_tuner::{Configuration, KnobValue, KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload shape of one driver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Concurrent tenant sessions.
    pub tenants: usize,
    /// Distinct workload archetypes shared among tenants (tenant `i`
    /// gets archetype `i % archetypes`) — the repeated-tenant structure
    /// that makes cross-tenant memoization pay.
    pub archetypes: usize,
    /// Virtual duration of the run, seconds.
    pub duration_s: f64,
    /// Mean request rate per tenant, Hz.
    pub rate_per_tenant_hz: f64,
    /// Requests arriving within one window are served as one batch.
    pub batch_window_s: f64,
    /// Master seed; tenant streams derive from it.
    pub seed: u64,
}

impl DriverConfig {
    /// A small smoke-test workload.
    pub fn smoke(seed: u64) -> Self {
        DriverConfig {
            tenants: 8,
            archetypes: 3,
            duration_s: 60.0,
            rate_per_tenant_hz: 0.2,
            batch_window_s: 5.0,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(self.archetypes > 0, "need at least one archetype");
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(self.rate_per_tenant_hz > 0.0, "rate must be positive");
        assert!(self.batch_window_s > 0.0, "window must be positive");
    }
}

/// Aggregate outcome of one driven run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveStats {
    /// Requests generated.
    pub requests: usize,
    /// Requests answered with a configuration.
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests rejected for other reasons (infeasible SLA, ...).
    pub rejected: usize,
    /// Requests dropped by faults: worker crashes, missed deadlines,
    /// and open circuits.
    pub failed: usize,
    /// Answers that came from the design-point cache.
    pub cache_hits: usize,
    /// Probes the pool actually ran.
    pub evaluated: usize,
    /// Failed probe attempts re-dispatched with backoff.
    pub retries: u64,
    /// Hedge duplicates dispatched against stragglers.
    pub hedges: u64,
    /// Design points quarantined after failed or corrupted evaluation.
    pub quarantined: u64,
    /// Total virtual busy time of the pool (sum of batch makespans).
    pub busy_s: f64,
    /// Mean virtual service latency of served requests, seconds.
    pub mean_latency_s: f64,
    /// 95th-percentile virtual service latency, seconds.
    pub p95_latency_s: f64,
}

impl DriveStats {
    /// Served requests per second of pool busy time — the batched-
    /// evaluation throughput (infinite when everything was cached;
    /// reported as served count then).
    pub fn throughput_rps(&self) -> f64 {
        if self.busy_s > 0.0 {
            self.served as f64 / self.busy_s
        } else {
            self.served as f64
        }
    }

    /// Cache hit fraction among served requests.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.served > 0 {
            self.cache_hits as f64 / self.served as f64
        } else {
            0.0
        }
    }

    /// Goodput: fraction of generated requests answered with a
    /// configuration — the availability figure the chaos experiment
    /// compares across hardening profiles.
    pub fn goodput(&self) -> f64 {
        if self.requests > 0 {
            self.served as f64 / self.requests as f64
        } else {
            0.0
        }
    }
}

/// Workload features of archetype `index`: time of day cycling through
/// night / morning rush / noon / evening rush, and an OD spread.
pub fn archetype_features(index: usize) -> Vec<f64> {
    let slots = [
        (3.0 * 3600.0, 0.4),
        (8.0 * 3600.0, 1.0),
        (12.0 * 3600.0, 0.6),
        (18.0 * 3600.0, 0.8),
    ];
    let (time_of_day_s, spread) = slots[index % slots.len()];
    // later archetype generations shift the clock slightly so more
    // than four archetypes stay distinct
    let generation = (index / slots.len()) as f64;
    vec![time_of_day_s + 300.0 * generation, spread]
}

/// The navigation quality knob's design-time knowledge base: optimistic
/// estimates the service corrects through online learning.
pub fn nav_knowledge() -> KnowledgeBase {
    [1i64, 2, 4, 8]
        .into_iter()
        .map(|k| {
            let mut config = Configuration::new();
            config.set("alternatives", KnobValue::Int(k));
            OperatingPoint::new(
                config,
                [
                    ("latency".to_string(), 0.08 * k as f64),
                    ("quality".to_string(), 1.0 + (k as f64).ln() * 0.05),
                    ("power".to_string(), 5.0 + 2.0 * k as f64),
                ],
            )
        })
        .collect()
}

/// A per-tenant runtime manager over [`nav_knowledge`] with the
/// standard navigation SLA (latency ≤ `sla_s`, maximize quality).
pub fn nav_manager(sla_s: f64) -> AppManager {
    let mut manager = AppManager::new(nav_knowledge(), Objective::maximize("quality"));
    manager.add_constraint(Constraint::at_most("latency", sla_s));
    manager
}

/// Registers `config.tenants` navigation tenants on the service, each
/// with its archetype's workload features.
pub fn register_nav_tenants<E: Evaluator>(
    service: &TuningService<E>,
    config: &DriverConfig,
    sla_s: f64,
) {
    for tenant in 0..config.tenants as TenantId {
        let features = archetype_features(tenant as usize % config.archetypes);
        // tenants re-registered across runs are a caller bug; the driver
        // itself only ever registers once
        let _ = service.register_tenant(tenant, nav_manager(sla_s), features);
    }
}

/// Generates the merged arrival sequence: per-tenant Poisson streams,
/// sorted by (time, tenant) — a total order independent of map or
/// thread iteration.
pub fn arrivals(config: &DriverConfig) -> Vec<TuningRequest> {
    config.validate();
    let mut events: Vec<TuningRequest> = Vec::new();
    for tenant in 0..config.tenants as TenantId {
        let mut rng = StdRng::seed_from_u64(crate::store::mix64(
            config.seed ^ tenant.wrapping_mul(0x517c_c1b7_2722_0a95),
        ));
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / config.rate_per_tenant_hz;
            if t >= config.duration_s {
                break;
            }
            events.push(TuningRequest {
                tenant,
                arrival_s: t,
            });
        }
    }
    events.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });
    events
}

/// Burst shape of a Markov-modulated Poisson arrival stream: each
/// tenant flips between a calm phase (the configured base rate) and an
/// on phase running `on_rate_multiplier` times hotter, with
/// exponentially distributed phase dwells. This is the adversarial
/// overload workload the admission-control experiment drives: bursts
/// are correlated in time, so peak demand far exceeds the mean rate a
/// capacity plan would see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstProfile {
    /// Rate multiplier while a tenant's burst is on (≥ 1).
    pub on_rate_multiplier: f64,
    /// Mean duration of an on phase, seconds.
    pub mean_on_s: f64,
    /// Mean duration of a calm phase, seconds.
    pub mean_off_s: f64,
}

impl BurstProfile {
    /// An aggressive profile: 20× bursts lasting ~10 s every ~30 s.
    pub fn aggressive() -> Self {
        BurstProfile {
            on_rate_multiplier: 20.0,
            mean_on_s: 10.0,
            mean_off_s: 30.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.on_rate_multiplier >= 1.0,
            "burst multiplier must be at least 1"
        );
        assert!(self.mean_on_s > 0.0, "on dwell must be positive");
        assert!(self.mean_off_s > 0.0, "off dwell must be positive");
    }
}

/// Generates a bursty (Markov-modulated Poisson) arrival sequence:
/// every tenant alternates calm and on phases per its own seeded RNG
/// stream, emitting Poisson arrivals at the phase's rate. Sorted by
/// (time, tenant) like [`arrivals`]; a distinct stream salt keeps the
/// bursty workload decorrelated from the plain one at the same seed.
pub fn bursty_arrivals(config: &DriverConfig, profile: &BurstProfile) -> Vec<TuningRequest> {
    config.validate();
    profile.validate();
    let mut events: Vec<TuningRequest> = Vec::new();
    for tenant in 0..config.tenants as TenantId {
        let mut rng = StdRng::seed_from_u64(crate::store::mix64(
            config.seed ^ tenant.wrapping_mul(0x517c_c1b7_2722_0a95) ^ 0x00B0_4575_EAD0_u64,
        ));
        let mut t = 0.0;
        let mut on = false;
        while t < config.duration_s {
            let (rate, mean_dwell_s) = if on {
                (
                    config.rate_per_tenant_hz * profile.on_rate_multiplier,
                    profile.mean_on_s,
                )
            } else {
                (config.rate_per_tenant_hz, profile.mean_off_s)
            };
            let u: f64 = rng.gen_range(0.0..1.0);
            let phase_end_s = (t - (1.0 - u).ln() * mean_dwell_s).min(config.duration_s);
            let mut s = t;
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                s += -(1.0 - u).ln() / rate;
                if s >= phase_end_s {
                    break;
                }
                events.push(TuningRequest {
                    tenant,
                    arrival_s: s,
                });
            }
            t = phase_end_s;
            on = !on;
        }
    }
    events.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });
    events
}

/// Snapshot of the serving counters a drive derives its stats from.
fn counter_snapshot<E: Evaluator>(service: &TuningService<E>) -> [u64; 10] {
    let obs = service.obs();
    [
        obs.requests.get(),
        obs.served.get(),
        obs.shed.get(),
        obs.rejected.get(),
        obs.failed.get(),
        obs.cache_hit_responses.get(),
        obs.evaluated.get(),
        obs.retries.get(),
        obs.hedges.get(),
        obs.cache_quarantined.get(),
    ]
}

/// Drives the service with the configured workload: arrivals are
/// chunked into batch windows and served window by window.
///
/// Counts come from the service's metrics registry — the drive loop
/// keeps no parallel tallies, so the run's stats and the exposition can
/// never drift apart. Counter deltas are taken across the run, making
/// the stats correct even on a service that already served traffic.
pub fn drive<E: Evaluator>(service: &TuningService<E>, config: &DriverConfig) -> DriveStats {
    let events = arrivals(config);
    let base = counter_snapshot(service);
    let mut busy_s = 0.0;
    let mut latencies: Vec<f64> = Vec::new();
    let mut start = 0;
    let mut window_end = config.batch_window_s;
    while start < events.len() {
        let end = events[start..]
            .iter()
            .position(|e| e.arrival_s >= window_end)
            .map(|offset| start + offset)
            .unwrap_or(events.len());
        if end == start {
            window_end += config.batch_window_s;
            continue;
        }
        let report = service.serve_batch(&events[start..end]);
        busy_s += report.makespan_s;
        for answer in report.responses.iter().flatten() {
            latencies.push(answer.latency_s);
        }
        start = end;
    }
    let now = counter_snapshot(service);
    let delta = |i: usize| now[i] - base[i];
    let mut stats = DriveStats {
        requests: delta(0) as usize,
        served: delta(1) as usize,
        shed: delta(2) as usize,
        rejected: delta(3) as usize,
        failed: delta(4) as usize,
        cache_hits: delta(5) as usize,
        evaluated: delta(6) as usize,
        retries: delta(7),
        hedges: delta(8),
        quarantined: delta(9),
        busy_s,
        mean_latency_s: 0.0,
        p95_latency_s: 0.0,
    };
    if !latencies.is_empty() {
        stats.mean_latency_s = latencies.iter().sum::<f64>() / latencies.len() as f64;
        latencies.sort_by(f64::total_cmp);
        let p95 = ((latencies.len() as f64 * 0.95).ceil() as usize).clamp(1, latencies.len()) - 1;
        stats.p95_latency_s = latencies[p95];
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nav::NavEvaluator;
    use crate::pool::PoolConfig;
    use crate::service::ServiceConfig;

    fn service(workers: usize) -> TuningService<NavEvaluator> {
        TuningService::new(
            ServiceConfig {
                pool: PoolConfig {
                    workers,
                    queue_capacity: 64,
                },
                ..ServiceConfig::default()
            },
            NavEvaluator::city(900),
        )
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let config = DriverConfig::smoke(5);
        let a = arrivals(&config);
        let b = arrivals(&config);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        let c = arrivals(&DriverConfig::smoke(6));
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn driven_run_is_deterministic_despite_parallelism() {
        let config = DriverConfig::smoke(7);
        let run = |workers: usize| {
            let service = service(workers);
            register_nav_tenants(&service, &config, 0.5);
            drive(&service, &config)
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(a, b, "same seed, same stats — regardless of threads");
        // stats other than pool busy time are worker-count independent
        let serial = run(1);
        assert_eq!(a.served, serial.served);
        assert_eq!(a.cache_hits, serial.cache_hits);
        assert_eq!(a.evaluated, serial.evaluated);
    }

    #[test]
    fn bursty_arrivals_are_sorted_and_deterministic() {
        let config = DriverConfig::smoke(5);
        let profile = BurstProfile::aggressive();
        let a = bursty_arrivals(&config, &profile);
        let b = bursty_arrivals(&config, &profile);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for pair in a.windows(2) {
            assert!(pair[0].arrival_s <= pair[1].arrival_s);
        }
        assert_ne!(
            a,
            bursty_arrivals(&DriverConfig::smoke(6), &profile),
            "different seeds must differ"
        );
        assert_ne!(a, arrivals(&config), "burst stream has its own salt");
    }

    #[test]
    fn bursts_are_overdispersed_versus_poisson() {
        // index of dispersion (variance/mean of per-window counts):
        // ≈1 for a plain Poisson stream, well above 1 for correlated
        // bursts at the same base rate
        let dispersion = |events: &[TuningRequest], duration_s: f64| {
            let window_s = 5.0;
            let windows = (duration_s / window_s).ceil() as usize;
            let mut counts = vec![0.0f64; windows];
            for e in events {
                counts[((e.arrival_s / window_s) as usize).min(windows - 1)] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / windows as f64;
            let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / windows as f64;
            var / mean
        };
        let config = DriverConfig {
            tenants: 16,
            archetypes: 4,
            duration_s: 600.0,
            rate_per_tenant_hz: 0.2,
            batch_window_s: 5.0,
            seed: 23,
        };
        let plain = dispersion(&arrivals(&config), config.duration_s);
        let bursty = dispersion(
            &bursty_arrivals(&config, &BurstProfile::aggressive()),
            config.duration_s,
        );
        assert!(plain < 3.0, "plain Poisson dispersion ≈ 1, got {plain}");
        assert!(
            bursty > 3.0 * plain,
            "bursts must be overdispersed: bursty {bursty} vs plain {plain}"
        );
    }

    #[test]
    #[should_panic(expected = "burst multiplier")]
    fn sub_unit_burst_multiplier_rejected() {
        let _ = bursty_arrivals(
            &DriverConfig::smoke(1),
            &BurstProfile {
                on_rate_multiplier: 0.5,
                ..BurstProfile::aggressive()
            },
        );
    }

    #[test]
    fn repeated_tenants_hit_the_cache() {
        let config = DriverConfig::smoke(11);
        let service = service(2);
        register_nav_tenants(&service, &config, 0.5);
        let stats = drive(&service, &config);
        assert!(stats.served > 0);
        assert!(
            stats.cache_hit_rate() > 0.0,
            "8 tenants over 3 archetypes must reuse design points"
        );
        assert!(stats.evaluated < stats.served);
    }

    #[test]
    fn fault_free_run_reports_clean_chaos_counters() {
        let config = DriverConfig::smoke(17);
        let service = service(2);
        register_nav_tenants(&service, &config, 0.5);
        let stats = drive(&service, &config);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.hedges, 0);
        assert_eq!(stats.quarantined, 0);
        assert!((stats.goodput() - stats.served as f64 / stats.requests as f64).abs() < 1e-12);
        assert_eq!(
            stats.served + stats.shed + stats.rejected + stats.failed,
            stats.requests
        );
    }

    #[test]
    fn more_workers_raise_virtual_throughput() {
        let config = DriverConfig {
            tenants: 32,
            archetypes: 8,
            duration_s: 120.0,
            rate_per_tenant_hz: 0.5,
            batch_window_s: 10.0,
            seed: 13,
        };
        let run = |workers: usize| {
            let service = service(workers);
            register_nav_tenants(&service, &config, 0.5);
            drive(&service, &config)
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.throughput_rps() >= 2.0 * one.throughput_rps(),
            "4 workers {} req/s vs 1 worker {} req/s",
            four.throughput_rps(),
            one.throughput_rps()
        );
    }
}
