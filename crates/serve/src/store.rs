//! The sharded session store.
//!
//! One `AppManager` per tenant, hash-sharded over independently locked
//! shards so lookups and updates from many serving threads contend only
//! within a shard, never globally. Shards hold `BTreeMap`s and the shard
//! index is a pure function of the tenant id, so every whole-store
//! iteration (`tenants`, `fold`) visits sessions in the same order on
//! every run — the determinism the service's reports rely on.

use crate::error::ServeError;
use antarex_tuner::manager::AppManager;
use antarex_tuner::Configuration;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Tenant identifier: one concurrent application instance.
pub type TenantId = u64;

/// Workload class of a tenant, used to pick scheduler policy and to
/// attribute scheduler metrics. Classes are coarse: they describe the
/// *shape* of the tenant's probe costs, not its identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TenantClass {
    /// No declared shape; scheduled with the pool default policy.
    #[default]
    Generic,
    /// Navigation planning (use case b): near-uniform probe costs.
    Nav,
    /// Drug-discovery docking (use case a): heavy-tailed probe costs
    /// following the `atoms × pocket_spheres × poses` distribution.
    Docking,
}

impl TenantClass {
    /// Number of classes, for fixed-size per-class tables.
    pub const COUNT: usize = 3;

    /// Dense index for per-class tables.
    pub fn index(self) -> usize {
        match self {
            TenantClass::Generic => 0,
            TenantClass::Nav => 1,
            TenantClass::Docking => 2,
        }
    }

    /// Stable lowercase label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::Generic => "generic",
            TenantClass::Nav => "nav",
            TenantClass::Docking => "docking",
        }
    }

    /// All classes in index order.
    pub fn all() -> [TenantClass; TenantClass::COUNT] {
        [TenantClass::Generic, TenantClass::Nav, TenantClass::Docking]
    }
}

/// Per-tenant session state: the tenant's runtime autotuner plus the
/// bookkeeping the service layer needs around it.
///
/// `Clone` so the journal's snapshot/recovery machinery can capture the
/// full session state at a checkpoint boundary.
#[derive(Debug, Clone)]
pub struct Session {
    /// The tenant's mARGOt-style runtime manager (knowledge base, SLA
    /// constraints, online learning).
    pub manager: AppManager,
    /// Workload features of this tenant (input size, time of day, ...),
    /// part of the design-point cache key.
    pub features: Vec<f64>,
    /// Requests answered for this tenant.
    pub requests: u64,
    /// Requests rejected (shed or infeasible).
    pub rejected: u64,
    /// Estimated power demand of the tenant's current operating point,
    /// watts — what the cluster-level power capper consumes.
    pub power_demand_w: f64,
    /// The configuration most recently deployed for this tenant.
    pub last_config: Option<Configuration>,
    /// Workload class: which scheduler policy and metric bucket the
    /// tenant's probes belong to.
    pub class: TenantClass,
}

impl Session {
    /// Creates a [`TenantClass::Generic`] session around a manager with
    /// the given workload features.
    pub fn new(manager: AppManager, features: Vec<f64>) -> Self {
        Session::classed(manager, features, TenantClass::Generic)
    }

    /// Creates a session with an explicit workload class.
    pub fn classed(manager: AppManager, features: Vec<f64>, class: TenantClass) -> Self {
        Session {
            manager,
            features,
            requests: 0,
            rejected: 0,
            power_demand_w: 0.0,
            last_config: None,
            class,
        }
    }
}

type Shard = BTreeMap<TenantId, Session>;

/// SplitMix64 finalizer: a fixed, platform-independent mix so the
/// shard of a tenant never depends on hasher randomization.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping 64-bit keys onto shards.
///
/// Each shard owns `vnodes` pseudo-random points on a 64-bit ring; a
/// key belongs to the shard owning the first point at or after the
/// key's hash (wrapping). Compared to `hash % shards`, growing or
/// shrinking the shard count moves only ~`1/shards` of the keys — the
/// property that lets a resharded store (or a scaled service tier)
/// keep almost every tenant's placement, instead of reshuffling nearly
/// all of them. Ring points come from the fixed `mix64` finalizer,
/// so placement is platform-independent and identical on every run.
///
/// # Examples
///
/// ```
/// use antarex_serve::store::ShardRing;
///
/// let ring = ShardRing::new(8, ShardRing::DEFAULT_VNODES);
/// let shard = ring.shard_of(42);
/// assert!(shard < 8);
/// assert_eq!(shard, ring.shard_of(42), "placement is stable");
/// ```
#[derive(Debug, Clone)]
pub struct ShardRing {
    /// `(ring position, shard)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl ShardRing {
    /// Default virtual nodes per shard: enough that per-shard load
    /// imbalance stays small without bloating the ring.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds a ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one virtual node");
        // the salt keeps vnode points out of the key-hash image:
        // without it, point(shard 0, vnode v) == mix64(v), so every
        // small key would land exactly on its own point — all on
        // shard 0
        const RING_SALT: u64 = 0xC0F5_EE1D_0B5E_55ED;
        let mut points: Vec<(u64, usize)> = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let point = mix64(RING_SALT ^ (((shard as u64) << 32) | vnode as u64));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        // a hash collision between two shards' points would make
        // ownership order-dependent: keep the lowest shard, always
        points.dedup_by_key(|p| p.0);
        ShardRing { points, shards }
    }

    /// The shard count the ring was built for.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after
    /// `mix64(key)`, wrapping past the top of the ring.
    pub fn shard_of(&self, key: u64) -> usize {
        let hash = mix64(key);
        let index = self.points.partition_point(|&(point, _)| point < hash);
        let index = if index == self.points.len() { 0 } else { index };
        self.points[index].1
    }
}

/// Hash-sharded map of tenant sessions.
///
/// # Examples
///
/// ```
/// use antarex_serve::store::{Session, SessionStore};
/// use antarex_tuner::goal::Objective;
/// use antarex_tuner::{AppManager, KnowledgeBase};
///
/// let store = SessionStore::new(8);
/// let manager = AppManager::new(KnowledgeBase::new(), Objective::minimize("latency"));
/// store.insert(42, Session::new(manager, vec![1.0])).unwrap();
/// assert_eq!(store.len(), 1);
/// let requests = store.with(42, |s| {
///     s.requests += 1;
///     s.requests
/// }).unwrap();
/// assert_eq!(requests, 1);
/// ```
#[derive(Debug)]
pub struct SessionStore {
    shards: Vec<Mutex<Shard>>,
    ring: ShardRing,
}

impl SessionStore {
    /// Creates a store with the given shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "store needs at least one shard");
        SessionStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            ring: ShardRing::new(shards, ShardRing::DEFAULT_VNODES),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, tenant: TenantId) -> usize {
        self.ring.shard_of(tenant)
    }

    fn lock(&self, index: usize) -> std::sync::MutexGuard<'_, Shard> {
        // a poisoned shard means a panic under another lock holder;
        // the data itself is still structurally sound, so recover
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a new tenant session.
    pub fn insert(&self, tenant: TenantId, session: Session) -> Result<(), ServeError> {
        let mut shard = self.lock(self.shard_of(tenant));
        if shard.contains_key(&tenant) {
            return Err(ServeError::TenantExists(tenant));
        }
        shard.insert(tenant, session);
        Ok(())
    }

    /// Removes a tenant session, returning it if present.
    pub fn remove(&self, tenant: TenantId) -> Option<Session> {
        self.lock(self.shard_of(tenant)).remove(&tenant)
    }

    /// Runs `f` on the tenant's session under the shard lock.
    pub fn with<R>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut Session) -> R,
    ) -> Result<R, ServeError> {
        let mut shard = self.lock(self.shard_of(tenant));
        match shard.get_mut(&tenant) {
            Some(session) => Ok(f(session)),
            None => Err(ServeError::UnknownTenant(tenant)),
        }
    }

    /// Total sessions across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Returns `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every tenant id, sorted — a deterministic iteration order for
    /// reports and aggregate control decisions.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut out: Vec<TenantId> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.lock(i).keys().copied());
        }
        out.sort_unstable();
        out
    }

    /// Clones every session in sorted-tenant order — the atomic dump
    /// the journal's snapshot machinery persists.
    pub fn dump(&self) -> Vec<(TenantId, Session)> {
        self.fold(Vec::new(), |mut acc, tenant, session| {
            acc.push((tenant, session.clone()));
            acc
        })
    }

    /// Rebuilds a store from a snapshot dump (crash recovery). The
    /// journal suffix is replayed on top by the caller — see
    /// [`crate::journal::replay`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn recover(shards: usize, sessions: Vec<(TenantId, Session)>) -> Self {
        let store = SessionStore::new(shards);
        for (tenant, session) in sessions {
            let _ = store.insert(tenant, session);
        }
        store
    }

    /// Folds `f` over every session in sorted-tenant order (shard by
    /// shard internally, then merged deterministically).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, TenantId, &Session) -> A) -> A {
        let mut entries: Vec<(TenantId, usize)> = Vec::new();
        for i in 0..self.shards.len() {
            entries.extend(self.lock(i).keys().map(|&t| (t, i)));
        }
        entries.sort_unstable();
        let mut acc = init;
        for (tenant, shard_index) in entries {
            let shard = self.lock(shard_index);
            if let Some(session) = shard.get(&tenant) {
                acc = f(acc, tenant, session);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::goal::Objective;
    use antarex_tuner::KnowledgeBase;

    fn session() -> Session {
        Session::new(
            AppManager::new(KnowledgeBase::new(), Objective::minimize("latency")),
            vec![0.5],
        )
    }

    #[test]
    fn insert_lookup_remove() {
        let store = SessionStore::new(4);
        store.insert(1, session()).unwrap();
        store.insert(2, session()).unwrap();
        assert_eq!(store.insert(1, session()), Err(ServeError::TenantExists(1)));
        assert_eq!(store.len(), 2);
        assert_eq!(store.tenants(), vec![1, 2]);
        assert_eq!(
            store.with(3, |_| ()).unwrap_err(),
            ServeError::UnknownTenant(3)
        );
        assert!(store.remove(1).is_some());
        assert!(store.remove(1).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sessions_spread_across_shards() {
        let store = SessionStore::new(8);
        for t in 0..64 {
            store.insert(t, session()).unwrap();
        }
        let occupied = (0..8)
            .filter(|&i| {
                store.shards[i]
                    .lock()
                    .map(|s| !s.is_empty())
                    .unwrap_or(false)
            })
            .count();
        assert!(occupied >= 6, "64 tenants landed in only {occupied} shards");
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn fold_visits_in_sorted_order() {
        let store = SessionStore::new(3);
        for t in [9, 2, 17, 4] {
            store.insert(t, session()).unwrap();
        }
        let order = store.fold(Vec::new(), |mut acc, t, _| {
            acc.push(t);
            acc
        });
        assert_eq!(order, vec![2, 4, 9, 17]);
    }

    #[test]
    fn concurrent_updates_are_all_counted() {
        let store = SessionStore::new(8);
        for t in 0..32 {
            store.insert(t, session()).unwrap();
        }
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for round in 0..100 {
                        let tenant = (worker * 7 + round) % 32;
                        store.with(tenant, |s| s.requests += 1).unwrap();
                    }
                });
            }
        });
        let total = store.fold(0u64, |acc, _, s| acc + s.requests);
        assert_eq!(total, 400);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = SessionStore::new(0);
    }

    #[test]
    fn ring_growth_moves_few_keys() {
        let before = ShardRing::new(16, ShardRing::DEFAULT_VNODES);
        let after = ShardRing::new(17, ShardRing::DEFAULT_VNODES);
        let keys = 10_000u64;
        let ring_moved = (0..keys)
            .filter(|&k| before.shard_of(k) != after.shard_of(k))
            .count();
        let modulo_moved = (0..keys)
            .filter(|&k| mix64(k) % 16 != mix64(k) % 17)
            .count();
        // the ideal move fraction is 1/17 ≈ 5.9%; allow slack for
        // vnode imbalance but demand far less churn than modulo's ~94%
        assert!(
            ring_moved < (keys as usize) * 15 / 100,
            "ring moved {ring_moved} of {keys} keys"
        );
        assert!(
            ring_moved * 4 < modulo_moved,
            "ring churn {ring_moved} must beat modulo churn {modulo_moved}"
        );
    }

    #[test]
    fn ring_spreads_keys_evenly_enough() {
        let ring = ShardRing::new(8, ShardRing::DEFAULT_VNODES);
        let mut counts = [0usize; 8];
        for key in 0..8_000u64 {
            counts[ring.shard_of(key)] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0, "every shard must own keys: {counts:?}");
        assert!(max < 4 * min, "vnode imbalance out of bounds: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one virtual node")]
    fn ring_rejects_zero_vnodes() {
        let _ = ShardRing::new(4, 0);
    }

    #[test]
    fn dump_and_recover_round_trip() {
        let store = SessionStore::new(4);
        for t in [5, 1, 9] {
            store.insert(t, session()).unwrap();
        }
        store.with(9, |s| s.requests = 42).unwrap();
        let dump = store.dump();
        assert_eq!(
            dump.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 5, 9],
            "dump is sorted"
        );
        let recovered = SessionStore::recover(4, dump);
        assert_eq!(recovered.tenants(), store.tenants());
        assert_eq!(recovered.with(9, |s| s.requests).unwrap(), 42);
    }
}
