//! The service's observability wiring: every serving-path metric,
//! span, and SLO check goes through one [`ServeObs`] plane.
//!
//! Counter handles registered here are handed to the modules that own
//! the events — the design-point cache, the breaker bank — so there is
//! exactly one cell per fact; the exposition and the module accessors
//! are two views of it. The span model records **work content** on
//! virtual timestamps (a probe's cost, a cache lookup's nominal cost),
//! never queue placement, so traces are byte-identical at any worker
//! count; queueing shows up only in the `Timing`-scoped latency and
//! makespan histograms.

use crate::store::TenantClass;
use antarex_obs::{Counter, Gauge, Histogram, ObsPlane, Scope};
use antarex_rtrm::powercap::PowercapObs;

/// Nominal virtual width of a `select` span: PR 4's measured indexed
/// feasibility-select cost (26 ns). Purely a trace annotation — it
/// never feeds back into any serving metric.
pub const SELECT_SPAN_S: f64 = 26e-9;

/// Nominal virtual width of a `cache_probe` span.
pub const CACHE_PROBE_SPAN_S: f64 = 40e-9;

/// Nominal virtual width of a `learn` (observe feedback) span.
pub const LEARN_SPAN_S: f64 = 50e-9;

/// Nominal virtual width of an `adapt` round span.
pub const ADAPT_SPAN_S: f64 = 100e-9;

/// Default per-tenant latency SLO threshold (virtual seconds) — the
/// navigation workload's standard 0.5 s answer budget.
pub const DEFAULT_SLO_LATENCY_S: f64 = 0.5;

/// Default per-request energy budget (joules of attributed facility
/// energy). Chosen well above a typical cached answer and around the
/// cost of a heavyweight fresh probe, so burn only accumulates on
/// genuinely expensive requests.
pub const DEFAULT_SLO_ENERGY_J: f64 = 10.0;

/// Default SLO target good fraction (99.9%).
pub const DEFAULT_SLO_TARGET: f64 = 0.999;

/// Default span-ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// The serving stack's observability plane plus every pre-registered
/// instrument handle the hot path touches. Handles are shared atomics:
/// incrementing one here is the same cell the exposition reads.
#[derive(Debug)]
pub struct ServeObs {
    pub(crate) plane: ObsPlane,
    pub(crate) requests: Counter,
    pub(crate) served: Counter,
    pub(crate) shed: Counter,
    pub(crate) rejected: Counter,
    pub(crate) failed: Counter,
    pub(crate) cache_hit_responses: Counter,
    pub(crate) evaluated: Counter,
    pub(crate) retries: Counter,
    pub(crate) hedges: Counter,
    pub(crate) selects: Counter,
    pub(crate) learns: Counter,
    pub(crate) adapts: Counter,
    pub(crate) breaker_trips: Counter,
    pub(crate) admission_degraded: Counter,
    pub(crate) admission_shed: Counter,
    pub(crate) admission_transitions: Counter,
    pub(crate) scale_events: Counter,
    pub(crate) pool_capacity: Gauge,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) cache_quarantined: Counter,
    pub(crate) powercap: PowercapObs,
    pub(crate) latency: Histogram,
    pub(crate) makespan: Histogram,
    pub(crate) sched_steals: Counter,
    pub(crate) sched_steal_fails: Counter,
    pub(crate) sched_queue_depth: Histogram,
    pub(crate) class_steals: [Counter; TenantClass::COUNT],
    pub(crate) class_makespan: [Histogram; TenantClass::COUNT],
    pub(crate) class_energy: [Histogram; TenantClass::COUNT],
    pub(crate) energy_facility_nj: Counter,
    pub(crate) energy_attributed_nj: Counter,
    pub(crate) energy_idle_nj: Counter,
    pub(crate) energy_windows: Counter,
    pub(crate) energy_slo_overruns: Counter,
    pub(crate) slo_latency_s: f64,
    pub(crate) slo_energy_j: f64,
}

impl ServeObs {
    /// Builds the plane and registers every serving metric.
    ///
    /// All counts are [`Scope::Invariant`] — on the fault-free path
    /// they are pure functions of the workload, independent of the
    /// pool's worker count. The latency and makespan histograms are
    /// [`Scope::Timing`]: they summarize the virtual schedule, which
    /// legitimately depends on how many virtual cores serve it.
    pub fn new(span_capacity: usize, slo_target: f64, slo_latency_s: f64) -> Self {
        let plane = ObsPlane::new(span_capacity, slo_target);
        let reg = &plane.registry;
        let inv = Scope::Invariant;
        ServeObs {
            requests: reg.counter("serve_requests_total", inv),
            served: reg.counter("serve_served_total", inv),
            shed: reg.counter("serve_shed_total", inv),
            rejected: reg.counter("serve_rejected_total", inv),
            failed: reg.counter("serve_failed_total", inv),
            cache_hit_responses: reg.counter("serve_cache_hit_responses_total", inv),
            evaluated: reg.counter("serve_evaluated_total", inv),
            retries: reg.counter("serve_retries_total", inv),
            hedges: reg.counter("serve_hedges_total", inv),
            selects: reg.counter("serve_selects_total", inv),
            learns: reg.counter("serve_learns_total", inv),
            adapts: reg.counter("serve_adapts_total", inv),
            breaker_trips: reg.counter("serve_breaker_trips_total", inv),
            // front-door decisions key off work content and virtual
            // time alone, so they are worker-count invariant too
            admission_degraded: reg.counter("serve_admission_degraded_total", inv),
            admission_shed: reg.counter("serve_admission_shed_total", inv),
            admission_transitions: reg.counter("serve_admission_transitions_total", inv),
            scale_events: reg.counter("serve_scale_events_total", inv),
            pool_capacity: reg.gauge("serve_pool_capacity_workers", inv),
            cache_hits: reg.counter("serve_cache_hits_total", inv),
            cache_misses: reg.counter("serve_cache_misses_total", inv),
            cache_quarantined: reg.counter("serve_cache_quarantined_total", inv),
            powercap: PowercapObs::register(reg),
            latency: reg.histogram("serve_latency_seconds", Scope::Timing),
            makespan: reg.histogram("serve_makespan_seconds", Scope::Timing),
            // scheduler metrics summarize the virtual schedule like the
            // makespan does, so they share its Timing scope
            sched_steals: reg.counter("serve_sched_steals_total", Scope::Timing),
            sched_steal_fails: reg.counter("serve_sched_steal_fails_total", Scope::Timing),
            sched_queue_depth: reg.histogram("serve_sched_queue_depth", Scope::Timing),
            class_steals: TenantClass::all().map(|class| {
                reg.counter(
                    match class {
                        TenantClass::Generic => "serve_sched_steals_generic_total",
                        TenantClass::Nav => "serve_sched_steals_nav_total",
                        TenantClass::Docking => "serve_sched_steals_docking_total",
                    },
                    Scope::Timing,
                )
            }),
            class_makespan: TenantClass::all().map(|class| {
                reg.histogram(
                    match class {
                        TenantClass::Generic => "serve_class_makespan_seconds_generic",
                        TenantClass::Nav => "serve_class_makespan_seconds_nav",
                        TenantClass::Docking => "serve_class_makespan_seconds_docking",
                    },
                    Scope::Timing,
                )
            }),
            // attributed energy is pure work content (probe joules plus
            // a demand-weighted overhead share) — worker-count invariant
            class_energy: TenantClass::all().map(|class| {
                reg.histogram(
                    match class {
                        TenantClass::Generic => "serve_class_energy_joules_generic",
                        TenantClass::Nav => "serve_class_energy_joules_nav",
                        TenantClass::Docking => "serve_class_energy_joules_docking",
                    },
                    inv,
                )
            }),
            energy_facility_nj: reg.counter("serve_energy_facility_nj_total", inv),
            energy_attributed_nj: reg.counter("serve_energy_attributed_nj_total", inv),
            energy_idle_nj: reg.counter("serve_energy_idle_nj_total", inv),
            energy_windows: reg.counter("serve_energy_windows_total", inv),
            energy_slo_overruns: reg.counter("serve_energy_slo_overruns_total", inv),
            slo_latency_s,
            slo_energy_j: DEFAULT_SLO_ENERGY_J,
            plane,
        }
    }

    /// The underlying plane (registry + tracer + SLO bank).
    pub fn plane(&self) -> &ObsPlane {
        &self.plane
    }

    /// Full exposition: every metric plus SLO burn rows.
    pub fn exposition(&self) -> String {
        self.plane.exposition()
    }

    /// Exposition restricted to worker-count-invariant metrics — the
    /// byte-diffable subset of the o1 determinism contract.
    pub fn invariant_exposition(&self) -> String {
        self.plane.invariant_exposition()
    }

    /// Folded-stack rendering of the retained span ring.
    pub fn folded_trace(&self) -> String {
        self.plane.tracer.folded_text()
    }

    /// The latency SLO threshold checked per served response.
    pub fn slo_latency_s(&self) -> f64 {
        self.slo_latency_s
    }

    /// Admission tier transitions recorded so far.
    pub fn admission_transitions(&self) -> u64 {
        self.admission_transitions.get()
    }

    /// Autoscaler resize events recorded so far.
    pub fn scale_events(&self) -> u64 {
        self.scale_events.get()
    }

    /// Current virtual pool capacity (workers the schedule runs on).
    pub fn pool_capacity(&self) -> f64 {
        self.pool_capacity.get()
    }

    /// Successful steal transactions in the virtual schedules so far.
    pub fn sched_steals(&self) -> u64 {
        self.sched_steals.get()
    }

    /// Failed steal probes (empty peer queues scanned) so far.
    pub fn sched_steal_fails(&self) -> u64 {
        self.sched_steal_fails.get()
    }

    /// Jobs of the given tenant class that migrated cores via a steal.
    pub fn class_steals(&self, class: TenantClass) -> u64 {
        self.class_steals[class.index()].get()
    }

    /// Checks one served response's virtual latency against the
    /// tenant's latency SLO. Returns `true` when the SLO was met —
    /// the admission controller consumes the complement as its
    /// violation signal.
    pub(crate) fn check_latency_slo(&self, tenant: u64, time_s: f64, latency_s: f64) -> bool {
        self.plane
            .slo
            .check_upper(tenant, "latency", self.slo_latency_s, time_s, latency_s)
    }

    /// The per-request attributed-energy budget checked per response.
    pub fn slo_energy_j(&self) -> f64 {
        self.slo_energy_j
    }

    /// Attributed facility energy in the tenant-class histogram for
    /// `class` (p50/p95/p99 feed the Prometheus exposition).
    pub fn class_energy_snapshot(&self, class: TenantClass) -> antarex_obs::HistSnapshot {
        self.class_energy[class.index()].snapshot()
    }

    /// Energy-budget overruns recorded so far. This is the *observed*
    /// admission signal: the front door sees it next to latency burn
    /// but does not yet act on it.
    pub fn energy_slo_overruns(&self) -> u64 {
        self.energy_slo_overruns.get()
    }

    /// Checks one served response's attributed energy against the
    /// per-request energy budget. Burn accrues in the SLO bank under
    /// the `energy` objective — surfaced to the admission tier as an
    /// observed (not yet acting) signal alongside latency burn.
    pub(crate) fn check_energy_slo(&self, tenant: u64, time_s: f64, energy_j: f64) -> bool {
        let ok = self
            .plane
            .slo
            .check_upper(tenant, "energy", self.slo_energy_j, time_s, energy_j);
        if !ok {
            self.energy_slo_overruns.inc();
        }
        ok
    }
}

impl Default for ServeObs {
    fn default() -> Self {
        ServeObs::new(
            DEFAULT_SPAN_CAPACITY,
            DEFAULT_SLO_TARGET,
            DEFAULT_SLO_LATENCY_S,
        )
    }
}
