//! Typed errors of the request-serving path.
//!
//! Everything a caller can hit while a request is in flight is an error
//! value, not a panic: the service stays up when one tenant misbehaves.
//! Construction-time contract violations (zero shards, zero workers)
//! remain documented panics, matching the rest of the workspace.

use crate::store::TenantId;
use antarex_apps::nav::NavError;
use std::fmt;

/// Why the service could not answer a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant was never registered (or was evicted).
    UnknownTenant(TenantId),
    /// A tenant with this id is already registered.
    TenantExists(TenantId),
    /// Admission control shed the request: the evaluation queue was
    /// full when its probe had to be scheduled.
    Shed {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// No operating point satisfies the tenant's SLA constraints; the
    /// caller should renegotiate the SLA or escalate to the RTRM.
    Infeasible(TenantId),
    /// The tenant's knowledge base is empty — nothing to select from.
    EmptyKnowledge(TenantId),
    /// Every evaluation attempt of the probe died with its worker (or
    /// failed its result-integrity check and exhausted the retry
    /// budget). The id names the worker of the last failed attempt.
    WorkerFailed {
        /// Virtual worker that ran the last failed attempt.
        worker: usize,
    },
    /// The probe — including retries and hedges — could not produce a
    /// verified result within the request's deadline budget.
    Deadline,
    /// The tenant's circuit breaker is open: its recent probes failed
    /// consecutively, so the service fails fast instead of letting the
    /// poisoned evaluator consume pool capacity. Retry after the
    /// breaker's cooldown.
    CircuitOpen {
        /// Tenant whose breaker tripped.
        tenant: TenantId,
    },
    /// The admission controller rejected the request: the tenant is
    /// burning its SLO error budget too fast (hard shed), or is in the
    /// degraded tier and demanded a fresh probe the cache could not
    /// answer. Unlike [`ServeError::Shed`] this is *deliberate*
    /// backpressure against this tenant, not global queue overflow —
    /// blind retries would stampede a controller that is telling the
    /// tenant to back off, so it is **not retryable** until the
    /// carried hint elapses.
    AdmissionRejected {
        /// The over-budget tenant.
        tenant: TenantId,
        /// Backpressure hint: earliest sensible retry, milliseconds of
        /// virtual time from the rejection (integer so the error stays
        /// `Eq`).
        retry_after_ms: u64,
    },
    /// A caller-supplied configuration violates a construction
    /// contract (zero workers, zero capacity, zero virtual cores). The
    /// legacy constructors still panic; the `try_` paths surface this
    /// instead so embedding callers can keep the process up.
    InvalidConfig {
        /// The violated contract, stated as the legacy panic message.
        reason: &'static str,
    },
}

impl ServeError {
    /// Is retrying this request (later, or against a healthy worker)
    /// worthwhile? Transient capacity and fault errors are retryable;
    /// contract errors (unknown tenant, infeasible SLA, empty
    /// knowledge) never clear on their own. An admission rejection is
    /// also **not** retryable: the controller is deliberately shedding
    /// this tenant, and an immediate retry (or a hedge) would stampede
    /// the very backpressure protecting its neighbors — honor
    /// [`ServeError::retry_after_ms`] instead.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Shed { .. }
            | ServeError::WorkerFailed { .. }
            | ServeError::Deadline
            | ServeError::CircuitOpen { .. } => true,
            ServeError::UnknownTenant(_)
            | ServeError::TenantExists(_)
            | ServeError::Infeasible(_)
            | ServeError::EmptyKnowledge(_)
            | ServeError::AdmissionRejected { .. }
            | ServeError::InvalidConfig { .. } => false,
        }
    }

    /// The backpressure hint carried by an admission rejection:
    /// milliseconds of virtual time after which a retry becomes
    /// sensible. `None` for every other error.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::AdmissionRejected { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

/// Maps serving-tier failures onto the navigation app's error type, so
/// `try_serve_resilient` can distinguish retryable from terminal
/// failures via [`NavError::is_retryable`].
impl From<ServeError> for NavError {
    fn from(e: ServeError) -> Self {
        NavError::Upstream {
            retryable: e.is_retryable(),
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t} already registered"),
            ServeError::Shed { capacity } => {
                write!(
                    f,
                    "request shed: evaluation queue full (capacity {capacity})"
                )
            }
            ServeError::Infeasible(t) => {
                write!(f, "tenant {t}: no operating point satisfies the SLA")
            }
            ServeError::EmptyKnowledge(t) => {
                write!(f, "tenant {t}: empty knowledge base")
            }
            ServeError::WorkerFailed { worker } => {
                write!(
                    f,
                    "evaluation failed: worker {worker} crashed or corrupted the result"
                )
            }
            ServeError::Deadline => {
                write!(f, "evaluation missed its deadline budget")
            }
            ServeError::CircuitOpen { tenant } => {
                write!(f, "tenant {tenant}: circuit breaker open, failing fast")
            }
            ServeError::AdmissionRejected {
                tenant,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "tenant {tenant}: admission rejected (SLO budget exhausted), \
                     retry after {retry_after_ms} ms"
                )
            }
            ServeError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert_eq!(ServeError::UnknownTenant(7).to_string(), "unknown tenant 7");
        assert!(ServeError::Shed { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::Infeasible(3).to_string().contains("SLA"));
        let boxed: Box<dyn std::error::Error> = Box::new(ServeError::TenantExists(1));
        assert!(boxed.to_string().contains("already registered"));
        assert!(ServeError::WorkerFailed { worker: 2 }
            .to_string()
            .contains("worker 2"));
        assert!(ServeError::Deadline.to_string().contains("deadline"));
        assert!(ServeError::CircuitOpen { tenant: 5 }
            .to_string()
            .contains("breaker open"));
        let rejected = ServeError::AdmissionRejected {
            tenant: 11,
            retry_after_ms: 5000,
        };
        assert!(rejected.to_string().contains("tenant 11"));
        assert!(rejected.to_string().contains("retry after 5000 ms"));
        assert_eq!(
            ServeError::InvalidConfig {
                reason: "pool needs at least one worker"
            }
            .to_string(),
            "invalid configuration: pool needs at least one worker"
        );
    }

    #[test]
    fn retryability_classifier() {
        assert!(ServeError::Shed { capacity: 4 }.is_retryable());
        assert!(ServeError::WorkerFailed { worker: 0 }.is_retryable());
        assert!(ServeError::Deadline.is_retryable());
        assert!(ServeError::CircuitOpen { tenant: 1 }.is_retryable());
        assert!(!ServeError::UnknownTenant(1).is_retryable());
        assert!(!ServeError::TenantExists(1).is_retryable());
        assert!(!ServeError::Infeasible(1).is_retryable());
        assert!(!ServeError::EmptyKnowledge(1).is_retryable());
        assert!(
            !ServeError::AdmissionRejected {
                tenant: 1,
                retry_after_ms: 1000,
            }
            .is_retryable(),
            "a shedding controller must not be retried blind"
        );
        assert!(
            !ServeError::InvalidConfig {
                reason: "need at least one virtual worker"
            }
            .is_retryable(),
            "misconfiguration never clears on its own"
        );
    }

    #[test]
    fn retry_after_hint_surfaces_only_on_admission_rejections() {
        let rejected = ServeError::AdmissionRejected {
            tenant: 3,
            retry_after_ms: 7500,
        };
        assert_eq!(rejected.retry_after_ms(), Some(7500));
        assert_eq!(ServeError::Shed { capacity: 4 }.retry_after_ms(), None);
        assert_eq!(ServeError::CircuitOpen { tenant: 3 }.retry_after_ms(), None);
    }

    /// The stampede guard: a hedged-retry client looping on
    /// `is_retryable` — the exact stop condition of the nav server's
    /// `try_serve_resilient` — must burn exactly ONE attempt against a
    /// shedding tenant, while a transient fault still gets its full
    /// retry budget.
    #[test]
    fn hedged_retries_do_not_stampede_a_shedding_tenant() {
        fn drive_retries(error: ServeError, max_attempts: u32) -> u32 {
            let mut attempts = 0;
            for attempt in 1..=max_attempts {
                attempts = attempt;
                // mirror of `try_serve_resilient`'s loop: stop on a
                // non-retryable error or an exhausted budget
                if !error.is_retryable() || attempt == max_attempts {
                    break;
                }
            }
            attempts
        }
        let shedding = ServeError::AdmissionRejected {
            tenant: 7,
            retry_after_ms: 5000,
        };
        assert_eq!(drive_retries(shedding, 5), 1, "one attempt, then back off");
        assert_eq!(
            drive_retries(ServeError::WorkerFailed { worker: 0 }, 5),
            5,
            "transient faults keep their retry budget"
        );
    }

    #[test]
    fn maps_into_nav_error_preserving_retryability() {
        let transient: NavError = ServeError::WorkerFailed { worker: 3 }.into();
        assert!(transient.is_retryable());
        assert!(transient.to_string().contains("worker 3"));
        let terminal: NavError = ServeError::Infeasible(9).into();
        assert!(!terminal.is_retryable());
        let breaker: NavError = ServeError::CircuitOpen { tenant: 2 }.into();
        assert!(breaker.is_retryable(), "breaker opens clear after cooldown");
        // the mapping is what stops `try_serve_resilient` from
        // stampeding a shedding tenant through the nav retry path
        let shed: NavError = ServeError::AdmissionRejected {
            tenant: 4,
            retry_after_ms: 5000,
        }
        .into();
        assert!(!shed.is_retryable());
        assert!(shed.to_string().contains("retry after 5000 ms"));
    }
}
