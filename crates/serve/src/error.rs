//! Typed errors of the request-serving path.
//!
//! Everything a caller can hit while a request is in flight is an error
//! value, not a panic: the service stays up when one tenant misbehaves.
//! Construction-time contract violations (zero shards, zero workers)
//! remain documented panics, matching the rest of the workspace.

use crate::store::TenantId;
use antarex_apps::nav::NavError;
use std::fmt;

/// Why the service could not answer a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant was never registered (or was evicted).
    UnknownTenant(TenantId),
    /// A tenant with this id is already registered.
    TenantExists(TenantId),
    /// Admission control shed the request: the evaluation queue was
    /// full when its probe had to be scheduled.
    Shed {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// No operating point satisfies the tenant's SLA constraints; the
    /// caller should renegotiate the SLA or escalate to the RTRM.
    Infeasible(TenantId),
    /// The tenant's knowledge base is empty — nothing to select from.
    EmptyKnowledge(TenantId),
    /// Every evaluation attempt of the probe died with its worker (or
    /// failed its result-integrity check and exhausted the retry
    /// budget). The id names the worker of the last failed attempt.
    WorkerFailed {
        /// Virtual worker that ran the last failed attempt.
        worker: usize,
    },
    /// The probe — including retries and hedges — could not produce a
    /// verified result within the request's deadline budget.
    Deadline,
    /// The tenant's circuit breaker is open: its recent probes failed
    /// consecutively, so the service fails fast instead of letting the
    /// poisoned evaluator consume pool capacity. Retry after the
    /// breaker's cooldown.
    CircuitOpen {
        /// Tenant whose breaker tripped.
        tenant: TenantId,
    },
}

impl ServeError {
    /// Is retrying this request (later, or against a healthy worker)
    /// worthwhile? Transient capacity and fault errors are retryable;
    /// contract errors (unknown tenant, infeasible SLA, empty
    /// knowledge) never clear on their own.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Shed { .. }
            | ServeError::WorkerFailed { .. }
            | ServeError::Deadline
            | ServeError::CircuitOpen { .. } => true,
            ServeError::UnknownTenant(_)
            | ServeError::TenantExists(_)
            | ServeError::Infeasible(_)
            | ServeError::EmptyKnowledge(_) => false,
        }
    }
}

/// Maps serving-tier failures onto the navigation app's error type, so
/// `try_serve_resilient` can distinguish retryable from terminal
/// failures via [`NavError::is_retryable`].
impl From<ServeError> for NavError {
    fn from(e: ServeError) -> Self {
        NavError::Upstream {
            retryable: e.is_retryable(),
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t} already registered"),
            ServeError::Shed { capacity } => {
                write!(
                    f,
                    "request shed: evaluation queue full (capacity {capacity})"
                )
            }
            ServeError::Infeasible(t) => {
                write!(f, "tenant {t}: no operating point satisfies the SLA")
            }
            ServeError::EmptyKnowledge(t) => {
                write!(f, "tenant {t}: empty knowledge base")
            }
            ServeError::WorkerFailed { worker } => {
                write!(
                    f,
                    "evaluation failed: worker {worker} crashed or corrupted the result"
                )
            }
            ServeError::Deadline => {
                write!(f, "evaluation missed its deadline budget")
            }
            ServeError::CircuitOpen { tenant } => {
                write!(f, "tenant {tenant}: circuit breaker open, failing fast")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert_eq!(ServeError::UnknownTenant(7).to_string(), "unknown tenant 7");
        assert!(ServeError::Shed { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::Infeasible(3).to_string().contains("SLA"));
        let boxed: Box<dyn std::error::Error> = Box::new(ServeError::TenantExists(1));
        assert!(boxed.to_string().contains("already registered"));
        assert!(ServeError::WorkerFailed { worker: 2 }
            .to_string()
            .contains("worker 2"));
        assert!(ServeError::Deadline.to_string().contains("deadline"));
        assert!(ServeError::CircuitOpen { tenant: 5 }
            .to_string()
            .contains("breaker open"));
    }

    #[test]
    fn retryability_classifier() {
        assert!(ServeError::Shed { capacity: 4 }.is_retryable());
        assert!(ServeError::WorkerFailed { worker: 0 }.is_retryable());
        assert!(ServeError::Deadline.is_retryable());
        assert!(ServeError::CircuitOpen { tenant: 1 }.is_retryable());
        assert!(!ServeError::UnknownTenant(1).is_retryable());
        assert!(!ServeError::TenantExists(1).is_retryable());
        assert!(!ServeError::Infeasible(1).is_retryable());
        assert!(!ServeError::EmptyKnowledge(1).is_retryable());
    }

    #[test]
    fn maps_into_nav_error_preserving_retryability() {
        let transient: NavError = ServeError::WorkerFailed { worker: 3 }.into();
        assert!(transient.is_retryable());
        assert!(transient.to_string().contains("worker 3"));
        let terminal: NavError = ServeError::Infeasible(9).into();
        assert!(!terminal.is_retryable());
        let breaker: NavError = ServeError::CircuitOpen { tenant: 2 }.into();
        assert!(breaker.is_retryable(), "breaker opens clear after cooldown");
    }
}
