//! Typed errors of the request-serving path.
//!
//! Everything a caller can hit while a request is in flight is an error
//! value, not a panic: the service stays up when one tenant misbehaves.
//! Construction-time contract violations (zero shards, zero workers)
//! remain documented panics, matching the rest of the workspace.

use crate::store::TenantId;
use std::fmt;

/// Why the service could not answer a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant was never registered (or was evicted).
    UnknownTenant(TenantId),
    /// A tenant with this id is already registered.
    TenantExists(TenantId),
    /// Admission control shed the request: the evaluation queue was
    /// full when its probe had to be scheduled.
    Shed {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// No operating point satisfies the tenant's SLA constraints; the
    /// caller should renegotiate the SLA or escalate to the RTRM.
    Infeasible(TenantId),
    /// The tenant's knowledge base is empty — nothing to select from.
    EmptyKnowledge(TenantId),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t} already registered"),
            ServeError::Shed { capacity } => {
                write!(
                    f,
                    "request shed: evaluation queue full (capacity {capacity})"
                )
            }
            ServeError::Infeasible(t) => {
                write!(f, "tenant {t}: no operating point satisfies the SLA")
            }
            ServeError::EmptyKnowledge(t) => {
                write!(f, "tenant {t}: empty knowledge base")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        assert_eq!(ServeError::UnknownTenant(7).to_string(), "unknown tenant 7");
        assert!(ServeError::Shed { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::Infeasible(3).to_string().contains("SLA"));
        let boxed: Box<dyn std::error::Error> = Box::new(ServeError::TenantExists(1));
        assert!(boxed.to_string().contains("already registered"));
    }
}
