//! SLO-driven admission control: the *decide → actuate* half of the
//! control loop whose *observe* half is [`antarex_obs::slo`].
//!
//! PR 5 gave every tenant an error-budget burn rate; this module makes
//! the serving tier act on it. Each tenant carries an EWMA-smoothed
//! burn signal, updated once per batch window from that window's
//! latency-SLO checks, and is classified into one of three tiers:
//!
//! * **Admit** — requests flow normally (select → cache → probe);
//! * **Degrade** — graceful degradation: requests are answered from the
//!   design-point cache only. A cache hit serves at lookup cost; a miss
//!   is rejected with
//!   [`ServeError::AdmissionRejected`](crate::ServeError::AdmissionRejected)
//!   instead of enqueueing a fresh probe. A degraded tenant that keeps
//!   *demanding* fresh probes keeps burning budget (each cache-miss
//!   rejection counts as a violation) and escalates to shed; one that
//!   coasts on cached answers recovers.
//! * **Shed** — hard backpressure: requests fail fast with a
//!   `retry_after` hint before touching breakers, sessions, or pool
//!   capacity.
//!
//! Transitions are **hysteretic** (enter thresholds sit well above exit
//! thresholds) and **dwell-gated** (a tenant must sit in a tier for
//! [`AdmissionConfig::min_dwell_s`] of virtual time before moving
//! down, or before a degrade escalates to a shed), so one bad window
//! cannot flap a well-behaved tenant in and out of degradation. All
//! state advances on virtual timestamps through deterministic f64
//! arithmetic in sorted-tenant order, so the controller is bit-exact
//! across runs, worker counts, and crash recovery (its updates are
//! journaled and its full state snapshots).

use crate::store::TenantId;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Which path a tenant's requests take through the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdmissionTier {
    /// Full service: select, cache, fresh probes.
    Admit,
    /// Cache-only answers; fresh-probe demand is rejected.
    Degrade,
    /// Fail fast with a retry-after hint.
    Shed,
}

impl AdmissionTier {
    /// Deterministic label for state reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionTier::Admit => "admit",
            AdmissionTier::Degrade => "degrade",
            AdmissionTier::Shed => "shed",
        }
    }
}

/// Tuning of the admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Target good fraction of the admission burn signal. This is the
    /// *control* target, deliberately coarser than the alerting SLO
    /// target the obs plane exports: with a 0.95 target one violation
    /// in twenty checks burns at exactly 1×, so burn values stay in a
    /// range where tier thresholds separate bursty abusers from
    /// well-behaved tenants caught in one bad window.
    pub target: f64,
    /// EWMA weight of the newest window's burn (in `(0, 1]`).
    pub alpha: f64,
    /// Smoothed burn at or above which an admitted tenant degrades.
    pub degrade_enter: f64,
    /// Smoothed burn at or below which a degraded tenant re-admits
    /// (must sit below `degrade_enter` — that gap is the hysteresis).
    pub degrade_exit: f64,
    /// Smoothed burn at or above which a degraded tenant sheds.
    pub shed_enter: f64,
    /// Smoothed burn at or below which a shed tenant de-escalates to
    /// degrade.
    pub shed_exit: f64,
    /// Minimum virtual time in a tier before de-escalating, and before
    /// a degrade may escalate to a shed.
    pub min_dwell_s: f64,
    /// Base backpressure hint carried by hard sheds, virtual seconds;
    /// scaled up with the tenant's burn severity.
    pub retry_after_s: f64,
}

impl AdmissionConfig {
    /// The hardened profile: 95% control target, half-life-of-one-
    /// window smoothing, degrade at 8× / re-admit at 2×, shed at 14× /
    /// de-escalate at 6×, 4 s dwell, 5 s base retry hint.
    pub fn hardened() -> Self {
        AdmissionConfig {
            target: 0.95,
            alpha: 0.5,
            degrade_enter: 8.0,
            degrade_exit: 2.0,
            shed_enter: 14.0,
            shed_exit: 6.0,
            min_dwell_s: 4.0,
            retry_after_s: 5.0,
        }
    }

    fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(
            self.degrade_exit < self.degrade_enter,
            "degrade thresholds need hysteresis (exit < enter)"
        );
        assert!(
            self.shed_exit < self.shed_enter,
            "shed thresholds need hysteresis (exit < enter)"
        );
        assert!(
            self.degrade_enter <= self.shed_enter,
            "degrade must engage at or before shed"
        );
        assert!(self.min_dwell_s >= 0.0, "dwell must be non-negative");
        assert!(self.retry_after_s > 0.0, "retry hint must be positive");
    }

    /// One window's burn rate: `violation_rate / (1 − target)`, the
    /// same formula as [`antarex_obs::slo`] exports, against this
    /// controller's own target. Zero-sample windows burn nothing.
    fn window_burn(&self, checked: u64, violations: u64) -> f64 {
        if checked == 0 {
            return 0.0;
        }
        let budget = 1.0 - self.target.clamp(0.0, 1.0 - 1e-9);
        (violations as f64 / checked as f64) / budget
    }
}

/// One tenant's admission state — part of the crash-recovery snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantAdmission {
    /// EWMA-smoothed burn rate.
    pub burn: f64,
    /// Current tier.
    pub tier: AdmissionTier,
    /// Virtual time of the last tier transition (or first sighting).
    pub since_s: f64,
}

/// The per-tenant admission controller.
///
/// Interior-mutable like [`crate::breaker::BreakerBank`]: the serving
/// path reads tiers per request and applies one `update` per touched
/// tenant per batch, in sorted order, under one mutex.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    tenants: Mutex<BTreeMap<TenantId, TenantAdmission>>,
}

impl AdmissionController {
    /// A controller with no tenant state; tenants materialize as
    /// admitted on first update.
    ///
    /// # Panics
    ///
    /// Panics when the config is inconsistent (no hysteresis gap,
    /// alpha outside `(0, 1]`, non-positive retry hint).
    pub fn new(config: AdmissionConfig) -> Self {
        config.validate();
        AdmissionController {
            config,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The controller's tuning.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<TenantId, TenantAdmission>> {
        match self.tenants.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The tenant's current tier (admitted when never seen).
    pub fn tier(&self, tenant: TenantId) -> AdmissionTier {
        self.lock()
            .get(&tenant)
            .map(|s| s.tier)
            .unwrap_or(AdmissionTier::Admit)
    }

    /// The tenant's smoothed burn (zero when never seen).
    pub fn burn(&self, tenant: TenantId) -> f64 {
        self.lock().get(&tenant).map(|s| s.burn).unwrap_or(0.0)
    }

    /// Backpressure hint for a hard shed, milliseconds: the base retry
    /// window scaled by how far past the shed threshold the tenant is
    /// burning (clamped at 8×), so heavier abusers are told to stay
    /// away longer. Integer milliseconds keep the hint `Eq`-comparable
    /// in [`crate::ServeError`].
    pub fn retry_after_ms(&self, tenant: TenantId) -> u64 {
        let burn = self.burn(tenant);
        let scale = if self.config.shed_enter > 0.0 {
            (burn / self.config.shed_enter).clamp(1.0, 8.0)
        } else {
            1.0
        };
        (self.config.retry_after_s * scale * 1000.0).round() as u64
    }

    /// Applies one batch window's feedback for a tenant: folds the
    /// window's burn into the EWMA and runs the hysteretic tier
    /// transition at virtual time `now_s`. Returns the new tier when
    /// the tenant transitioned. This exact method is replayed from the
    /// journal, so live execution and recovery are bit-identical.
    pub fn update(
        &self,
        tenant: TenantId,
        now_s: f64,
        checked: u64,
        violations: u64,
    ) -> Option<AdmissionTier> {
        let window = self.config.window_burn(checked, violations);
        let mut tenants = self.lock();
        let state = tenants.entry(tenant).or_insert(TenantAdmission {
            burn: 0.0,
            tier: AdmissionTier::Admit,
            since_s: now_s,
        });
        state.burn = self.config.alpha * window + (1.0 - self.config.alpha) * state.burn;
        let dwelled = now_s - state.since_s >= self.config.min_dwell_s;
        let next = match state.tier {
            // escalation into degrade is immediate: protecting the
            // neighborhood beats giving the abuser one more window
            AdmissionTier::Admit if state.burn >= self.config.degrade_enter => {
                Some(AdmissionTier::Degrade)
            }
            // escalation to shed and every de-escalation are
            // dwell-gated: that is the flap damper
            AdmissionTier::Degrade if state.burn >= self.config.shed_enter && dwelled => {
                Some(AdmissionTier::Shed)
            }
            AdmissionTier::Degrade if state.burn <= self.config.degrade_exit && dwelled => {
                Some(AdmissionTier::Admit)
            }
            AdmissionTier::Shed if state.burn <= self.config.shed_exit && dwelled => {
                Some(AdmissionTier::Degrade)
            }
            _ => None,
        };
        if let Some(tier) = next {
            state.tier = tier;
            state.since_s = now_s;
        }
        next
    }

    /// The highest smoothed burn among *admitted* tenants — the
    /// autoscaler's SLO-pain signal. Degraded and shed tenants are
    /// already being handled by admission; capacity reacts to the pain
    /// of tenants still receiving full service.
    pub fn max_admitted_burn(&self) -> f64 {
        self.lock()
            .values()
            .filter(|s| s.tier == AdmissionTier::Admit)
            .map(|s| s.burn)
            .fold(0.0, f64::max)
    }

    /// How many tenants currently sit in each tier:
    /// `(admit, degrade, shed)`.
    pub fn tier_counts(&self) -> (usize, usize, usize) {
        self.lock()
            .values()
            .fold((0, 0, 0), |(a, d, s), state| match state.tier {
                AdmissionTier::Admit => (a + 1, d, s),
                AdmissionTier::Degrade => (a, d + 1, s),
                AdmissionTier::Shed => (a, d, s + 1),
            })
    }

    /// Every tenant's admission state, sorted by tenant id — the
    /// snapshot the journal persists.
    pub fn snapshot(&self) -> Vec<(TenantId, TenantAdmission)> {
        self.lock().iter().map(|(&t, &s)| (t, s)).collect()
    }

    /// Restores the controller to an exact prior state (crash
    /// recovery).
    pub fn restore(&self, states: &[(TenantId, TenantAdmission)]) {
        let mut tenants = self.lock();
        tenants.clear();
        for &(tenant, state) in states {
            tenants.insert(tenant, state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdmissionController {
        AdmissionController::new(AdmissionConfig::hardened())
    }

    /// Feeds `n` windows of all-violating traffic, 2 s apart.
    fn hammer(c: &AdmissionController, tenant: TenantId, from_s: f64, windows: usize) -> f64 {
        let mut t = from_s;
        for _ in 0..windows {
            c.update(tenant, t, 20, 20);
            t += 2.0;
        }
        t
    }

    #[test]
    fn unseen_tenant_is_admitted_with_zero_burn() {
        let c = controller();
        assert_eq!(c.tier(42), AdmissionTier::Admit);
        assert_eq!(c.burn(42), 0.0);
    }

    #[test]
    fn sustained_violations_degrade_then_shed() {
        let c = controller();
        // window burn = (20/20)/0.05 = 20; EWMA: 10 after one window
        assert_eq!(c.update(5, 0.0, 20, 20), Some(AdmissionTier::Degrade));
        // burn 15 ≥ shed_enter but dwell (0 s) not served yet
        assert_eq!(c.update(5, 2.0, 20, 20), None);
        assert_eq!(c.tier(5), AdmissionTier::Degrade);
        // dwell satisfied at 4 s in tier: escalate
        assert_eq!(c.update(5, 4.0, 20, 20), Some(AdmissionTier::Shed));
    }

    #[test]
    fn one_bad_window_never_sheds_a_tenant() {
        let c = controller();
        c.update(1, 0.0, 20, 20);
        assert_eq!(
            c.tier(1),
            AdmissionTier::Degrade,
            "degradation may be immediate"
        );
        // clean windows afterwards: decay back to admit after dwell
        for t in [2.0, 4.0, 6.0] {
            c.update(1, t, 20, 0);
        }
        assert_eq!(c.tier(1), AdmissionTier::Admit, "recovered: {}", c.burn(1));
    }

    #[test]
    fn shed_tenant_decays_back_through_degrade() {
        let c = controller();
        let t = hammer(&c, 9, 0.0, 4);
        assert_eq!(c.tier(9), AdmissionTier::Shed);
        // zero-sample windows (a fully shed tenant generates no
        // checks): burn halves each window
        let mut now = t;
        for _ in 0..3 {
            c.update(9, now, 0, 0);
            now += 2.0;
        }
        assert_eq!(c.tier(9), AdmissionTier::Degrade, "burn={}", c.burn(9));
        assert!(c.burn(9) <= AdmissionConfig::hardened().shed_exit);
    }

    #[test]
    fn hysteresis_holds_between_exit_and_enter() {
        let c = controller();
        c.update(3, 0.0, 20, 20); // burn 10 → degrade
        assert_eq!(c.tier(3), AdmissionTier::Degrade);
        // settle the burn between degrade_exit (2) and degrade_enter
        // (8): the tier must hold, in either direction, indefinitely
        for w in 0..10 {
            c.update(3, 2.0 + 2.0 * w as f64, 20, 5); // window burn 5
            assert_eq!(c.tier(3), AdmissionTier::Degrade);
        }
        let burn = c.burn(3);
        assert!(burn > 2.0 && burn < 8.0, "burn settled at {burn}");
    }

    #[test]
    fn retry_hint_scales_with_severity_and_is_deterministic() {
        let c = controller();
        assert_eq!(c.retry_after_ms(1), 5000, "base hint at zero burn");
        hammer(&c, 1, 0.0, 8);
        let hot = c.retry_after_ms(1);
        assert!(hot > 5000, "heavier burn, longer hint: {hot}");
        assert!(hot <= 40_000, "hint capped at 8×: {hot}");
        assert_eq!(hot, c.retry_after_ms(1));
    }

    #[test]
    fn zero_sample_window_decays_burn() {
        let c = controller();
        c.update(2, 0.0, 10, 10);
        let before = c.burn(2);
        c.update(2, 2.0, 0, 0);
        assert!((c.burn(2) - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let c = controller();
        hammer(&c, 1, 0.0, 3);
        c.update(2, 0.0, 20, 1);
        let snap = c.snapshot();
        let restored = AdmissionController::new(AdmissionConfig::hardened());
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.tier(1), c.tier(1));
        assert_eq!(restored.burn(2).to_bits(), c.burn(2).to_bits());
    }

    #[test]
    fn updates_are_order_deterministic() {
        let run = || {
            let c = controller();
            for w in 0..6 {
                for tenant in 0..8u64 {
                    c.update(tenant, 2.0 * w as f64, 20, tenant);
                }
            }
            c.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_admitted_burn_ignores_contained_tenants() {
        let c = controller();
        hammer(&c, 7, 0.0, 4); // shed
        c.update(8, 0.0, 20, 3); // admitted, modest burn
        let max = c.max_admitted_burn();
        assert!(max < 4.0, "shed tenant's burn must not leak: {max}");
        assert!(max > 0.0);
        assert_eq!(c.tier_counts(), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        let _ = AdmissionController::new(AdmissionConfig {
            degrade_exit: 9.0,
            ..AdmissionConfig::hardened()
        });
    }
}
