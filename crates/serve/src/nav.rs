//! Navigation-backed design-point evaluation.
//!
//! Wires the §VII-b navigation use case through the service: a probe
//! for a (quality knob, workload features) pair runs the real
//! alternative-route planner on the shared road network and reports
//! latency, route quality, and a power proxy. The probe derives its
//! origin/destination draws from a seed mixed out of the design key
//! itself, making it a pure function of (configuration, features) —
//! the purity the pool and the cache demand.

use crate::cache::probe_seed;
use crate::pool::Evaluation;
use crate::service::Evaluator;
use antarex_apps::nav::route::alternative_routes;
use antarex_apps::nav::{RoadNetwork, TrafficModel};
use antarex_tuner::Configuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evaluates navigation design points on a road network.
///
/// Workload features: `[time_of_day_s, od_spread]` — when a tenant
/// carries fewer features the missing ones default to morning rush
/// hour and full-network spread.
#[derive(Debug, Clone)]
pub struct NavEvaluator {
    network: RoadNetwork,
    traffic: TrafficModel,
    /// Node expansions per second per core (planner throughput); the
    /// same calibration as [`antarex_apps::nav::NavigationServer`].
    pub expansions_per_s: f64,
    /// Power proxy: watts burned per thousand node expansions.
    pub watts_per_kexpansion: f64,
}

impl NavEvaluator {
    /// Creates an evaluator over a network and traffic model.
    pub fn new(network: RoadNetwork, traffic: TrafficModel) -> Self {
        NavEvaluator {
            network,
            traffic,
            expansions_per_s: 1500.0,
            watts_per_kexpansion: 0.4,
        }
    }

    /// A standard 16×16 city grid under weekday traffic, seeded.
    pub fn city(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        NavEvaluator::new(
            RoadNetwork::city_grid(16, &mut rng),
            TrafficModel::weekday(),
        )
    }

    /// The road network probed.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }
}

impl Evaluator for NavEvaluator {
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        let alternatives = config.get_int("alternatives").unwrap_or(1).clamp(1, 64) as usize;
        let time_of_day_s = features.first().copied().unwrap_or(8.0 * 3600.0);
        let spread = features.get(1).copied().unwrap_or(1.0).clamp(0.05, 1.0);
        // the probe's RNG is derived from the design key: identical
        // (config, features) pairs draw identical OD pairs forever
        // the historical string-fold seed, so metrics stay bit-identical
        let mut rng = StdRng::seed_from_u64(probe_seed(config, features));
        let n = self.network.len();
        let reach = ((n as f64 * spread) as usize).max(2);
        let mut expanded_total = 0usize;
        let mut gain = 0.0;
        let mut counted = 0;
        for _ in 0..3 {
            let origin = rng.gen_range(0..n);
            let offset = rng.gen_range(1..reach);
            let destination = (origin + offset) % n;
            let routes = alternative_routes(
                &self.network,
                &self.traffic,
                origin,
                destination,
                time_of_day_s,
                alternatives,
            );
            expanded_total += routes.iter().map(|r| r.expanded).sum::<usize>();
            if let Some(first) = routes.first() {
                let best = routes
                    .iter()
                    .map(|r| r.travel_time_s)
                    .fold(f64::INFINITY, f64::min);
                gain += first.travel_time_s / best.max(1e-9);
                counted += 1;
            }
        }
        let latency_s = expanded_total as f64 / self.expansions_per_s;
        let quality = if counted > 0 {
            gain / f64::from(counted)
        } else {
            1.0
        };
        let power_w = 5.0 + self.watts_per_kexpansion * expanded_total as f64 / 1000.0;
        Evaluation {
            metrics: [
                ("latency".to_string(), latency_s),
                ("quality".to_string(), quality),
                ("power".to_string(), power_w),
            ]
            .into_iter()
            .collect(),
            cost_s: latency_s,
            energy_j: power_w * latency_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::KnobValue;

    fn config(alternatives: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("alternatives", KnobValue::Int(alternatives));
        c
    }

    #[test]
    fn evaluation_is_pure() {
        let evaluator = NavEvaluator::city(40);
        let a = evaluator.evaluate(&config(4), &[8.0 * 3600.0, 1.0]);
        let b = evaluator.evaluate(&config(4), &[8.0 * 3600.0, 1.0]);
        assert_eq!(a, b, "identical design points must evaluate identically");
    }

    #[test]
    fn more_alternatives_cost_more_and_route_no_worse() {
        let evaluator = NavEvaluator::city(41);
        let features = [8.0 * 3600.0, 1.0];
        let lo = evaluator.evaluate(&config(1), &features);
        let hi = evaluator.evaluate(&config(8), &features);
        let latency = |e: &Evaluation| e.metrics["latency"];
        assert!(
            latency(&hi) > latency(&lo) * 2.0,
            "8 alternatives {} vs 1 alternative {}",
            latency(&hi),
            latency(&lo)
        );
        assert!(hi.metrics["quality"] >= 1.0);
        assert!(
            (lo.metrics["quality"] - 1.0).abs() < 1e-12,
            "k=1 gains nothing"
        );
        assert!(hi.metrics["power"] > lo.metrics["power"]);
    }

    #[test]
    fn features_change_the_workload() {
        let evaluator = NavEvaluator::city(42);
        let rush = evaluator.evaluate(&config(4), &[8.0 * 3600.0, 1.0]);
        let night = evaluator.evaluate(&config(4), &[3.0 * 3600.0, 1.0]);
        assert_ne!(rush, night, "time of day must matter");
    }

    #[test]
    fn missing_knob_defaults_to_one_alternative() {
        let evaluator = NavEvaluator::city(43);
        let e = evaluator.evaluate(&Configuration::new(), &[]);
        assert!(e.metrics["latency"] > 0.0);
        assert_eq!(e.cost_s, e.metrics["latency"]);
    }
}
