//! # antarex-serve — autotuning as a service
//!
//! The ANTAREX runtime (Silvano et al., DATE 2016) frames the autotuner
//! as a facility shared by many application instances, sitting between
//! app-level adaptation and cluster-level power management. This crate
//! is that coordination point, scaled for heavy multi-tenant traffic:
//!
//! * [`store`] — the **sharded session store**: one
//!   [`AppManager`](antarex_tuner::AppManager) per tenant behind
//!   hash-sharded locks, so session lookups from many serving threads
//!   contend only per shard;
//! * [`cache`] — the **memoized design-point cache** keyed by (knob
//!   configuration, quantized workload features), with lock-free
//!   hit/miss accounting: identical configurations are never measured
//!   twice, even across tenants;
//! * [`pool`] — the **parallel evaluation pool**: scoped worker
//!   threads over a bounded, load-shedding queue, with results merged
//!   in job order and timing replayed on *virtual* cores so outputs
//!   are byte-identical at any physical core count;
//! * [`service`] — the tying layer: select → cache → probe → learn →
//!   adapt per batch, plus the aggregate power demand the RTRM's
//!   facility capper splits across tenants;
//! * [`chaos`] — the **fault-injected scheduler**: the pool's virtual
//!   list schedule replayed against a deterministic
//!   [`FaultSchedule`](antarex_sim::faults::FaultSchedule) — worker
//!   crashes retried with capped backoff, stragglers hedged, results
//!   integrity-checked, per-job deadline budgets enforced;
//! * [`breaker`] — **per-tenant circuit breakers** so a tenant whose
//!   probes keep failing fails fast instead of consuming pool capacity;
//! * [`journal`] — **crash-recoverable sessions**: a write-ahead
//!   journal of state deltas plus Daly-cadenced snapshots, with replay
//!   proven bit-identical to the uninterrupted run;
//! * [`obs`] — the **observability plane**: every serving-path counter,
//!   histogram, span, and SLO burn check flows through one
//!   [`ObsPlane`](antarex_obs::ObsPlane), with traces recorded on
//!   virtual work content so they are byte-identical at any worker
//!   count;
//! * [`driver`] — the deterministic **virtual-time request driver**:
//!   seeded per-tenant Poisson arrivals merged into batch windows;
//! * [`nav`] — the navigation use case wired through the service as a
//!   real evaluator;
//! * [`docking`] — the drug-discovery use case as a second **tenant
//!   class**: probes dock real synthetic ligands with heavy-tailed
//!   `atoms × spheres × poses` costs, and the pool's deterministic
//!   **work-stealing scheduler**
//!   ([`pool::SchedPolicy`]) rebalances the resulting
//!   imbalance without giving up byte-identical schedules at any
//!   physical worker count;
//! * [`kernel`] — mini-C precision design points probed on the metered
//!   bytecode VM, with instrumented code shared across tenants through
//!   one [`InstrumentedCodeCache`](antarex_vm::InstrumentedCodeCache).
//!
//! # Examples
//!
//! ```
//! use antarex_serve::driver::{self, DriverConfig};
//! use antarex_serve::nav::NavEvaluator;
//! use antarex_serve::{ServiceConfig, TuningService};
//!
//! let service = TuningService::new(ServiceConfig::default(), NavEvaluator::city(1));
//! let config = DriverConfig::smoke(1);
//! driver::register_nav_tenants(&service, &config, 0.5);
//! let stats = driver::drive(&service, &config);
//! assert!(stats.served > 0);
//! assert_eq!(
//!     stats.served + stats.shed + stats.rejected + stats.failed,
//!     stats.requests
//! );
//! ```

pub mod admission;
pub mod autoscale;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod docking;
pub mod driver;
pub mod error;
pub mod journal;
pub mod kernel;
pub mod nav;
pub mod obs;
pub mod pool;
pub mod service;
pub mod store;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionTier};
pub use autoscale::{AutoscaleConfig, Autoscaler};
pub use breaker::{BreakerBank, BreakerConfig, CircuitBreaker};
pub use cache::{probe_seed, DesignKey, DesignPointCache, ReferenceKey};
pub use chaos::{ChaosConfig, HedgePolicy};
pub use docking::{DockingEvaluator, TenantMux};
pub use error::ServeError;
pub use journal::{Journal, JournalEntry, Snapshot};
pub use kernel::KernelEvaluator;
pub use obs::ServeObs;
pub use pool::{CostEstimator, EvalPool, PoolConfig, SchedConfig, SchedPolicy, SchedStats};
pub use service::{
    BatchReport, Evaluator, FrontDoorConfig, ProbeSegment, ResilienceConfig, ServiceConfig,
    TuningRequest, TuningResponse, TuningService,
};
pub use store::{Session, SessionStore, TenantId};
