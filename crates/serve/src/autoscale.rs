//! Virtual-time autoscaling of the evaluation pool's capacity.
//!
//! The autoscaler closes the resource half of the control loop: it
//! watches the two overload signals the batch path produces — probe
//! queue depth and the admission controller's worst admitted-tenant
//! burn — and resizes the pool's *virtual* worker capacity between
//! configured bounds. Growth is multiplicative (a burst doubles
//! capacity per decision) and shrink is additive (one worker at a
//! time), the classic asymmetry that absorbs spikes fast and releases
//! capacity cautiously; a cooldown window between decisions keeps the
//! loop from chasing its own transients.
//!
//! Determinism contract: decisions key off **work content** (how many
//! probes this window queued, how hot the SLO burn is) and **virtual
//! time** — never wall placement or physical thread count. The scaled
//! capacity feeds [`EvalPool::evaluate_batch_on`](crate::pool::EvalPool::evaluate_batch_on)
//! as the *virtual* core count while the physical thread count stays
//! fixed at the pool's configuration, so a scaled run's outputs are
//! byte-identical at 1, 2, 4, or 8 real threads — the same invariance
//! s1/r2/p1/o1 gate, now with a moving capacity. Every decision is
//! journaled and the full state snapshots, so crash recovery replays
//! scaling bit-identically.

use std::sync::Mutex;

/// Tuning of the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Floor on virtual capacity (also the starting capacity).
    pub min_workers: usize,
    /// Ceiling on virtual capacity.
    pub max_workers: usize,
    /// Queued probes per virtual worker above which capacity grows.
    pub queue_high: f64,
    /// Queued probes per virtual worker below which capacity may
    /// shrink (must sit below `queue_high` — the hysteresis band).
    pub queue_low: f64,
    /// Worst admitted-tenant burn above which capacity grows even
    /// with a modest queue (latency pain without queue growth).
    pub burn_high: f64,
    /// Minimum virtual time between scaling decisions.
    pub cooldown_s: f64,
}

impl AutoscaleConfig {
    /// The hardened profile: 4–32 virtual workers, grow past 4 queued
    /// probes per worker or 8× admitted burn, shrink below 1 per
    /// worker, 4 s cooldown.
    pub fn hardened() -> Self {
        AutoscaleConfig {
            min_workers: 4,
            max_workers: 32,
            queue_high: 4.0,
            queue_low: 1.0,
            burn_high: 8.0,
            cooldown_s: 4.0,
        }
    }

    fn validate(&self) {
        assert!(self.min_workers > 0, "need at least one virtual worker");
        assert!(
            self.max_workers >= self.min_workers,
            "max capacity below min"
        );
        assert!(
            self.queue_low < self.queue_high,
            "queue thresholds need hysteresis (low < high)"
        );
        assert!(self.cooldown_s >= 0.0, "cooldown must be non-negative");
    }
}

/// The autoscaler's full state — part of the crash-recovery snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerState {
    /// Current virtual worker capacity.
    pub capacity: usize,
    /// Virtual time of the last capacity change (−∞ before the first).
    pub last_change_s: f64,
    /// Scale-up decisions taken.
    pub scale_ups: u64,
    /// Scale-down decisions taken.
    pub scale_downs: u64,
}

/// The evaluation pool's capacity governor.
#[derive(Debug)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    state: Mutex<AutoscalerState>,
}

impl Autoscaler {
    /// An autoscaler starting at `min_workers` capacity.
    ///
    /// # Panics
    ///
    /// Panics when the config is inconsistent (zero capacity, max
    /// below min, no hysteresis band).
    pub fn new(config: AutoscaleConfig) -> Self {
        config.validate();
        Autoscaler {
            config,
            state: Mutex::new(AutoscalerState {
                capacity: config.min_workers,
                last_change_s: f64::NEG_INFINITY,
                scale_ups: 0,
                scale_downs: 0,
            }),
        }
    }

    /// The autoscaler's tuning.
    pub fn config(&self) -> AutoscaleConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AutoscalerState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current virtual worker capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Takes one scaling decision at virtual time `now_s` given this
    /// window's queued probe count and the admission plane's worst
    /// admitted burn. Returns the new capacity when it changed.
    pub fn decide(&self, now_s: f64, queue_depth: usize, burn: f64) -> Option<usize> {
        let mut state = self.lock();
        if now_s - state.last_change_s < self.config.cooldown_s {
            return None;
        }
        let per_worker = queue_depth as f64 / state.capacity as f64;
        let next = if (per_worker > self.config.queue_high || burn > self.config.burn_high)
            && state.capacity < self.config.max_workers
        {
            state.scale_ups += 1;
            (state.capacity * 2).min(self.config.max_workers)
        } else if per_worker < self.config.queue_low
            && burn <= self.config.burn_high
            && state.capacity > self.config.min_workers
        {
            state.scale_downs += 1;
            state.capacity - 1
        } else {
            return None;
        };
        state.capacity = next;
        state.last_change_s = now_s;
        Some(next)
    }

    /// Applies a journaled scaling decision during replay: sets the
    /// capacity and decision clock exactly as the live `decide` did,
    /// inferring the up/down tally from the capacity delta.
    pub fn force(&self, now_s: f64, capacity: usize) {
        let mut state = self.lock();
        if capacity > state.capacity {
            state.scale_ups += 1;
        } else if capacity < state.capacity {
            state.scale_downs += 1;
        }
        state.capacity = capacity.clamp(self.config.min_workers, self.config.max_workers);
        state.last_change_s = now_s;
    }

    /// The full state — what the journal's snapshot persists.
    pub fn snapshot(&self) -> AutoscalerState {
        *self.lock()
    }

    /// Restores the autoscaler to an exact prior state (crash
    /// recovery).
    pub fn restore(&self, state: AutoscalerState) {
        *self.lock() = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig::hardened())
    }

    #[test]
    fn starts_at_the_floor() {
        assert_eq!(scaler().capacity(), 4);
    }

    #[test]
    fn deep_queue_doubles_capacity_up_to_the_ceiling() {
        let s = scaler();
        assert_eq!(s.decide(0.0, 100, 0.0), Some(8));
        assert_eq!(s.decide(10.0, 100, 0.0), Some(16));
        assert_eq!(s.decide(20.0, 200, 0.0), Some(32));
        assert_eq!(s.decide(30.0, 400, 0.0), None, "already at max");
        assert_eq!(s.snapshot().scale_ups, 3);
    }

    #[test]
    fn burn_pain_scales_up_without_queue_pressure() {
        let s = scaler();
        assert_eq!(s.decide(0.0, 8, 20.0), Some(8), "burn > burn_high");
    }

    #[test]
    fn cooldown_gates_consecutive_decisions() {
        let s = scaler();
        assert_eq!(s.decide(0.0, 100, 0.0), Some(8));
        assert_eq!(s.decide(1.0, 100, 0.0), None, "inside cooldown");
        assert_eq!(s.decide(4.0, 100, 0.0), Some(16), "cooldown elapsed");
    }

    #[test]
    fn idle_pool_shrinks_one_worker_at_a_time() {
        let s = scaler();
        s.decide(0.0, 100, 0.0); // 8
        assert_eq!(s.decide(10.0, 0, 0.0), Some(7));
        assert_eq!(s.decide(20.0, 0, 0.0), Some(6));
        assert_eq!(s.snapshot().scale_downs, 2);
    }

    #[test]
    fn never_shrinks_below_the_floor() {
        let s = scaler();
        for w in 0..20 {
            s.decide(10.0 * w as f64, 0, 0.0);
        }
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    fn hysteresis_band_holds_capacity_steady() {
        let s = scaler();
        s.decide(0.0, 100, 0.0); // 8
                                 // 2 probes/worker: above queue_low (1), below queue_high (4)
        assert_eq!(s.decide(10.0, 16, 0.0), None);
        assert_eq!(s.capacity(), 8);
    }

    #[test]
    fn force_replays_a_decision_bit_identically() {
        let live = scaler();
        live.decide(6.0, 100, 0.0);
        let replayed = scaler();
        replayed.force(6.0, 8);
        assert_eq!(replayed.snapshot(), live.snapshot());
        // both respect the same cooldown afterwards
        assert_eq!(live.decide(8.0, 100, 0.0), replayed.decide(8.0, 100, 0.0));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let s = scaler();
        s.decide(0.0, 100, 0.0);
        s.decide(10.0, 0, 0.0);
        let snap = s.snapshot();
        let restored = scaler();
        restored.restore(snap);
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_queue_thresholds_rejected() {
        let _ = Autoscaler::new(AutoscaleConfig {
            queue_low: 5.0,
            ..AutoscaleConfig::hardened()
        });
    }
}
