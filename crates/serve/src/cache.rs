//! The memoized design-point cache.
//!
//! Keyed by (knob configuration, quantized workload features): when two
//! tenants — or the same tenant twice — ask for the metrics of the same
//! configuration on the same kind of input, the second answer is a
//! lookup, not a re-evaluation. Entries are sharded like the session
//! store so concurrent readers contend only per shard; hit/miss counts
//! are lock-free [`Counter`] handles that can be shared with the
//! metric registry ([`DesignPointCache::with_counters`]), so the
//! cache's accessors and the observability plane read the same cells
//! rather than maintaining duplicate tallies.
//!
//! # Key representation
//!
//! [`DesignKey`] used to render the configuration to a `String`
//! (`{a=1, b=2}`) and compare keys byte-by-byte — one heap allocation
//! plus an O(len) format pass per lookup, on the hottest path the
//! service has. It now stores a precomputed 128-bit structural hash
//! over the interned knob ids, their values, and the quantized
//! features. Equality and ordering compare the hash first (one 128-bit
//! compare); only a full 128-bit collision — never observed, and
//! guarded anyway — falls through to the dense knob vector, so a cache
//! probe does no formatting and no allocation.
//!
//! Key *equality* is bit-compatible with the retained string reference
//! ([`ReferenceKey`]): `-0.0` and `0.0` knob values stay distinct (they
//! rendered as `-0` vs `0`) and all NaN payloads collapse to one key
//! (they all rendered as `NaN`). The one deliberate divergence: the
//! string form conflated same-rendering values of different knob types
//! (`Int(1)`, `Float(1.0)` and `Choice("1")` all printed `1`); the
//! structural key tags the value variant, so those are now distinct
//! keys. Within one design space a knob has a single type, so the
//! conflation could never occur in practice — the property suite checks
//! equivalence over typed spaces, where the two keys agree exactly.

use crate::store::mix64;
use antarex_obs::Counter;
use antarex_tuner::intern::SymbolId;
use antarex_tuner::{Configuration, KnobValue};
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Measured metrics of one design point (metric name → value).
pub type Metrics = BTreeMap<String, f64>;

/// A knob value encoded for exact, totally-ordered comparison.
///
/// `Float` stores the raw bits (with every NaN canonicalized to one
/// quiet NaN) so that key equality matches what the old string
/// rendering distinguished: `-0.0 != 0.0`, `NaN == NaN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum KnobBits {
    Int(i64),
    Float(u64),
    Choice(SymbolId),
}

const CANONICAL_NAN: u64 = 0x7FF8_0000_0000_0000;

impl KnobBits {
    fn encode(value: &KnobValue) -> Self {
        match value {
            KnobValue::Int(v) => KnobBits::Int(*v),
            KnobValue::Float(v) if v.is_nan() => KnobBits::Float(CANONICAL_NAN),
            KnobValue::Float(v) => KnobBits::Float(v.to_bits()),
            KnobValue::Choice(s) => KnobBits::Choice(antarex_tuner::intern::intern(s)),
        }
    }

    /// Folds this value into a running hash lane with a variant tag, so
    /// equal bit patterns of different variants cannot collide.
    fn fold(self, h: u64) -> u64 {
        match self {
            KnobBits::Int(v) => mix64(mix64(h ^ 0xA1) ^ (v as u64)),
            KnobBits::Float(bits) => mix64(mix64(h ^ 0xB2) ^ bits),
            KnobBits::Choice(id) => mix64(mix64(h ^ 0xC3) ^ u64::from(id.index())),
        }
    }
}

/// Cache key: a 128-bit structural hash of the configuration and the
/// workload features quantized to a fixed grid (micro-resolution, so
/// float noise below 1e-6 does not defeat memoization), plus the dense
/// knob vector the hash was computed from for collision verification.
///
/// Ordering is hash-first: `entries()` dumps and the coalescing map
/// iterate in hash order, which is deterministic within a process but —
/// like the hash itself — depends on symbol-interning order, so raw key
/// order must never surface in output that is byte-compared across
/// processes (reports print names, not keys).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DesignKey {
    hash: u128,
    knobs: Vec<(SymbolId, KnobBits)>,
    features: Vec<i64>,
}

impl Hash for DesignKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // the structural hash already covers every equality field
        state.write_u128(self.hash);
    }
}

impl DesignKey {
    /// Builds the key for a configuration evaluated under the given
    /// workload features. No allocation beyond the two dense vectors;
    /// no string formatting.
    pub fn new(config: &Configuration, features: &[f64]) -> Self {
        let knobs: Vec<(SymbolId, KnobBits)> = config
            .entries()
            .iter()
            .map(|(id, value)| (*id, KnobBits::encode(value)))
            .collect();
        let features: Vec<i64> = features.iter().map(|&f| quantize(f)).collect();
        // two independently-seeded 64-bit lanes make the 128-bit hash;
        // a collision needs both lanes to agree
        let mut lo = 0xcbf2_9ce4_8422_2325u64;
        let mut hi = 0x9e37_79b9_7f4a_7c15u64;
        for (id, bits) in &knobs {
            lo = bits.fold(mix64(lo ^ u64::from(id.index())));
            hi = bits.fold(mix64(hi ^ u64::from(id.index()).rotate_left(17)));
        }
        for q in &features {
            lo = mix64(lo ^ (*q as u64));
            hi = mix64(hi ^ (*q as u64).rotate_left(31));
        }
        DesignKey {
            hash: (u128::from(hi) << 64) | u128::from(lo),
            knobs,
            features,
        }
    }

    /// Folds the key into a 64-bit value for shard selection — a pure
    /// function of the structural hash, identical across lookups within
    /// a run. (For the probe RNG seed, which must be stable across
    /// processes, use [`probe_seed`] instead.)
    pub fn seed(&self) -> u64 {
        (self.hash >> 64) as u64 ^ self.hash as u64
    }
}

/// The retained pre-optimization key: the canonical string rendering of
/// the configuration plus quantized features. Kept as the executable
/// reference the property suite and the p1 benchmark compare
/// [`DesignKey`] against — not used on any serving path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReferenceKey {
    config: String,
    features: Vec<i64>,
}

impl ReferenceKey {
    /// Builds the reference key by formatting the configuration.
    pub fn new(config: &Configuration, features: &[f64]) -> Self {
        ReferenceKey {
            config: config.to_string(),
            features: features.iter().map(|&f| quantize(f)).collect(),
        }
    }

    /// The original SplitMix64 fold over the rendered configuration —
    /// the historical `DesignKey::seed()`.
    pub fn seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.config.as_bytes() {
            h = mix64(h ^ u64::from(*byte));
        }
        for q in &self.features {
            h = mix64(h ^ (*q as u64));
        }
        h
    }
}

/// Streams `Display` output through the historical seed fold without
/// materializing the string.
struct SeedWriter(u64);

impl std::fmt::Write for SeedWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for byte in s.as_bytes() {
            self.0 = mix64(self.0 ^ u64::from(*byte));
        }
        Ok(())
    }
}

/// The deterministic probe-RNG seed for evaluating `config` under
/// `features` — byte-for-byte the value the old string-keyed
/// `DesignKey::seed()` produced, so every seeded evaluation in the
/// system reproduces its historical metrics exactly. Allocation-free:
/// the configuration's `Display` output is folded as it streams.
pub fn probe_seed(config: &Configuration, features: &[f64]) -> u64 {
    use std::fmt::Write;
    let mut writer = SeedWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(writer, "{config}");
    let mut h = writer.0;
    for f in features {
        h = mix64(h ^ (quantize(*f) as u64));
    }
    h
}

fn quantize(f: f64) -> i64 {
    if f.is_finite() {
        (f * 1e6).round() as i64
    } else {
        i64::MAX
    }
}

/// Sharded memoization table with hit/miss accounting.
///
/// # Examples
///
/// ```
/// use antarex_serve::cache::{DesignKey, DesignPointCache};
/// use antarex_tuner::{Configuration, KnobValue};
///
/// let cache = DesignPointCache::new(4);
/// let mut config = Configuration::new();
/// config.set("alternatives", KnobValue::Int(4));
/// let key = DesignKey::new(&config, &[8.5]);
/// assert!(cache.get(&key).is_none());
/// cache.insert(key.clone(), [("latency".to_string(), 0.2)].into_iter().collect());
/// assert_eq!(cache.get(&key).unwrap().get("latency"), Some(&0.2));
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct DesignPointCache {
    shards: Vec<Mutex<HashMap<DesignKey, Metrics>>>,
    hits: Counter,
    misses: Counter,
    quarantined: Counter,
}

impl DesignPointCache {
    /// Creates a cache with the given shard count and standalone
    /// counters (not yet visible on any registry).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        Self::with_counters(shards, Counter::new(), Counter::new(), Counter::new())
    }

    /// Creates a cache whose hit/miss/quarantine accounting lands in
    /// the given counter handles — typically handles registered on a
    /// metric registry, making the registry and the cache's accessors
    /// two views of the same cells.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_counters(
        shards: usize,
        hits: Counter,
        misses: Counter,
        quarantined: Counter,
    ) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        DesignPointCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits,
            misses,
            quarantined,
        }
    }

    fn shard_of(&self, key: &DesignKey) -> usize {
        (key.seed() % self.shards.len() as u64) as usize
    }

    fn lock(&self, index: usize) -> std::sync::MutexGuard<'_, HashMap<DesignKey, Metrics>> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a design point, counting a hit or a miss.
    pub fn get(&self, key: &DesignKey) -> Option<Metrics> {
        let found = self.lock(self.shard_of(key)).get(key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    /// Inserts (or overwrites) a design point's metrics.
    pub fn insert(&self, key: DesignKey, metrics: Metrics) {
        self.lock(self.shard_of(&key)).insert(key, metrics);
    }

    /// Counts a hit that bypassed [`get`](Self::get) — a request
    /// coalesced onto an evaluation already in flight is served by the
    /// memo table even though the entry has not been filled yet.
    pub fn note_coalesced_hit(&self) {
        self.hits.inc();
    }

    /// Quarantines a design point whose evaluation failed or came back
    /// corrupted: whatever the slot holds is evicted so the next caller
    /// re-probes instead of being served a poisoned (or phantom) entry.
    /// The eviction is charged to the miss counter — the coalesced
    /// waiters that would have been hits must re-probe — and the
    /// quarantine counter records the incident.
    pub fn quarantine(&self, key: &DesignKey) {
        self.lock(self.shard_of(key)).remove(key);
        self.misses.inc();
        self.quarantined.inc();
    }

    /// Every cached entry in key order — the deterministic dump the
    /// snapshot machinery persists at a checkpoint boundary.
    pub fn entries(&self) -> Vec<(DesignKey, Metrics)> {
        let mut out: Vec<(DesignKey, Metrics)> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.lock(i).iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Cached design points.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Design points quarantined after failed or corrupted evaluations.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.get()
    }

    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total > 0.0 {
            hits / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::KnobValue;

    fn config(level: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(level));
        c
    }

    fn metrics(latency: f64) -> Metrics {
        [("latency".to_string(), latency)].into_iter().collect()
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = DesignPointCache::new(4);
        let key = DesignKey::new(&config(2), &[10.0]);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), metrics(0.3));
        assert_eq!(cache.get(&key).unwrap(), metrics(0.3));
        assert_eq!(cache.get(&key).unwrap(), metrics(0.3));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_features_do_not_collide() {
        let cache = DesignPointCache::new(4);
        cache.insert(DesignKey::new(&config(1), &[1.0]), metrics(0.1));
        cache.insert(DesignKey::new(&config(2), &[1.0]), metrics(0.2));
        cache.insert(DesignKey::new(&config(1), &[2.0]), metrics(0.3));
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.get(&DesignKey::new(&config(1), &[2.0])).unwrap(),
            metrics(0.3)
        );
    }

    #[test]
    fn quantization_absorbs_sub_micro_noise() {
        let cache = DesignPointCache::new(2);
        cache.insert(DesignKey::new(&config(1), &[10.0]), metrics(0.1));
        // 1e-9 of feature noise maps to the same cell
        assert!(cache
            .get(&DesignKey::new(&config(1), &[10.000000001]))
            .is_some());
        // 1e-3 does not
        assert!(cache.get(&DesignKey::new(&config(1), &[10.001])).is_none());
    }

    #[test]
    fn non_finite_features_are_usable_keys() {
        let cache = DesignPointCache::new(2);
        cache.insert(DesignKey::new(&config(1), &[f64::NAN]), metrics(1.0));
        assert!(cache
            .get(&DesignKey::new(&config(1), &[f64::INFINITY]))
            .is_some());
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = DesignPointCache::new(1);
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = DesignPointCache::new(0);
    }

    #[test]
    fn quarantine_evicts_and_counts_a_miss() {
        let cache = DesignPointCache::new(4);
        let key = DesignKey::new(&config(3), &[7.0]);
        cache.insert(key.clone(), metrics(0.5));
        cache.quarantine(&key);
        assert!(cache.is_empty(), "quarantined entry must be evicted");
        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.misses(), 1, "eviction charged as a miss");
        assert!(cache.get(&key).is_none(), "waiters re-probe after eviction");
        // quarantining an absent key is a no-op eviction but still counted
        cache.quarantine(&key);
        assert_eq!(cache.quarantined(), 2);
    }

    #[test]
    fn registry_counters_and_accessors_read_the_same_cells() {
        let registry = antarex_obs::MetricsRegistry::new();
        let hits = registry.counter("cache-test_hits_total", antarex_obs::Scope::Invariant);
        let misses = registry.counter("cache-test_misses_total", antarex_obs::Scope::Invariant);
        let quarantined = registry.counter(
            "cache-test_quarantined_total",
            antarex_obs::Scope::Invariant,
        );
        let cache = DesignPointCache::with_counters(4, hits.clone(), misses, quarantined);
        let key = DesignKey::new(&config(1), &[1.0]);
        cache.get(&key); // miss
        cache.insert(key.clone(), metrics(0.1));
        cache.get(&key); // hit
        cache.quarantine(&key);
        assert_eq!(cache.hits(), hits.get(), "accessor is a registry view");
        let exposition = antarex_obs::exposition(&registry.snapshot(None));
        assert!(
            exposition.contains("cache-test_hits_total 1"),
            "{exposition}"
        );
        assert!(exposition.contains("cache-test_misses_total 2"));
        assert!(exposition.contains("cache-test_quarantined_total 1"));
    }

    #[test]
    fn probe_seed_matches_the_historical_string_fold() {
        let mut c = Configuration::new();
        c.set("unroll", KnobValue::Int(8));
        c.set("alpha", KnobValue::Float(0.25));
        c.set("variant", KnobValue::Choice("blocked".into()));
        for features in [&[][..], &[1.5][..], &[f64::NAN, -3.0][..]] {
            assert_eq!(
                probe_seed(&c, features),
                ReferenceKey::new(&c, features).seed(),
                "probe_seed must reproduce the retained reference exactly"
            );
        }
    }

    #[test]
    fn key_equality_mirrors_the_string_reference() {
        // -0.0 rendered as "-0": distinct key from 0.0
        let mut neg = Configuration::new();
        neg.set("alpha", KnobValue::Float(-0.0));
        let mut pos = Configuration::new();
        pos.set("alpha", KnobValue::Float(0.0));
        assert_ne!(DesignKey::new(&neg, &[]), DesignKey::new(&pos, &[]));
        assert_ne!(ReferenceKey::new(&neg, &[]), ReferenceKey::new(&pos, &[]));
        // every NaN rendered as "NaN": one key
        let mut nan_a = Configuration::new();
        nan_a.set("alpha", KnobValue::Float(f64::NAN));
        let mut nan_b = Configuration::new();
        nan_b.set("alpha", KnobValue::Float(-f64::NAN));
        assert_eq!(DesignKey::new(&nan_a, &[]), DesignKey::new(&nan_b, &[]));
        assert_eq!(
            ReferenceKey::new(&nan_a, &[]),
            ReferenceKey::new(&nan_b, &[])
        );
    }

    #[test]
    fn variant_tags_separate_same_bits_across_types() {
        let mut int1 = Configuration::new();
        int1.set("k", KnobValue::Int(1));
        let mut choice1 = Configuration::new();
        choice1.set("k", KnobValue::Choice("1".into()));
        // the string reference conflated these; the structural key must not
        assert_ne!(DesignKey::new(&int1, &[]), DesignKey::new(&choice1, &[]));
    }
}
