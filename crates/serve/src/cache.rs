//! The memoized design-point cache.
//!
//! Keyed by (knob configuration, quantized workload features): when two
//! tenants — or the same tenant twice — ask for the metrics of the same
//! configuration on the same kind of input, the second answer is a
//! lookup, not a re-evaluation. Entries are sharded like the session
//! store so concurrent readers contend only per shard; hit/miss counts
//! are lock-free atomics.

use crate::store::mix64;
use antarex_tuner::Configuration;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Measured metrics of one design point (metric name → value).
pub type Metrics = BTreeMap<String, f64>;

/// Cache key: the canonical rendering of a configuration plus the
/// workload features quantized to a fixed grid (micro-resolution), so
/// float noise below 1e-6 does not defeat memoization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DesignKey {
    config: String,
    features: Vec<i64>,
}

impl DesignKey {
    /// Builds the key for a configuration evaluated under the given
    /// workload features.
    pub fn new(config: &Configuration, features: &[f64]) -> Self {
        DesignKey {
            config: config.to_string(),
            features: features.iter().map(|&f| quantize(f)).collect(),
        }
    }

    /// Folds the key into a stable 64-bit hash (SplitMix64 over the
    /// canonical rendering) — identical across runs and platforms, used
    /// both for shard selection and as a probe seed.
    pub fn seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.config.as_bytes() {
            h = mix64(h ^ u64::from(*byte));
        }
        for q in &self.features {
            h = mix64(h ^ (*q as u64));
        }
        h
    }
}

fn quantize(f: f64) -> i64 {
    if f.is_finite() {
        (f * 1e6).round() as i64
    } else {
        i64::MAX
    }
}

/// Sharded memoization table with hit/miss accounting.
///
/// # Examples
///
/// ```
/// use antarex_serve::cache::{DesignKey, DesignPointCache};
/// use antarex_tuner::{Configuration, KnobValue};
///
/// let cache = DesignPointCache::new(4);
/// let mut config = Configuration::new();
/// config.set("alternatives", KnobValue::Int(4));
/// let key = DesignKey::new(&config, &[8.5]);
/// assert!(cache.get(&key).is_none());
/// cache.insert(key.clone(), [("latency".to_string(), 0.2)].into_iter().collect());
/// assert_eq!(cache.get(&key).unwrap().get("latency"), Some(&0.2));
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug)]
pub struct DesignPointCache {
    shards: Vec<Mutex<BTreeMap<DesignKey, Metrics>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
}

impl DesignPointCache {
    /// Creates a cache with the given shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        DesignPointCache {
            shards: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &DesignKey) -> usize {
        (key.seed() % self.shards.len() as u64) as usize
    }

    fn lock(&self, index: usize) -> std::sync::MutexGuard<'_, BTreeMap<DesignKey, Metrics>> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a design point, counting a hit or a miss.
    pub fn get(&self, key: &DesignKey) -> Option<Metrics> {
        let found = self.lock(self.shard_of(key)).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or overwrites) a design point's metrics.
    pub fn insert(&self, key: DesignKey, metrics: Metrics) {
        self.lock(self.shard_of(&key)).insert(key, metrics);
    }

    /// Counts a hit that bypassed [`get`](Self::get) — a request
    /// coalesced onto an evaluation already in flight is served by the
    /// memo table even though the entry has not been filled yet.
    pub fn note_coalesced_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Quarantines a design point whose evaluation failed or came back
    /// corrupted: whatever the slot holds is evicted so the next caller
    /// re-probes instead of being served a poisoned (or phantom) entry.
    /// The eviction is charged to the miss counter — the coalesced
    /// waiters that would have been hits must re-probe — and the
    /// quarantine counter records the incident.
    pub fn quarantine(&self, key: &DesignKey) {
        self.lock(self.shard_of(key)).remove(key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Every cached entry in key order — the deterministic dump the
    /// snapshot machinery persists at a checkpoint boundary.
    pub fn entries(&self) -> Vec<(DesignKey, Metrics)> {
        let mut out: Vec<(DesignKey, Metrics)> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.lock(i).iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Cached design points.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).len()).sum()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Design points quarantined after failed or corrupted evaluations.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total > 0.0 {
            hits / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::KnobValue;

    fn config(level: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(level));
        c
    }

    fn metrics(latency: f64) -> Metrics {
        [("latency".to_string(), latency)].into_iter().collect()
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = DesignPointCache::new(4);
        let key = DesignKey::new(&config(2), &[10.0]);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), metrics(0.3));
        assert_eq!(cache.get(&key).unwrap(), metrics(0.3));
        assert_eq!(cache.get(&key).unwrap(), metrics(0.3));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_features_do_not_collide() {
        let cache = DesignPointCache::new(4);
        cache.insert(DesignKey::new(&config(1), &[1.0]), metrics(0.1));
        cache.insert(DesignKey::new(&config(2), &[1.0]), metrics(0.2));
        cache.insert(DesignKey::new(&config(1), &[2.0]), metrics(0.3));
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.get(&DesignKey::new(&config(1), &[2.0])).unwrap(),
            metrics(0.3)
        );
    }

    #[test]
    fn quantization_absorbs_sub_micro_noise() {
        let cache = DesignPointCache::new(2);
        cache.insert(DesignKey::new(&config(1), &[10.0]), metrics(0.1));
        // 1e-9 of feature noise maps to the same cell
        assert!(cache
            .get(&DesignKey::new(&config(1), &[10.000000001]))
            .is_some());
        // 1e-3 does not
        assert!(cache.get(&DesignKey::new(&config(1), &[10.001])).is_none());
    }

    #[test]
    fn non_finite_features_are_usable_keys() {
        let cache = DesignPointCache::new(2);
        cache.insert(DesignKey::new(&config(1), &[f64::NAN]), metrics(1.0));
        assert!(cache
            .get(&DesignKey::new(&config(1), &[f64::INFINITY]))
            .is_some());
    }

    #[test]
    fn empty_cache_reports_zero_rate() {
        let cache = DesignPointCache::new(1);
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(cache.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = DesignPointCache::new(0);
    }

    #[test]
    fn quarantine_evicts_and_counts_a_miss() {
        let cache = DesignPointCache::new(4);
        let key = DesignKey::new(&config(3), &[7.0]);
        cache.insert(key.clone(), metrics(0.5));
        cache.quarantine(&key);
        assert!(cache.is_empty(), "quarantined entry must be evicted");
        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.misses(), 1, "eviction charged as a miss");
        assert!(cache.get(&key).is_none(), "waiters re-probe after eviction");
        // quarantining an absent key is a no-op eviction but still counted
        cache.quarantine(&key);
        assert_eq!(cache.quarantined(), 2);
    }
}
