//! The multi-tenant autotuning service.
//!
//! One service instance hosts thousands of per-application tuning
//! sessions (the paper's vision of the autotuner as a shared runtime
//! facility rather than a per-process library). A request names a
//! tenant; the service selects the tenant's best feasible operating
//! point, answers from the design-point cache when that point was
//! already measured — for *any* tenant — and otherwise batches a probe
//! onto the parallel evaluation pool. Fresh measurements flow back into
//! the tenant's knowledge base (online learning), and the per-tenant
//! power demands aggregate into the cluster power manager's budget
//! split.

use crate::cache::{DesignKey, DesignPointCache, Metrics};
use crate::error::ServeError;
use crate::pool::{EvalJob, EvalPool, Evaluation, PoolConfig};
use crate::store::{Session, SessionStore, TenantId};
use antarex_rtrm::powercap::try_weighted_split;
use antarex_tuner::manager::AppManager;
use antarex_tuner::Configuration;
use std::collections::BTreeMap;

/// Virtual cost of answering from the cache, seconds.
const CACHE_LOOKUP_S: f64 = 1e-4;

/// Measures design points for the service.
///
/// Implementations must be pure: the same configuration and features
/// always yield the same evaluation. That is what lets the pool run
/// probes on any number of threads — and the cache reuse them across
/// tenants — without changing a single output byte.
pub trait Evaluator: Sync {
    /// Measures the metrics and virtual compute cost of a
    /// configuration under the given workload features.
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation;
}

impl<F> Evaluator for F
where
    F: Fn(&Configuration, &[f64]) -> Evaluation + Sync,
{
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        self(config, features)
    }
}

/// Service sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Session-store shards.
    pub store_shards: usize,
    /// Design-point-cache shards.
    pub cache_shards: usize,
    /// Evaluation-pool sizing.
    pub pool: PoolConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_shards: 16,
            cache_shards: 16,
            pool: PoolConfig {
                workers: 4,
                queue_capacity: 256,
            },
        }
    }
}

/// One tuning request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningRequest {
    /// The tenant asking.
    pub tenant: TenantId,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResponse {
    /// The tenant answered.
    pub tenant: TenantId,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
    /// The configuration the tenant should deploy.
    pub config: Configuration,
    /// Measured (or cached) metrics of that configuration.
    pub metrics: Metrics,
    /// Virtual service latency: cache lookup, or queue wait plus probe
    /// compute on the evaluation pool.
    pub latency_s: f64,
    /// Whether the design point came from the cache.
    pub cache_hit: bool,
}

/// Outcome of one request batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-request outcomes, aligned with the submitted batch.
    pub responses: Vec<Result<TuningResponse, ServeError>>,
    /// Virtual makespan of the probes the pool ran.
    pub makespan_s: f64,
    /// Probes evaluated (batch-deduplicated misses).
    pub evaluated: usize,
    /// Requests shed by admission control.
    pub shed: usize,
}

/// The autotuning service.
#[derive(Debug)]
pub struct TuningService<E> {
    store: SessionStore,
    cache: DesignPointCache,
    pool: EvalPool,
    evaluator: E,
}

impl<E: Evaluator> TuningService<E> {
    /// Creates a service around an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero shards, workers, or capacity.
    pub fn new(config: ServiceConfig, evaluator: E) -> Self {
        TuningService {
            store: SessionStore::new(config.store_shards),
            cache: DesignPointCache::new(config.cache_shards),
            pool: EvalPool::new(config.pool),
            evaluator,
        }
    }

    /// The session store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The design-point cache.
    pub fn cache(&self) -> &DesignPointCache {
        &self.cache
    }

    /// Registers a tenant with its runtime manager and workload
    /// features.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        manager: AppManager,
        features: Vec<f64>,
    ) -> Result<(), ServeError> {
        self.store.insert(tenant, Session::new(manager, features))
    }

    /// Serves one batch of requests.
    ///
    /// The batch is processed in arrival order: operating points are
    /// selected per tenant, cache misses are deduplicated and evaluated
    /// in parallel (bounded queue; overflow is shed), results land in
    /// the cache and in each tenant's knowledge base, and every touched
    /// tenant runs one adaptation round at the batch's end time.
    pub fn serve_batch(&self, requests: &[TuningRequest]) -> BatchReport {
        // 1. select per request, splitting cache hits from misses
        enum Pending {
            Err(ServeError),
            Hit(Configuration, Metrics),
            Job {
                config: Configuration,
                job_id: usize,
                coalesced: bool,
            },
        }
        let mut pending: Vec<Pending> = Vec::with_capacity(requests.len());
        let mut jobs: Vec<EvalJob> = Vec::new();
        let mut job_of_key: BTreeMap<DesignKey, usize> = BTreeMap::new();
        for request in requests {
            let selected = self.store.with(request.tenant, |session| {
                if session.manager.knowledge().is_empty() {
                    return Err(ServeError::EmptyKnowledge(request.tenant));
                }
                match session.manager.select() {
                    Some(config) => Ok((config.clone(), session.features.clone())),
                    None => Err(ServeError::Infeasible(request.tenant)),
                }
            });
            let entry = match selected {
                Err(e) | Ok(Err(e)) => Pending::Err(e),
                Ok(Ok((config, features))) => {
                    let key = DesignKey::new(&config, &features);
                    if let Some(&job_id) = job_of_key.get(&key) {
                        // an earlier request in this batch already queued
                        // this exact design point: coalesce onto it
                        self.cache.note_coalesced_hit();
                        Pending::Job {
                            config,
                            job_id,
                            coalesced: true,
                        }
                    } else {
                        match self.cache.get(&key) {
                            Some(metrics) => Pending::Hit(config, metrics),
                            None => {
                                let job_id = jobs.len();
                                jobs.push(EvalJob {
                                    id: job_id,
                                    tenant: request.tenant,
                                    config: config.clone(),
                                    features,
                                });
                                job_of_key.insert(key, job_id);
                                Pending::Job {
                                    config,
                                    job_id,
                                    coalesced: false,
                                }
                            }
                        }
                    }
                }
            };
            pending.push(entry);
        }

        // 2. evaluate the deduplicated misses in parallel
        let evaluator = &self.evaluator;
        let outcome = self.pool.evaluate_batch(jobs, &|job: &EvalJob| {
            evaluator.evaluate(&job.config, &job.features)
        });
        let admitted = outcome.results.len();
        for result in &outcome.results {
            let key = DesignKey::new(&result.job.config, &result.job.features);
            self.cache.insert(key, result.evaluation.metrics.clone());
        }

        // 3. answer requests in order, feeding measurements back
        let mut responses: Vec<Result<TuningResponse, ServeError>> =
            Vec::with_capacity(requests.len());
        let mut shed = 0;
        let mut touched: Vec<TenantId> = Vec::new();
        let mut batch_end_s = f64::NEG_INFINITY;
        for (request, entry) in requests.iter().zip(pending) {
            batch_end_s = batch_end_s.max(request.arrival_s);
            let response = match entry {
                Pending::Err(e) => Err(e),
                Pending::Hit(config, metrics) => Ok(TuningResponse {
                    tenant: request.tenant,
                    arrival_s: request.arrival_s,
                    config,
                    metrics,
                    latency_s: CACHE_LOOKUP_S,
                    cache_hit: true,
                }),
                Pending::Job {
                    config,
                    job_id,
                    coalesced,
                } => {
                    if job_id < admitted {
                        let result = &outcome.results[job_id];
                        Ok(TuningResponse {
                            tenant: request.tenant,
                            arrival_s: request.arrival_s,
                            config,
                            metrics: result.evaluation.metrics.clone(),
                            latency_s: result.completion_s,
                            cache_hit: coalesced,
                        })
                    } else {
                        Err(ServeError::Shed {
                            capacity: self.pool.config().queue_capacity,
                        })
                    }
                }
            };
            match &response {
                Ok(answer) => {
                    let metrics = answer.metrics.clone();
                    let config = answer.config.clone();
                    let arrival = answer.arrival_s;
                    let _ = self.store.with(request.tenant, |session| {
                        session.requests += 1;
                        session.last_config = Some(config);
                        session.power_demand_w = metrics.get("power").copied().unwrap_or(0.0);
                        for (metric, value) in &metrics {
                            session.manager.observe(arrival, metric, *value);
                        }
                    });
                    if !touched.contains(&request.tenant) {
                        touched.push(request.tenant);
                    }
                }
                Err(e) => {
                    if matches!(e, ServeError::Shed { .. }) {
                        shed += 1;
                    }
                    let _ = self.store.with(request.tenant, |session| {
                        session.rejected += 1;
                    });
                }
            }
            responses.push(response);
        }

        // 4. one adaptation round per touched tenant, sorted order
        touched.sort_unstable();
        for tenant in touched {
            let _ = self.store.with(tenant, |session| {
                session.manager.adapt(batch_end_s);
            });
        }

        BatchReport {
            responses,
            makespan_s: outcome.makespan_s,
            evaluated: admitted,
            shed,
        }
    }

    /// Total power demand across every tenant's current operating
    /// point, watts — the figure the RTRM's facility capper consumes.
    pub fn aggregate_power_demand_w(&self) -> f64 {
        self.store.fold(0.0, |acc, _, s| acc + s.power_demand_w)
    }

    /// Splits a facility power budget across tenants proportionally to
    /// their demand, via the RTRM's weighted split (idle floor
    /// included). Returns `None` when no tenant is registered.
    pub fn power_split(&self, budget_w: f64) -> Option<Vec<(TenantId, f64)>> {
        let (tenants, demands) = self.store.fold(
            (Vec::new(), Vec::new()),
            |(mut tenants, mut demands), tenant, session| {
                tenants.push(tenant);
                demands.push(session.power_demand_w);
                (tenants, demands)
            },
        );
        let shares = try_weighted_split(budget_w, &demands)?;
        Some(tenants.into_iter().zip(shares).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::goal::{Constraint, Objective};
    use antarex_tuner::{KnobValue, KnowledgeBase, OperatingPoint};

    fn config(level: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(level));
        c
    }

    fn kb() -> KnowledgeBase {
        (1..=4)
            .map(|l| {
                OperatingPoint::new(
                    config(l),
                    [
                        ("latency".to_string(), 0.1 * l as f64),
                        ("quality".to_string(), l as f64),
                        ("power".to_string(), 10.0 * l as f64),
                    ],
                )
            })
            .collect()
    }

    fn manager() -> AppManager {
        let mut m = AppManager::new(kb(), Objective::maximize("quality"));
        m.add_constraint(Constraint::at_most("latency", 0.45));
        m
    }

    /// Probe: latency proportional to level, quality to sqrt(level),
    /// power to level; cost = latency.
    struct Probe;

    impl Evaluator for Probe {
        fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
            let level = config.get_int("level").unwrap_or(1) as f64;
            let scale = features.first().copied().unwrap_or(1.0);
            let latency = 0.1 * level * scale;
            Evaluation {
                metrics: [
                    ("latency".to_string(), latency),
                    ("quality".to_string(), level.sqrt()),
                    ("power".to_string(), 10.0 * level),
                ]
                .into_iter()
                .collect(),
                cost_s: latency,
            }
        }
    }

    fn service() -> TuningService<Probe> {
        TuningService::new(ServiceConfig::default(), Probe)
    }

    fn requests(tenants: &[TenantId]) -> Vec<TuningRequest> {
        tenants
            .iter()
            .enumerate()
            .map(|(i, &tenant)| TuningRequest {
                tenant,
                arrival_s: i as f64,
            })
            .collect()
    }

    #[test]
    fn cache_reuses_design_points_across_tenants() {
        let service = service();
        for tenant in 0..4 {
            service
                .register_tenant(tenant, manager(), vec![1.0])
                .unwrap();
        }
        // all four tenants select the same point on identical features:
        // one probe, three cache hits
        let report = service.serve_batch(&requests(&[0, 1, 2, 3]));
        assert_eq!(report.evaluated, 1);
        let hits = report
            .responses
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|a| a.cache_hit))
            .count();
        assert_eq!(hits, 3);
        assert!(service.cache().hit_rate() > 0.0);
    }

    #[test]
    fn unknown_tenant_is_an_error_not_a_panic() {
        let service = service();
        let report = service.serve_batch(&requests(&[99]));
        assert_eq!(report.responses[0], Err(ServeError::UnknownTenant(99)));
    }

    #[test]
    fn infeasible_sla_reports_typed_error() {
        let service = service();
        let mut m = AppManager::new(kb(), Objective::maximize("quality"));
        m.add_constraint(Constraint::at_most("latency", 0.001));
        service.register_tenant(7, m, vec![1.0]).unwrap();
        let report = service.serve_batch(&requests(&[7]));
        assert_eq!(report.responses[0], Err(ServeError::Infeasible(7)));
        assert_eq!(service.store().with(7, |s| s.rejected).unwrap(), 1);
    }

    #[test]
    fn empty_knowledge_reports_typed_error() {
        let service = service();
        let m = AppManager::new(KnowledgeBase::new(), Objective::maximize("quality"));
        service.register_tenant(5, m, vec![1.0]).unwrap();
        let report = service.serve_batch(&requests(&[5]));
        assert_eq!(report.responses[0], Err(ServeError::EmptyKnowledge(5)));
    }

    #[test]
    fn overflow_is_shed_not_stalled() {
        let config = ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 2,
            },
            ..ServiceConfig::default()
        };
        let service = TuningService::new(config, Probe);
        // distinct features per tenant → no cache sharing, one job each
        for tenant in 0..5u64 {
            service
                .register_tenant(tenant, manager(), vec![1.0 + tenant as f64])
                .unwrap();
        }
        let report = service.serve_batch(&requests(&[0, 1, 2, 3, 4]));
        assert_eq!(report.evaluated, 2);
        assert_eq!(report.shed, 3);
        let shed_errors = report
            .responses
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Shed { .. })))
            .count();
        assert_eq!(shed_errors, 3);
    }

    #[test]
    fn online_learning_downgrades_an_optimistic_tenant() {
        let service = service();
        // the design-time KB promised level 4 at 0.4 s, but this
        // tenant's workload (features scale 2.0) measures 0.8 s — over
        // the 0.45 s SLA; after learning, the manager must walk down
        service.register_tenant(1, manager(), vec![2.0]).unwrap();
        let mut level = 4;
        for round in 0..6 {
            let report = service.serve_batch(&[TuningRequest {
                tenant: 1,
                arrival_s: round as f64,
            }]);
            if let Ok(answer) = &report.responses[0] {
                level = answer.config.get_int("level").unwrap();
            }
        }
        assert!(level < 4, "learned latency must force a downgrade: {level}");
    }

    #[test]
    fn power_demand_aggregates_and_splits() {
        let service = service();
        for tenant in 0..3 {
            service
                .register_tenant(tenant, manager(), vec![1.0])
                .unwrap();
        }
        assert_eq!(service.power_split(300.0).unwrap().len(), 3);
        assert_eq!(service.aggregate_power_demand_w(), 0.0);
        service.serve_batch(&requests(&[0, 1, 2]));
        let demand = service.aggregate_power_demand_w();
        assert!(demand > 0.0, "served tenants must report demand");
        let split = service.power_split(300.0).unwrap();
        let total: f64 = split.iter().map(|(_, w)| w).sum();
        assert!((total - 300.0).abs() < 1e-9, "budget conserved: {total}");
    }

    #[test]
    fn empty_service_has_no_power_split() {
        let service = service();
        assert!(service.power_split(100.0).is_none());
    }

    #[test]
    fn batches_are_deterministic_across_runs() {
        let build = || {
            let service = service();
            for tenant in 0..8 {
                service
                    .register_tenant(tenant, manager(), vec![1.0 + (tenant % 3) as f64])
                    .unwrap();
            }
            service
        };
        let batch = requests(&[0, 1, 2, 3, 4, 5, 6, 7, 0, 3, 6]);
        let a = build().serve_batch(&batch);
        let b = build().serve_batch(&batch);
        assert_eq!(a, b, "parallel evaluation must not leak into outputs");
    }
}
