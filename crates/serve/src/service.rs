//! The multi-tenant autotuning service.
//!
//! One service instance hosts thousands of per-application tuning
//! sessions (the paper's vision of the autotuner as a shared runtime
//! facility rather than a per-process library). A request names a
//! tenant; the service selects the tenant's best feasible operating
//! point, answers from the design-point cache when that point was
//! already measured — for *any* tenant — and otherwise batches a probe
//! onto the parallel evaluation pool. Fresh measurements flow back into
//! the tenant's knowledge base (online learning), and the per-tenant
//! power demands aggregate into the cluster power manager's budget
//! split.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionTier};
use crate::autoscale::{AutoscaleConfig, Autoscaler};
use crate::breaker::{BreakerBank, BreakerConfig};
use crate::cache::{probe_seed, DesignKey, DesignPointCache, Metrics};
use crate::chaos::{chaos_schedule, ChaosConfig, HedgePolicy};
use crate::error::ServeError;
use crate::journal::{take_snapshot, Journal, JournalEntry, Snapshot};
use crate::obs::{ServeObs, ADAPT_SPAN_S, CACHE_PROBE_SPAN_S, LEARN_SPAN_S, SELECT_SPAN_S};
use crate::pool::{EvalJob, EvalPool, Evaluation, PoolConfig, SchedConfig};
use crate::store::{Session, SessionStore, TenantClass, TenantId};
use antarex_obs::{
    largest_remainder_split, nj_to_j, to_nj, EnergyModel, Layer, SpanId, TraceCtx, TraceEvent,
    TraceId, WindowSummary,
};
use antarex_rtrm::checkpoint::daly_interval_s;
use antarex_rtrm::powercap::{split_digest, try_weighted_split_observed};
use antarex_tuner::manager::AppManager;
use antarex_tuner::Configuration;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Virtual cost of answering from the cache, seconds.
const CACHE_LOOKUP_S: f64 = 1e-4;

/// Measures design points for the service.
///
/// Implementations must be pure: the same configuration and features
/// always yield the same evaluation. That is what lets the pool run
/// probes on any number of threads — and the cache reuse them across
/// tenants — without changing a single output byte.
pub trait Evaluator: Sync {
    /// Measures the metrics and virtual compute cost of a
    /// configuration under the given workload features.
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation;

    /// Like [`evaluate`](Evaluator::evaluate), but additionally breaks
    /// the probe into named sub-segments for causal tracing (e.g. the
    /// VM kernel evaluator reports its reference and tuned kernel runs
    /// separately). The returned evaluation must be identical to what
    /// `evaluate` yields for the same inputs. The default reports no
    /// segments.
    fn evaluate_segmented(
        &self,
        config: &Configuration,
        features: &[f64],
    ) -> (Evaluation, Vec<ProbeSegment>) {
        (self.evaluate(config, features), Vec::new())
    }
}

impl<F> Evaluator for F
where
    F: Fn(&Configuration, &[f64]) -> Evaluation + Sync,
{
    fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
        self(config, features)
    }
}

/// One named sub-phase of a probe, reported by
/// [`Evaluator::evaluate_segmented`] for the VM layer of a causal
/// trace. Purely descriptive: segments never feed back into metrics,
/// caching, or scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSegment {
    /// Segment label (e.g. `"reference"`, `"tuned"`).
    pub name: &'static str,
    /// Virtual compute cost of the segment, seconds.
    pub cost_s: f64,
    /// Metered energy of the segment, joules.
    pub energy_j: f64,
}

/// Service sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Session-store shards.
    pub store_shards: usize,
    /// Design-point-cache shards.
    pub cache_shards: usize,
    /// Evaluation-pool sizing.
    pub pool: PoolConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            store_shards: 16,
            cache_shards: 16,
            pool: PoolConfig {
                workers: 4,
                queue_capacity: 256,
            },
        }
    }
}

/// Resilience tuning of one service instance: retry/hedge/deadline
/// policy, circuit-breaker thresholds, and the write-ahead journal with
/// its Daly-informed snapshot cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceConfig {
    /// Deadline, hedging, and retry budget per evaluation job.
    pub hedge: HedgePolicy,
    /// Per-tenant circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Whether state deltas are journaled (required for recovery).
    pub journaled: bool,
    /// Service-MTBF estimate fed to Daly's √(2·C·M) − C snapshot
    /// interval; must be positive when `journaled`.
    pub snapshot_mtbf_s: f64,
    /// Snapshot cost fed to the Daly interval; must be positive when
    /// `journaled`.
    pub snapshot_cost_s: f64,
}

impl ResilienceConfig {
    /// The chaos-hardened profile: hedged retries with deadlines, live
    /// breakers, journal + snapshots on a Daly cadence sized for a
    /// 5-minute service MTBF and a 0.5 s snapshot cost.
    pub fn hardened() -> Self {
        ResilienceConfig {
            hedge: HedgePolicy::hardened(),
            breaker: BreakerConfig::hardened(),
            journaled: true,
            snapshot_mtbf_s: 300.0,
            snapshot_cost_s: 0.5,
        }
    }

    /// Everything off: the pre-hardening service, byte for byte.
    pub fn disabled() -> Self {
        ResilienceConfig {
            hedge: HedgePolicy::disabled(),
            breaker: BreakerConfig::disabled(),
            journaled: false,
            snapshot_mtbf_s: 0.0,
            snapshot_cost_s: 0.0,
        }
    }

    /// The Daly snapshot interval this config implies.
    fn snapshot_interval_s(&self) -> f64 {
        if self.journaled && self.snapshot_mtbf_s > 0.0 && self.snapshot_cost_s > 0.0 {
            daly_interval_s(self.snapshot_mtbf_s, self.snapshot_cost_s)
        } else {
            f64::INFINITY
        }
    }
}

/// The SLO-driven front door: admission-control tiers plus the
/// evaluation pool's autoscaler. Optional — a service without one is
/// byte-identical to the pre-front-door serving tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontDoorConfig {
    /// Per-tenant burn-rate admission tiers.
    pub admission: AdmissionConfig,
    /// Virtual-capacity autoscaling of the evaluation pool.
    pub autoscale: AutoscaleConfig,
}

impl FrontDoorConfig {
    /// The hardened profile: both controllers at their hardened tuning.
    pub fn hardened() -> Self {
        FrontDoorConfig {
            admission: AdmissionConfig::hardened(),
            autoscale: AutoscaleConfig::hardened(),
        }
    }
}

/// The live front-door controllers of one service instance.
#[derive(Debug)]
struct FrontDoor {
    admission: AdmissionController,
    autoscaler: Autoscaler,
}

/// One tuning request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningRequest {
    /// The tenant asking.
    pub tenant: TenantId,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResponse {
    /// The tenant answered.
    pub tenant: TenantId,
    /// Virtual arrival time, seconds.
    pub arrival_s: f64,
    /// The configuration the tenant should deploy.
    pub config: Configuration,
    /// Measured (or cached) metrics of that configuration.
    pub metrics: Metrics,
    /// Virtual service latency: cache lookup, or queue wait plus probe
    /// compute on the evaluation pool.
    pub latency_s: f64,
    /// Whether the design point came from the cache.
    pub cache_hit: bool,
    /// Attributed facility energy of this request, joules: direct
    /// metered probe (or lookup) energy plus a demand-weighted share
    /// of node static and cooling overhead. Zero until the batch's
    /// attribution pass runs; exact in integer nanojoules underneath
    /// (see [`antarex_obs::EnergyLedger`]).
    pub energy_j: f64,
}

/// Outcome of one request batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-request outcomes, aligned with the submitted batch.
    pub responses: Vec<Result<TuningResponse, ServeError>>,
    /// Virtual makespan of the probes the pool ran.
    pub makespan_s: f64,
    /// Probes evaluated (batch-deduplicated misses).
    pub evaluated: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests answered in degraded (cache-only) mode by the SLO
    /// front door.
    pub degraded: usize,
    /// Requests hard-shed by the SLO front door (tenant in the shed
    /// tier).
    pub admission_shed: usize,
    /// Virtual worker capacity the batch's probes were scheduled on.
    pub capacity: usize,
    /// Failed probe attempts re-dispatched with backoff (chaos mode).
    pub retries: u64,
    /// Hedge duplicates dispatched against stragglers (chaos mode).
    pub hedges: u64,
    /// Design points quarantined after failed or corrupted evaluation.
    pub quarantined: u64,
}

/// The autotuning service.
#[derive(Debug)]
pub struct TuningService<E> {
    config: ServiceConfig,
    resilience: ResilienceConfig,
    store: SessionStore,
    cache: DesignPointCache,
    pool: EvalPool,
    evaluator: E,
    chaos: Option<ChaosConfig>,
    breakers: BreakerBank,
    journal: Option<Journal>,
    snapshot: Mutex<Option<Snapshot>>,
    next_snapshot_s: Mutex<f64>,
    front_door: Option<FrontDoor>,
    obs: ServeObs,
    energy: EnergyModel,
    /// Monotone batch ordinal feeding trace-id derivation. Counts
    /// served batches since process start; recovery restarts it at
    /// zero, which renumbers traces but never changes any served
    /// answer or attributed joule.
    batch_ordinal: AtomicU64,
}

impl<E: Evaluator> TuningService<E> {
    /// Creates a service around an evaluator with resilience disabled —
    /// byte-identical to the pre-hardening serving tier.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero shards, workers, or capacity.
    pub fn new(config: ServiceConfig, evaluator: E) -> Self {
        Self::with_resilience(config, ResilienceConfig::disabled(), evaluator)
    }

    /// Creates a service with an explicit resilience profile.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero shards, workers, or capacity.
    pub fn with_resilience(
        config: ServiceConfig,
        resilience: ResilienceConfig,
        evaluator: E,
    ) -> Self {
        let interval = resilience.snapshot_interval_s();
        // the cache and breaker bank count onto cells owned by the
        // metrics registry: module accessors and the exposition read
        // the same atomics
        let obs = ServeObs::default();
        TuningService {
            config,
            resilience,
            store: SessionStore::new(config.store_shards),
            cache: DesignPointCache::with_counters(
                config.cache_shards,
                obs.cache_hits.clone(),
                obs.cache_misses.clone(),
                obs.cache_quarantined.clone(),
            ),
            pool: EvalPool::new(config.pool),
            evaluator,
            chaos: None,
            breakers: BreakerBank::with_trip_counter(resilience.breaker, obs.breaker_trips.clone()),
            journal: resilience
                .journaled
                .then(|| Journal::new(config.store_shards)),
            snapshot: Mutex::new(None),
            next_snapshot_s: Mutex::new(interval),
            front_door: None,
            obs,
            energy: EnergyModel::default(),
            batch_ordinal: AtomicU64::new(0),
        }
    }

    /// Overrides the energy model attributing node static and cooling
    /// overhead to requests (default: [`EnergyModel::default`]).
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Injects a deterministic fault environment: probe scheduling runs
    /// through the fault-aware list scheduler instead of the healthy
    /// one. Retries/hedges/deadlines follow the service's
    /// [`ResilienceConfig`].
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Installs the SLO-driven front door: per-tenant admission tiers
    /// (admit / degrade-to-cache / shed with a `retry_after` hint) fed
    /// by each batch's SLO outcomes, plus an autoscaler that resizes
    /// the pool's *virtual* worker capacity between configured bounds.
    /// Both controllers run on virtual time and work content only, so
    /// the fronted service stays byte-identical at any physical thread
    /// count; their state is journaled and snapshotted for exact crash
    /// recovery.
    ///
    /// # Panics
    ///
    /// Panics when either controller config is inconsistent (inverted
    /// hysteresis thresholds, zero capacity).
    pub fn with_front_door(mut self, front_door: FrontDoorConfig) -> Self {
        let autoscaler = Autoscaler::new(front_door.autoscale);
        self.obs.pool_capacity.set(autoscaler.capacity() as f64);
        self.front_door = Some(FrontDoor {
            admission: AdmissionController::new(front_door.admission),
            autoscaler,
        });
        self
    }

    /// Selects the eval pool's virtual scheduler policies (default and
    /// per tenant class). Scheduling only shapes the virtual replay —
    /// never which probes run or what they return — so it composes
    /// freely with resilience, chaos, the front door, and recovery
    /// (apply it after [`recover`](TuningService::recover); the journal
    /// records outcomes, not placement, so replay is policy-agnostic).
    pub fn with_scheduler(mut self, sched: SchedConfig) -> Self {
        self.pool = self.pool.with_sched(sched);
        self
    }

    /// Rebuilds a service after a crash from its persistent state: the
    /// last snapshot (if any) plus the journal suffix in append order.
    /// `make_manager` must be the deterministic factory original
    /// registrations used. The recovered in-memory state is
    /// bit-identical to the crashed instance's.
    ///
    /// # Panics
    ///
    /// Panics if the config names zero shards, workers, or capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn recover<F>(
        config: ServiceConfig,
        resilience: ResilienceConfig,
        chaos: Option<ChaosConfig>,
        front_door: Option<FrontDoorConfig>,
        evaluator: E,
        snapshot: Option<Snapshot>,
        entries: &[JournalEntry],
        make_manager: &F,
    ) -> Self
    where
        F: Fn(TenantId) -> AppManager,
    {
        let mut service = Self::with_resilience(config, resilience, evaluator);
        if let Some(c) = chaos {
            service = service.with_chaos(c);
        }
        if let Some(fd) = front_door {
            service = service.with_front_door(fd);
        }
        if let Some(snap) = &snapshot {
            service.store = SessionStore::recover(config.store_shards, snap.sessions.clone());
            for (key, metrics) in &snap.cache {
                service.cache.insert(key.clone(), metrics.clone());
            }
            service.breakers.restore(&snap.breakers);
            if let Some(fd) = &service.front_door {
                fd.admission.restore(&snap.admission);
                if let Some(state) = snap.autoscaler {
                    fd.autoscaler.restore(state);
                    service.obs.pool_capacity.set(state.capacity as f64);
                }
            }
            *lock_or_recover(&service.next_snapshot_s) =
                snap.at_s + resilience.snapshot_interval_s();
        }
        crate::journal::replay(
            entries,
            &service.store,
            &service.cache,
            &service.breakers,
            service
                .front_door
                .as_ref()
                .map(|fd| (&fd.admission, &fd.autoscaler)),
            make_manager,
        );
        if let Some(fd) = &service.front_door {
            service
                .obs
                .pool_capacity
                .set(fd.autoscaler.capacity() as f64);
        }
        *lock_or_recover(&service.snapshot) = snapshot;
        service
    }

    /// Simulates a crash: consumes the in-memory service and returns
    /// only what a real deployment would find on stable storage — the
    /// last snapshot and the journal suffix since it.
    pub fn crash(self) -> (Option<Snapshot>, Vec<JournalEntry>) {
        let snapshot = self
            .snapshot
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let entries = self
            .journal
            .map(|j| j.entries_in_order())
            .unwrap_or_default();
        (snapshot, entries)
    }

    /// The sizing the service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The session store.
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The design-point cache.
    pub fn cache(&self) -> &DesignPointCache {
        &self.cache
    }

    /// The per-tenant circuit breakers.
    pub fn breakers(&self) -> &BreakerBank {
        &self.breakers
    }

    /// The resilience profile in force.
    pub fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    /// The admission controller, when a front door is installed.
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.front_door.as_ref().map(|fd| &fd.admission)
    }

    /// The pool autoscaler, when a front door is installed.
    pub fn autoscaler(&self) -> Option<&Autoscaler> {
        self.front_door.as_ref().map(|fd| &fd.autoscaler)
    }

    /// The observability plane: metrics registry, span tracer, and
    /// per-tenant SLO burn tracking for this instance.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// Appends a delta to the write-ahead journal (no-op when the
    /// service is not journaled).
    fn journal_append(&self, entry: impl FnOnce() -> JournalEntry) {
        if let Some(journal) = &self.journal {
            journal.append(entry());
        }
    }

    /// Registers a [`TenantClass::Generic`] tenant with its runtime
    /// manager and workload features.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        manager: AppManager,
        features: Vec<f64>,
    ) -> Result<(), ServeError> {
        self.register_tenant_classed(tenant, TenantClass::Generic, manager, features)
    }

    /// Registers a tenant under an explicit workload class. The class
    /// selects the scheduler policy its probes are replayed with (per
    /// the pool's [`crate::pool::SchedConfig`]) and the
    /// metric bucket its makespans land in; it is journaled so crash
    /// recovery restores it exactly.
    pub fn register_tenant_classed(
        &self,
        tenant: TenantId,
        class: TenantClass,
        manager: AppManager,
        features: Vec<f64>,
    ) -> Result<(), ServeError> {
        let result = self
            .store
            .insert(tenant, Session::classed(manager, features.clone(), class));
        if result.is_ok() {
            self.journal_append(|| JournalEntry::Register {
                tenant,
                features,
                class,
            });
        }
        result
    }

    /// Renders the full serving state — sessions, managers, cache
    /// entries, breakers — as one deterministic string. Two services
    /// with bit-identical state produce identical reports; the crash-
    /// recovery experiment compares exactly this.
    pub fn state_report(&self) -> String {
        let mut out = String::new();
        self.store.fold((), |(), tenant, session| {
            let _ = writeln!(
                out,
                "tenant {tenant}: class={} requests={} rejected={} power={:.6} last={:?} manager={:?}",
                session.class.label(),
                session.requests,
                session.rejected,
                session.power_demand_w,
                session.last_config,
                session.manager,
            );
        });
        for (key, metrics) in self.cache.entries() {
            let _ = writeln!(out, "cache {key:?} => {metrics:?}");
        }
        for (tenant, breaker) in self.breakers.snapshot() {
            let _ = writeln!(
                out,
                "breaker {tenant}: {} trips={}",
                breaker.state_label(),
                breaker.trips()
            );
        }
        if let Some(fd) = &self.front_door {
            for (tenant, state) in fd.admission.snapshot() {
                let _ = writeln!(
                    out,
                    "admission {tenant}: {} burn={:.9} since={:.3}",
                    state.tier.label(),
                    state.burn,
                    state.since_s,
                );
            }
            let scaler = fd.autoscaler.snapshot();
            let _ = writeln!(
                out,
                "autoscaler: capacity={} last_change={:.3} ups={} downs={}",
                scaler.capacity, scaler.last_change_s, scaler.scale_ups, scaler.scale_downs,
            );
        }
        out
    }

    /// Serves one batch of requests.
    ///
    /// The batch is processed in arrival order: operating points are
    /// selected per tenant (tenants with an open circuit fail fast
    /// first), cache misses are deduplicated and evaluated in parallel
    /// (bounded queue; overflow is shed). Under an injected
    /// [`ChaosConfig`] each probe is replayed through the fault-aware
    /// scheduler — crashes retried with capped backoff, stragglers
    /// hedged, results integrity-checked, deadlines enforced. Verified
    /// results land in the cache and in each tenant's knowledge base;
    /// failed design points are quarantined so waiters re-probe;
    /// breakers take success/failure feedback; and every touched tenant
    /// runs one adaptation round at the batch's end time. When
    /// journaling is on, every mutation is appended to the WAL first
    /// and a snapshot is taken on the Daly cadence.
    pub fn serve_batch(&self, requests: &[TuningRequest]) -> BatchReport {
        // 1. select per request, splitting cache hits from misses
        enum Pending {
            Err(ServeError),
            Hit(Configuration, Metrics),
            Job {
                config: Configuration,
                job_id: usize,
                coalesced: bool,
            },
        }
        self.obs.requests.add(requests.len() as u64);
        let breaker_on = self.resilience.breaker.failure_threshold > 0;
        let mut pending: Vec<Pending> = Vec::with_capacity(requests.len());
        let mut jobs: Vec<EvalJob> = Vec::new();
        let mut job_of_key: BTreeMap<DesignKey, usize> = BTreeMap::new();
        let mut degraded = 0usize;
        let mut admission_shed = 0usize;
        // causal tracing: every request derives a TraceCtx from
        // (tenant, probe seed, batch ordinal, position) — no wall
        // clock — so trace ids are byte-identical at any worker count.
        // One (ctx, class) row per request, aligned with `pending`.
        let batch_ordinal = self.batch_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut req_meta: Vec<(TraceCtx, TenantClass)> = Vec::with_capacity(requests.len());
        let record_admission = |ctx: TraceCtx, arrival_s: f64, tier_name: &'static str| {
            if ctx.sampled {
                self.obs.plane.trace.record(TraceEvent {
                    trace: ctx.id,
                    tenant: ctx.tenant,
                    layer: Layer::Admission,
                    name: tier_name,
                    start_s: arrival_s,
                    end_s: arrival_s,
                    value: 0.0,
                    span: SpanId::NONE,
                });
            }
        };
        for request in requests {
            // the SLO front door runs first: a shed-tier tenant is
            // rejected before it costs a breaker check, a select, or
            // pool capacity — exactly one fail-fast path per request
            let tier = self
                .front_door
                .as_ref()
                .map(|fd| fd.admission.tier(request.tenant))
                .unwrap_or(AdmissionTier::Admit);
            if tier == AdmissionTier::Shed {
                admission_shed += 1;
                self.obs.admission_shed.inc();
                let retry_after_ms = self
                    .front_door
                    .as_ref()
                    .map(|fd| fd.admission.retry_after_ms(request.tenant))
                    .unwrap_or(0);
                let ctx = self.obs.plane.trace.derive(
                    request.tenant,
                    0,
                    batch_ordinal,
                    req_meta.len() as u32,
                );
                record_admission(ctx, request.arrival_s, "shed");
                req_meta.push((ctx, TenantClass::Generic));
                pending.push(Pending::Err(ServeError::AdmissionRejected {
                    tenant: request.tenant,
                    retry_after_ms,
                }));
                continue;
            }
            // fail fast for tenants whose circuit is open: the request
            // costs a breaker check, not pool capacity
            if breaker_on
                && !self
                    .breakers
                    .with(request.tenant, |b| b.allow(request.arrival_s))
            {
                let ctx = self.obs.plane.trace.derive(
                    request.tenant,
                    0,
                    batch_ordinal,
                    req_meta.len() as u32,
                );
                record_admission(ctx, request.arrival_s, "circuit_open");
                req_meta.push((ctx, TenantClass::Generic));
                pending.push(Pending::Err(ServeError::CircuitOpen {
                    tenant: request.tenant,
                }));
                continue;
            }
            if breaker_on {
                self.journal_append(|| JournalEntry::BreakerAllow {
                    tenant: request.tenant,
                    time_s: request.arrival_s,
                });
            }
            let selected = self.store.with(request.tenant, |session| {
                if session.manager.knowledge().is_empty() {
                    return Err(ServeError::EmptyKnowledge(request.tenant));
                }
                match session.manager.select() {
                    Some(config) => Ok((config.clone(), session.features.clone(), session.class)),
                    None => Err(ServeError::Infeasible(request.tenant)),
                }
            });
            // `select()` mutates the manager (deploy/switch): journal it
            // whenever it ran, even when it found the SLA infeasible
            if matches!(&selected, Ok(Ok(_)) | Ok(Err(ServeError::Infeasible(_)))) {
                self.obs.selects.inc();
                self.journal_append(|| JournalEntry::Select {
                    tenant: request.tenant,
                });
            }
            let seq = req_meta.len() as u32;
            let mut ctx = self
                .obs
                .plane
                .trace
                .derive(request.tenant, 0, batch_ordinal, seq);
            let mut req_class = TenantClass::Generic;
            let entry = match selected {
                Err(e) | Ok(Err(e)) => Pending::Err(e),
                Ok(Ok((config, features, class))) if tier == AdmissionTier::Degrade => {
                    // degraded tier: cache-only service. A memoized
                    // design point still answers (cheap, no pool), but
                    // the tenant gets no fresh probe — cache-miss
                    // demand is rejected and fed back as violation
                    // pressure so a probe-hungry tenant escalates to
                    // shed while a coasting one recovers
                    degraded += 1;
                    self.obs.admission_degraded.inc();
                    ctx = self.obs.plane.trace.derive(
                        request.tenant,
                        probe_seed(&config, &features),
                        batch_ordinal,
                        seq,
                    );
                    req_class = class;
                    let key = DesignKey::new(&config, &features);
                    match self.cache.get(&key) {
                        Some(metrics) => Pending::Hit(config, metrics),
                        None => Pending::Err(ServeError::AdmissionRejected {
                            tenant: request.tenant,
                            retry_after_ms: self
                                .front_door
                                .as_ref()
                                .map(|fd| fd.admission.retry_after_ms(request.tenant))
                                .unwrap_or(0),
                        }),
                    }
                }
                Ok(Ok((config, features, class))) => {
                    ctx = self.obs.plane.trace.derive(
                        request.tenant,
                        probe_seed(&config, &features),
                        batch_ordinal,
                        seq,
                    );
                    req_class = class;
                    let key = DesignKey::new(&config, &features);
                    if let Some(&job_id) = job_of_key.get(&key) {
                        // an earlier request in this batch already queued
                        // this exact design point: coalesce onto it
                        Pending::Job {
                            config,
                            job_id,
                            coalesced: true,
                        }
                    } else {
                        match self.cache.get(&key) {
                            Some(metrics) => Pending::Hit(config, metrics),
                            None => {
                                let job_id = jobs.len();
                                // the job carries the first owner's
                                // trace: sched/VM events link to it
                                jobs.push(EvalJob {
                                    id: job_id,
                                    tenant: request.tenant,
                                    class,
                                    config: config.clone(),
                                    features,
                                    trace: ctx,
                                });
                                job_of_key.insert(key, job_id);
                                Pending::Job {
                                    config,
                                    job_id,
                                    coalesced: false,
                                }
                            }
                        }
                    }
                }
            };
            record_admission(
                ctx,
                request.arrival_s,
                match tier {
                    AdmissionTier::Admit => "admit",
                    AdmissionTier::Degrade => "degrade",
                    AdmissionTier::Shed => "shed",
                },
            );
            req_meta.push((ctx, req_class));
            pending.push(entry);
        }

        let batch_start_s = requests
            .iter()
            .map(|r| r.arrival_s)
            .fold(f64::INFINITY, f64::min);
        let batch_start_s = if batch_start_s.is_finite() {
            batch_start_s
        } else {
            0.0
        };

        // autoscaling decision at the batch start: queue depth is this
        // window's deduplicated probe demand, burn is the worst EWMA
        // among still-admitted tenants. The decision resizes *virtual*
        // capacity only — physical parallelism stays at the pool's
        // config — so outputs stay byte-identical at any thread count.
        let mut capacity = self.pool.config().workers;
        if let Some(fd) = &self.front_door {
            capacity = fd.autoscaler.capacity();
            if !requests.is_empty() {
                if let Some(resized) = fd.autoscaler.decide(
                    batch_start_s,
                    jobs.len(),
                    fd.admission.max_admitted_burn(),
                ) {
                    capacity = resized;
                    self.obs.scale_events.inc();
                    self.obs.pool_capacity.set(resized as f64);
                    self.journal_append(|| JournalEntry::Scale {
                        time_s: batch_start_s,
                        workers: resized,
                    });
                }
            }
        }

        // 2. evaluate the deduplicated misses in parallel (the probes
        // are pure and computed exactly once; under chaos only the
        // virtual scheduling of those evaluations changes)
        let evaluator = &self.evaluator;
        // sampled jobs additionally report VM sub-segments for the
        // trace; the map is keyed by job id so insertion order under
        // physical parallelism cannot influence anything downstream
        let segment_stash: Mutex<BTreeMap<usize, Vec<ProbeSegment>>> = Mutex::new(BTreeMap::new());
        let outcome = self
            .pool
            .evaluate_batch_on(jobs, capacity, &|job: &EvalJob| {
                if job.trace.sampled {
                    let (evaluation, segments) =
                        evaluator.evaluate_segmented(&job.config, &job.features);
                    if !segments.is_empty() {
                        lock_or_recover(&segment_stash).insert(job.id, segments);
                    }
                    evaluation
                } else {
                    evaluator.evaluate(&job.config, &job.features)
                }
            });
        let segment_stash = lock_or_recover(&segment_stash);
        let admitted = outcome.results.len();
        let mut retries = 0u64;
        let mut hedges = 0u64;
        let mut quarantined = 0u64;
        // per admitted job: virtual completion relative to batch start,
        // or the typed error that ended it
        let (job_outcomes, makespan_s) = match &self.chaos {
            Some(chaos) => {
                let evaluations: Vec<Evaluation> = outcome
                    .results
                    .iter()
                    .map(|r| r.evaluation.clone())
                    .collect();
                let poisoned: Vec<bool> = outcome
                    .results
                    .iter()
                    .map(|r| chaos.poisoned_tenants.contains(&r.job.tenant))
                    .collect();
                let (outcomes, stats, makespan) = chaos_schedule(
                    &evaluations,
                    &poisoned,
                    capacity,
                    batch_start_s,
                    chaos,
                    &self.resilience.hedge,
                );
                for s in &stats {
                    retries += u64::from(s.retries);
                    hedges += u64::from(s.hedges);
                }
                let relative: Vec<Result<f64, ServeError>> = outcomes
                    .into_iter()
                    .map(|o| o.map(|t| t - batch_start_s))
                    .collect();
                (relative, makespan)
            }
            None => (
                outcome.results.iter().map(|r| Ok(r.completion_s)).collect(),
                outcome.makespan_s,
            ),
        };
        self.obs.evaluated.add(admitted as u64);
        self.obs.retries.add(retries);
        self.obs.hedges.add(hedges);
        self.obs.makespan.record(makespan_s);
        // scheduler accounting: batch-level, so the 25 ns hot-path
        // budget is untouched. Stolen jobs attribute to their tenant
        // class; per-class makespan is the latest completion among that
        // class's jobs in the pool's (chaos-free) schedule.
        if !outcome.results.is_empty() {
            self.obs.sched_steals.add(outcome.stats.steals);
            self.obs.sched_steal_fails.add(outcome.stats.steal_fails);
            self.obs
                .sched_queue_depth
                .record(outcome.stats.max_queue_depth as f64);
            for &job_id in &outcome.stats.stolen_jobs {
                let class = outcome.results[job_id].job.class;
                self.obs.class_steals[class.index()].inc();
            }
            let mut class_makespan = [f64::NEG_INFINITY; TenantClass::COUNT];
            for result in &outcome.results {
                let slot = &mut class_makespan[result.job.class.index()];
                *slot = slot.max(result.completion_s);
            }
            for (index, &span) in class_makespan.iter().enumerate() {
                if span.is_finite() {
                    self.obs.class_makespan[index].record(span);
                }
            }
        }

        // trace spans record *work content* on virtual time — a probe's
        // compute cost, a lookup's nominal cost — never queue placement,
        // so the retained trace is byte-identical at any worker count
        let batch_span = if requests.is_empty() {
            SpanId::NONE
        } else {
            let total_cost_s: f64 = outcome.results.iter().map(|r| r.evaluation.cost_s).sum();
            let max_arrival_s = requests
                .iter()
                .map(|r| r.arrival_s)
                .fold(batch_start_s, f64::max);
            self.obs.plane.tracer.record(
                "batch",
                None,
                SpanId::NONE,
                batch_start_s,
                max_arrival_s + total_cost_s,
            )
        };
        for result in &outcome.results {
            let eval_span = self.obs.plane.tracer.record(
                "eval",
                Some(result.job.tenant),
                batch_span,
                batch_start_s,
                batch_start_s + result.evaluation.cost_s,
            );
            let ctx = result.job.trace;
            if !ctx.sampled {
                continue;
            }
            // sched layer: where the pool's virtual schedule placed the
            // probe (completion relative to batch start, chaos-free
            // view); value carries the probe's compute cost
            self.obs.plane.trace.record(TraceEvent {
                trace: ctx.id,
                tenant: ctx.tenant,
                layer: Layer::Sched,
                name: "place",
                start_s: batch_start_s,
                end_s: batch_start_s + result.completion_s,
                value: result.evaluation.cost_s,
                span: eval_span,
            });
            // VM layer: the probe's metered sub-segments laid out
            // sequentially on virtual time; value carries each
            // segment's metered joules
            if let Some(segments) = segment_stash.get(&result.job.id) {
                let mut seg_start_s = batch_start_s;
                for segment in segments {
                    self.obs.plane.trace.record(TraceEvent {
                        trace: ctx.id,
                        tenant: ctx.tenant,
                        layer: Layer::Vm,
                        name: segment.name,
                        start_s: seg_start_s,
                        end_s: seg_start_s + segment.cost_s,
                        value: segment.energy_j,
                        span: eval_span,
                    });
                    seg_start_s += segment.cost_s;
                }
            }
        }

        // verified results are memoized; failed design points are
        // quarantined so coalesced waiters re-probe next time instead
        // of being served a poisoned entry
        for (result, job_outcome) in outcome.results.iter().zip(&job_outcomes) {
            let key = DesignKey::new(&result.job.config, &result.job.features);
            match job_outcome {
                Ok(_) => {
                    self.cache
                        .insert(key.clone(), result.evaluation.metrics.clone());
                    self.journal_append(|| JournalEntry::CacheInsert {
                        key,
                        metrics: result.evaluation.metrics.clone(),
                    });
                }
                Err(_) => {
                    self.cache.quarantine(&key);
                    quarantined += 1;
                    self.journal_append(|| JournalEntry::Quarantine { key });
                }
            }
        }

        // 3. answer requests in order, feeding measurements back
        let mut responses: Vec<Result<TuningResponse, ServeError>> =
            Vec::with_capacity(requests.len());
        let mut shed = 0;
        let mut touched: Vec<TenantId> = Vec::new();
        let mut batch_end_s = f64::NEG_INFINITY;
        // per-tenant (checked, violations) the front door consumes at
        // the batch end; every request's tenant gets an entry so a
        // quiet (fully shed) tenant still decays toward readmission
        let mut slo_tally: BTreeMap<TenantId, (u64, u64)> = BTreeMap::new();
        let front_door_on = self.front_door.is_some();
        // energy attribution: one row per *served* response, carrying
        // its direct metered nanojoules (probe energy for fresh
        // evaluations, nominal lookup energy for cache answers). The
        // overhead split and the ledger window close after the loop.
        struct ServedRow {
            index: usize,
            tenant: TenantId,
            class: TenantClass,
            ctx: TraceCtx,
            arrival_s: f64,
            direct_nj: u64,
        }
        let lookup_nj = to_nj(self.energy.cache_lookup_w * CACHE_LOOKUP_S);
        let mut served_rows: Vec<ServedRow> = Vec::new();
        let mut cache_lookups = 0u64;
        for (index, (request, entry)) in requests.iter().zip(pending).enumerate() {
            batch_end_s = batch_end_s.max(request.arrival_s);
            if front_door_on {
                slo_tally.entry(request.tenant).or_default();
            }
            // `work_s` is the request's worker-invariant span width: the
            // probe's compute cost for a fresh evaluation, the nominal
            // lookup cost for cache answers, zero for errors
            let (response, work_s, direct_nj) = match entry {
                Pending::Err(e) => (Err(e), 0.0, 0u64),
                Pending::Hit(config, metrics) => (
                    Ok(TuningResponse {
                        tenant: request.tenant,
                        arrival_s: request.arrival_s,
                        config,
                        metrics,
                        latency_s: CACHE_LOOKUP_S,
                        cache_hit: true,
                        energy_j: 0.0,
                    }),
                    CACHE_LOOKUP_S,
                    lookup_nj,
                ),
                Pending::Job {
                    config,
                    job_id,
                    coalesced,
                } => {
                    if job_id < admitted {
                        match &job_outcomes[job_id] {
                            Ok(completion_s) => {
                                if coalesced {
                                    self.cache.note_coalesced_hit();
                                }
                                (
                                    Ok(TuningResponse {
                                        tenant: request.tenant,
                                        arrival_s: request.arrival_s,
                                        config,
                                        metrics: outcome.results[job_id].evaluation.metrics.clone(),
                                        latency_s: *completion_s,
                                        cache_hit: coalesced,
                                        energy_j: 0.0,
                                    }),
                                    if coalesced {
                                        CACHE_LOOKUP_S
                                    } else {
                                        outcome.results[job_id].evaluation.cost_s
                                    },
                                    if coalesced {
                                        lookup_nj
                                    } else {
                                        to_nj(outcome.results[job_id].evaluation.energy_j)
                                    },
                                )
                            }
                            // coalesced waiters share their job's fate
                            Err(e) => (Err(e.clone()), 0.0, 0),
                        }
                    } else {
                        (
                            Err(ServeError::Shed {
                                capacity: self.pool.config().queue_capacity,
                            }),
                            0.0,
                            0,
                        )
                    }
                }
            };
            let request_span = self.obs.plane.tracer.record(
                "request",
                Some(request.tenant),
                batch_span,
                request.arrival_s,
                request.arrival_s + work_s,
            );
            match &response {
                Ok(answer) => {
                    let metrics = answer.metrics.clone();
                    let config = answer.config.clone();
                    let arrival = answer.arrival_s;
                    self.obs.served.inc();
                    if answer.cache_hit {
                        self.obs.cache_hit_responses.inc();
                        cache_lookups += 1;
                    }
                    let (ctx, class) = req_meta[index];
                    served_rows.push(ServedRow {
                        index,
                        tenant: request.tenant,
                        class,
                        ctx,
                        arrival_s: arrival,
                        direct_nj,
                    });
                    self.obs.learns.add(metrics.len() as u64);
                    self.obs.latency.record(answer.latency_s);
                    let slo_met =
                        self.obs
                            .check_latency_slo(request.tenant, arrival, answer.latency_s);
                    if front_door_on {
                        let tally = slo_tally.entry(request.tenant).or_default();
                        tally.0 += 1;
                        tally.1 += u64::from(!slo_met);
                    }
                    let select_end_s = arrival + SELECT_SPAN_S;
                    self.obs.plane.tracer.record(
                        "select",
                        Some(request.tenant),
                        request_span,
                        arrival,
                        select_end_s,
                    );
                    self.obs.plane.tracer.record(
                        "cache_probe",
                        Some(request.tenant),
                        request_span,
                        select_end_s,
                        select_end_s + CACHE_PROBE_SPAN_S,
                    );
                    self.obs.plane.tracer.record(
                        "learn",
                        Some(request.tenant),
                        request_span,
                        arrival + work_s,
                        arrival + work_s + LEARN_SPAN_S,
                    );
                    let _ = self.store.with(request.tenant, |session| {
                        session.requests += 1;
                        session.last_config = Some(config.clone());
                        session.power_demand_w = metrics.get("power").copied().unwrap_or(0.0);
                        for (metric, value) in &metrics {
                            session.manager.observe(arrival, metric, *value);
                        }
                    });
                    if breaker_on {
                        self.breakers
                            .with(request.tenant, |b| b.on_success(arrival));
                    }
                    self.journal_append(|| JournalEntry::Learn {
                        tenant: request.tenant,
                        time_s: arrival,
                        config,
                        metrics,
                    });
                    if !touched.contains(&request.tenant) {
                        touched.push(request.tenant);
                    }
                }
                Err(e) => {
                    if matches!(e, ServeError::Shed { .. }) {
                        shed += 1;
                    }
                    // classification mirrors the drive loop's: shed is
                    // load (queue overflow or deliberate backpressure),
                    // infrastructure faults are failures, tenant
                    // contract errors are rejections
                    match e {
                        ServeError::Shed { .. } | ServeError::AdmissionRejected { .. } => {
                            self.obs.shed.inc()
                        }
                        ServeError::WorkerFailed { .. }
                        | ServeError::Deadline
                        | ServeError::CircuitOpen { .. } => self.obs.failed.inc(),
                        _ => self.obs.rejected.inc(),
                    }
                    if front_door_on {
                        // feedback: an infrastructure failure burns the
                        // tenant's budget (the service answered badly),
                        // and unmet probe demand counts too — a queue
                        // overflow on an admitted tenant, or a degraded
                        // tenant's rejected cache miss. That is what
                        // escalates an abuser to the shed tier: a
                        // flooding tenant burns even while its probes
                        // only ever overflow the queue, while a tenant
                        // mostly served from cache dilutes the odd
                        // overflow below the degrade threshold. A hard
                        // shed contributes nothing, so a backed-off
                        // tenant decays home.
                        let burned = match &e {
                            ServeError::WorkerFailed { .. }
                            | ServeError::Deadline
                            | ServeError::Shed { .. } => true,
                            ServeError::AdmissionRejected { .. } => {
                                self.front_door.as_ref().is_some_and(|fd| {
                                    fd.admission.tier(request.tenant) == AdmissionTier::Degrade
                                })
                            }
                            _ => false,
                        };
                        if burned {
                            let tally = slo_tally.entry(request.tenant).or_default();
                            tally.0 += 1;
                            tally.1 += 1;
                        }
                    }
                    // worker faults and missed deadlines say the eval
                    // path is unhealthy for this tenant; shed, open
                    // circuits, and contract errors do not
                    let feedback = breaker_on
                        && matches!(e, ServeError::WorkerFailed { .. } | ServeError::Deadline);
                    if feedback {
                        self.breakers
                            .with(request.tenant, |b| b.on_failure(request.arrival_s));
                    }
                    let known = self
                        .store
                        .with(request.tenant, |session| {
                            session.rejected += 1;
                        })
                        .is_ok();
                    if known {
                        self.journal_append(|| JournalEntry::Reject {
                            tenant: request.tenant,
                            time_s: request.arrival_s,
                            breaker_feedback: feedback,
                        });
                    }
                }
            }
            responses.push(response);
        }

        // 3b. close the batch's energy window. All bookkeeping is in
        // integer nanojoules with exactly one rounding per meter
        // reading, so Σ attributed + idle ≡ the facility meter to the
        // last bit (the ledger re-checks the invariant per window).
        if !requests.is_empty() {
            // direct metered energy: every probe the pool ran (served
            // or not) plus one nominal lookup per cache-hit answer
            let spent_eval_nj: u64 = outcome
                .results
                .iter()
                .map(|r| to_nj(r.evaluation.energy_j))
                .sum();
            let direct_nj = spent_eval_nj + lookup_nj * cache_lookups;
            // node static power burns over busy *work content* — never
            // the worker-dependent makespan — keeping the window
            // byte-identical at any physical or virtual worker count
            let busy_s: f64 = outcome
                .results
                .iter()
                .map(|r| r.evaluation.cost_s)
                .sum::<f64>()
                + cache_lookups as f64 * CACHE_LOOKUP_S;
            let static_nj = to_nj(self.energy.node_static_w * busy_s);
            let it_nj = direct_nj + static_nj;
            let cooling_nj = to_nj(self.energy.cooling_overhead * nj_to_j(it_nj as u128));
            let facility_nj = it_nj + cooling_nj;
            let overhead_nj = static_nj + cooling_nj;
            // overhead splits across served requests proportionally to
            // their direct demand (largest remainder, so shares sum
            // exactly); failed probes' direct energy stays unattributed
            let weights: Vec<u64> = served_rows.iter().map(|r| r.direct_nj).collect();
            let shares = largest_remainder_split(overhead_nj, &weights);
            let mut attributed_nj = 0u64;
            let mut per_tenant: BTreeMap<TenantId, u64> = BTreeMap::new();
            for (row, &share) in served_rows.iter().zip(&shares) {
                let request_nj = row.direct_nj + share;
                attributed_nj += request_nj;
                *per_tenant.entry(row.tenant).or_default() += request_nj;
                let energy_j = nj_to_j(request_nj as u128);
                if let Ok(answer) = &mut responses[row.index] {
                    answer.energy_j = energy_j;
                }
                self.obs.class_energy[row.class.index()].record(energy_j);
                // observed-only SLO: burn accrues under the `energy`
                // objective but no admission tier acts on it yet
                let _ = self
                    .obs
                    .check_energy_slo(row.tenant, row.arrival_s, energy_j);
                if row.ctx.sampled {
                    self.obs.plane.trace.record(TraceEvent {
                        trace: row.ctx.id,
                        tenant: row.ctx.tenant,
                        layer: Layer::Serve,
                        name: "energy",
                        start_s: row.arrival_s,
                        end_s: row.arrival_s,
                        value: energy_j,
                        span: SpanId::NONE,
                    });
                }
            }
            let idle_nj = facility_nj - attributed_nj;
            self.obs.energy_facility_nj.add(facility_nj);
            self.obs.energy_attributed_nj.add(attributed_nj);
            self.obs.energy_idle_nj.add(idle_nj);
            self.obs.energy_windows.inc();
            let per_tenant_rows: Vec<(TenantId, u64)> = per_tenant.into_iter().collect();
            self.obs.plane.energy.record_window(
                WindowSummary {
                    index: batch_ordinal,
                    requests: served_rows.len() as u64,
                    direct_nj,
                    overhead_nj,
                    facility_nj,
                    attributed_nj,
                    idle_nj,
                },
                &per_tenant_rows,
            );
        }

        // 4. one adaptation round per touched tenant, sorted order
        touched.sort_unstable();
        for tenant in touched {
            let _ = self.store.with(tenant, |session| {
                session.manager.adapt(batch_end_s);
            });
            self.obs.adapts.inc();
            self.obs.plane.tracer.record(
                "adapt",
                Some(tenant),
                batch_span,
                batch_end_s,
                batch_end_s + ADAPT_SPAN_S,
            );
            self.journal_append(|| JournalEntry::Adapt {
                tenant,
                now_s: batch_end_s,
            });
        }

        // feed the batch's SLO outcomes to the admission controller:
        // one EWMA window per tenant at the batch end, journaled so
        // replay reproduces every tier transition bit-identically
        if let Some(fd) = &self.front_door {
            if batch_end_s.is_finite() {
                for (&tenant, &(checked, violations)) in &slo_tally {
                    if fd
                        .admission
                        .update(tenant, batch_end_s, checked, violations)
                        .is_some()
                    {
                        self.obs.admission_transitions.inc();
                    }
                    self.journal_append(|| JournalEntry::AdmissionUpdate {
                        tenant,
                        time_s: batch_end_s,
                        checked,
                        violations,
                    });
                }
            }
        }

        // 5. Daly-informed snapshot cadence: checkpoint the full state
        // and compact the journal once the interval has elapsed
        if let Some(journal) = &self.journal {
            if batch_end_s.is_finite() {
                let mut due = lock_or_recover(&self.next_snapshot_s);
                if batch_end_s >= *due {
                    let snap = take_snapshot(
                        batch_end_s,
                        journal,
                        &self.store,
                        &self.cache,
                        &self.breakers,
                        self.front_door
                            .as_ref()
                            .map(|fd| (&fd.admission, &fd.autoscaler)),
                    );
                    journal.compact(snap.through_seq);
                    *lock_or_recover(&self.snapshot) = Some(snap);
                    let interval = self.resilience.snapshot_interval_s();
                    while *due <= batch_end_s {
                        *due += interval;
                    }
                }
            }
        }

        BatchReport {
            responses,
            makespan_s,
            evaluated: admitted,
            shed,
            degraded,
            admission_shed,
            capacity,
            retries,
            hedges,
            quarantined,
        }
    }

    /// Total power demand across every tenant's current operating
    /// point, watts — the figure the RTRM's facility capper consumes.
    pub fn aggregate_power_demand_w(&self) -> f64 {
        self.store.fold(0.0, |acc, _, s| acc + s.power_demand_w)
    }

    /// Splits a facility power budget across tenants proportionally to
    /// their demand, via the RTRM's weighted split (idle floor
    /// included). Returns `None` when no tenant is registered.
    pub fn power_split(&self, budget_w: f64) -> Option<Vec<(TenantId, f64)>> {
        let (tenants, demands) = self.store.fold(
            (Vec::new(), Vec::new()),
            |(mut tenants, mut demands), tenant, session| {
                tenants.push(tenant);
                demands.push(session.power_demand_w);
                (tenants, demands)
            },
        );
        let shares = try_weighted_split_observed(budget_w, &demands, &self.obs.powercap)?;
        // RTRM layer of the causal trace: a cap decision is not tied
        // to one request, so its trace id is the split's own digest —
        // stable across runs, linked to requests by the shared store
        self.obs.plane.trace.record(TraceEvent {
            trace: TraceId(u128::from(split_digest(budget_w, &shares).max(1))),
            tenant: 0,
            layer: Layer::Rtrm,
            name: "power_split",
            start_s: 0.0,
            end_s: 0.0,
            value: budget_w,
            span: SpanId::NONE,
        });
        Some(tenants.into_iter().zip(shares).collect())
    }
}

/// Locks a mutex, recovering the guarded data from a poisoned lock —
/// a panic under another holder leaves these states structurally sound.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_tuner::goal::{Constraint, Objective};
    use antarex_tuner::{KnobValue, KnowledgeBase, OperatingPoint};

    fn config(level: i64) -> Configuration {
        let mut c = Configuration::new();
        c.set("level", KnobValue::Int(level));
        c
    }

    fn kb() -> KnowledgeBase {
        (1..=4)
            .map(|l| {
                OperatingPoint::new(
                    config(l),
                    [
                        ("latency".to_string(), 0.1 * l as f64),
                        ("quality".to_string(), l as f64),
                        ("power".to_string(), 10.0 * l as f64),
                    ],
                )
            })
            .collect()
    }

    fn manager() -> AppManager {
        let mut m = AppManager::new(kb(), Objective::maximize("quality"));
        m.add_constraint(Constraint::at_most("latency", 0.45));
        m
    }

    /// Probe: latency proportional to level, quality to sqrt(level),
    /// power to level; cost = latency.
    struct Probe;

    impl Evaluator for Probe {
        fn evaluate(&self, config: &Configuration, features: &[f64]) -> Evaluation {
            let level = config.get_int("level").unwrap_or(1) as f64;
            let scale = features.first().copied().unwrap_or(1.0);
            let latency = 0.1 * level * scale;
            Evaluation {
                metrics: [
                    ("latency".to_string(), latency),
                    ("quality".to_string(), level.sqrt()),
                    ("power".to_string(), 10.0 * level),
                ]
                .into_iter()
                .collect(),
                cost_s: latency,
                energy_j: 10.0 * level * latency,
            }
        }
    }

    fn service() -> TuningService<Probe> {
        TuningService::new(ServiceConfig::default(), Probe)
    }

    fn requests(tenants: &[TenantId]) -> Vec<TuningRequest> {
        tenants
            .iter()
            .enumerate()
            .map(|(i, &tenant)| TuningRequest {
                tenant,
                arrival_s: i as f64,
            })
            .collect()
    }

    #[test]
    fn cache_reuses_design_points_across_tenants() {
        let service = service();
        for tenant in 0..4 {
            service
                .register_tenant(tenant, manager(), vec![1.0])
                .unwrap();
        }
        // all four tenants select the same point on identical features:
        // one probe, three cache hits
        let report = service.serve_batch(&requests(&[0, 1, 2, 3]));
        assert_eq!(report.evaluated, 1);
        let hits = report
            .responses
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|a| a.cache_hit))
            .count();
        assert_eq!(hits, 3);
        assert!(service.cache().hit_rate() > 0.0);
    }

    #[test]
    fn unknown_tenant_is_an_error_not_a_panic() {
        let service = service();
        let report = service.serve_batch(&requests(&[99]));
        assert_eq!(report.responses[0], Err(ServeError::UnknownTenant(99)));
    }

    #[test]
    fn infeasible_sla_reports_typed_error() {
        let service = service();
        let mut m = AppManager::new(kb(), Objective::maximize("quality"));
        m.add_constraint(Constraint::at_most("latency", 0.001));
        service.register_tenant(7, m, vec![1.0]).unwrap();
        let report = service.serve_batch(&requests(&[7]));
        assert_eq!(report.responses[0], Err(ServeError::Infeasible(7)));
        assert_eq!(service.store().with(7, |s| s.rejected).unwrap(), 1);
    }

    #[test]
    fn empty_knowledge_reports_typed_error() {
        let service = service();
        let m = AppManager::new(KnowledgeBase::new(), Objective::maximize("quality"));
        service.register_tenant(5, m, vec![1.0]).unwrap();
        let report = service.serve_batch(&requests(&[5]));
        assert_eq!(report.responses[0], Err(ServeError::EmptyKnowledge(5)));
    }

    #[test]
    fn overflow_is_shed_not_stalled() {
        let config = ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 2,
            },
            ..ServiceConfig::default()
        };
        let service = TuningService::new(config, Probe);
        // distinct features per tenant → no cache sharing, one job each
        for tenant in 0..5u64 {
            service
                .register_tenant(tenant, manager(), vec![1.0 + tenant as f64])
                .unwrap();
        }
        let report = service.serve_batch(&requests(&[0, 1, 2, 3, 4]));
        assert_eq!(report.evaluated, 2);
        assert_eq!(report.shed, 3);
        let shed_errors = report
            .responses
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Shed { .. })))
            .count();
        assert_eq!(shed_errors, 3);
    }

    #[test]
    fn online_learning_downgrades_an_optimistic_tenant() {
        let service = service();
        // the design-time KB promised level 4 at 0.4 s, but this
        // tenant's workload (features scale 2.0) measures 0.8 s — over
        // the 0.45 s SLA; after learning, the manager must walk down
        service.register_tenant(1, manager(), vec![2.0]).unwrap();
        let mut level = 4;
        for round in 0..6 {
            let report = service.serve_batch(&[TuningRequest {
                tenant: 1,
                arrival_s: round as f64,
            }]);
            if let Ok(answer) = &report.responses[0] {
                level = answer.config.get_int("level").unwrap();
            }
        }
        assert!(level < 4, "learned latency must force a downgrade: {level}");
    }

    #[test]
    fn power_demand_aggregates_and_splits() {
        let service = service();
        for tenant in 0..3 {
            service
                .register_tenant(tenant, manager(), vec![1.0])
                .unwrap();
        }
        assert_eq!(service.power_split(300.0).unwrap().len(), 3);
        assert_eq!(service.aggregate_power_demand_w(), 0.0);
        service.serve_batch(&requests(&[0, 1, 2]));
        let demand = service.aggregate_power_demand_w();
        assert!(demand > 0.0, "served tenants must report demand");
        let split = service.power_split(300.0).unwrap();
        let total: f64 = split.iter().map(|(_, w)| w).sum();
        assert!((total - 300.0).abs() < 1e-9, "budget conserved: {total}");
    }

    #[test]
    fn empty_service_has_no_power_split() {
        let service = service();
        assert!(service.power_split(100.0).is_none());
    }

    #[test]
    fn batches_are_deterministic_across_runs() {
        let build = || {
            let service = service();
            for tenant in 0..8 {
                service
                    .register_tenant(tenant, manager(), vec![1.0 + (tenant % 3) as f64])
                    .unwrap();
            }
            service
        };
        let batch = requests(&[0, 1, 2, 3, 4, 5, 6, 7, 0, 3, 6]);
        let a = build().serve_batch(&batch);
        let b = build().serve_batch(&batch);
        assert_eq!(a, b, "parallel evaluation must not leak into outputs");
    }

    use antarex_sim::faults::{FaultConfig, FaultSchedule};

    fn quiet_schedule(nodes: usize) -> FaultSchedule {
        FaultSchedule::generate(&FaultConfig::none(1), nodes, 10_000.0)
    }

    #[test]
    fn quiet_chaos_with_hardened_resilience_matches_plain_service() {
        let register = |service: &TuningService<Probe>| {
            for tenant in 0..4u64 {
                service
                    .register_tenant(tenant, manager(), vec![1.0 + (tenant % 2) as f64])
                    .unwrap();
            }
        };
        let plain = service();
        register(&plain);
        let hardened = TuningService::with_resilience(
            ServiceConfig::default(),
            ResilienceConfig::hardened(),
            Probe,
        )
        .with_chaos(ChaosConfig::new(quiet_schedule(4)));
        register(&hardened);

        for round in 0..3 {
            let batch: Vec<TuningRequest> = (0..4u64)
                .map(|t| TuningRequest {
                    tenant: t,
                    arrival_s: 10.0 * round as f64 + t as f64,
                })
                .collect();
            let a = plain.serve_batch(&batch);
            let b = hardened.serve_batch(&batch);
            // identical up to float round-off: the chaos path measures
            // completions in absolute virtual time and re-bases them,
            // which can move the last ulp of a latency
            assert_eq!(a.responses.len(), b.responses.len());
            for (ra, rb) in a.responses.iter().zip(&b.responses) {
                let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
                assert_eq!(ra.config, rb.config);
                assert_eq!(ra.metrics, rb.metrics);
                assert_eq!(ra.cache_hit, rb.cache_hit);
                assert!((ra.latency_s - rb.latency_s).abs() < 1e-9);
            }
            assert!((a.makespan_s - b.makespan_s).abs() < 1e-9);
            assert_eq!(b.retries, 0);
            assert_eq!(b.hedges, 0);
            assert_eq!(b.quarantined, 0);
        }
    }

    #[test]
    fn poisoned_tenant_trips_breaker_and_fails_fast() {
        let chaos = ChaosConfig::new(quiet_schedule(4)).poison(9);
        let service = TuningService::with_resilience(
            ServiceConfig::default(),
            ResilienceConfig::hardened(),
            Probe,
        )
        .with_chaos(chaos);
        service.register_tenant(9, manager(), vec![1.0]).unwrap();

        // one coalesced job; every attempt fails the integrity check
        let report = service.serve_batch(&requests(&[9, 9, 9]));
        assert!(report
            .responses
            .iter()
            .all(|r| matches!(r, Err(ServeError::WorkerFailed { .. }))));
        assert_eq!(report.quarantined, 1);
        assert_eq!(
            report.retries,
            u64::from(HedgePolicy::hardened().max_retries)
        );
        assert!(service.cache().is_empty(), "corrupt results never memoize");

        // three consecutive failures opened the circuit: within the
        // cooldown the tenant fails fast without reaching the pool
        let report = service.serve_batch(&[TuningRequest {
            tenant: 9,
            arrival_s: 3.0,
        }]);
        assert_eq!(
            report.responses[0],
            Err(ServeError::CircuitOpen { tenant: 9 })
        );
        assert_eq!(report.evaluated, 0);
        assert_eq!(service.breakers().total_trips(), 1);
        assert_eq!(service.store().with(9, |s| s.rejected).unwrap(), 4);
    }

    #[test]
    fn shed_jobs_bypass_the_retry_machinery() {
        // admission control sheds before the chaos scheduler ever sees
        // a job: a shed request burns no retries, no backoff, and no
        // breaker budget, while admitted jobs still go through the
        // fault-aware scheduler
        let config = ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 2,
            },
            ..ServiceConfig::default()
        };
        let service = TuningService::with_resilience(config, ResilienceConfig::hardened(), Probe)
            .with_chaos(ChaosConfig::new(quiet_schedule(2)));
        // distinct features per tenant → five distinct design points
        for tenant in 0..5u64 {
            service
                .register_tenant(tenant, manager(), vec![1.0 + 0.1 * tenant as f64])
                .unwrap();
        }
        let report = service.serve_batch(&requests(&[0, 1, 2, 3, 4]));
        assert_eq!(report.evaluated, 2);
        assert_eq!(report.shed, 3);
        assert_eq!(report.retries, 0);
        assert_eq!(report.quarantined, 0);
        assert_eq!(service.breakers().total_trips(), 0);
        assert!(report.responses[0].is_ok());
        assert!(report.responses[1].is_ok());
    }

    #[test]
    fn crash_recovery_replays_bit_identically() {
        fn factory(_tenant: TenantId) -> AppManager {
            manager()
        }
        let config = ServiceConfig::default();
        let resilience = ResilienceConfig::hardened();
        let build = || {
            let service = TuningService::with_resilience(config, resilience, Probe);
            for tenant in 0..4u64 {
                service
                    .register_tenant(tenant, factory(tenant), vec![1.0 + (tenant % 2) as f64])
                    .unwrap();
            }
            service
        };
        let batch_at = |t0: f64| -> Vec<TuningRequest> {
            (0..4u64)
                .map(|tenant| TuningRequest {
                    tenant,
                    arrival_s: t0 + 0.5 * tenant as f64,
                })
                .collect()
        };
        // windows chosen so the Daly interval (√(2·0.5·300) − 0.5 ≈
        // 16.8 s) fires between the third and fourth: the crash state
        // is a snapshot plus a non-empty journal suffix
        let windows = [0.0, 6.0, 20.0, 30.0, 36.0];

        let reference = build();
        for &t0 in &windows {
            reference.serve_batch(&batch_at(t0));
        }

        let victim = build();
        for &t0 in &windows[..4] {
            victim.serve_batch(&batch_at(t0));
        }
        let (snapshot, entries) = victim.crash();
        assert!(snapshot.is_some(), "Daly cadence must have snapshotted");
        assert!(!entries.is_empty(), "suffix after the snapshot expected");
        let recovered = TuningService::recover(
            config, resilience, None, None, Probe, snapshot, &entries, &factory,
        );
        recovered.serve_batch(&batch_at(windows[4]));

        let report = recovered.state_report();
        assert!(!report.is_empty());
        assert_eq!(report, reference.state_report(), "recovery must be exact");
    }

    /// Front door + poisoned evaluator, breakers off: the tenant walks
    /// the whole admission lifecycle — Admit → Degrade (cache-only) →
    /// Shed (hard reject with a retry hint) → decay back to Degrade —
    /// purely from the SLO feedback its own failing probes generate.
    #[test]
    fn front_door_walks_a_burning_tenant_through_the_tiers() {
        let resilience = ResilienceConfig {
            breaker: BreakerConfig::disabled(),
            ..ResilienceConfig::hardened()
        };
        let service = TuningService::with_resilience(ServiceConfig::default(), resilience, Probe)
            .with_chaos(ChaosConfig::new(quiet_schedule(4)).poison(9))
            .with_front_door(FrontDoorConfig::hardened());
        service.register_tenant(9, manager(), vec![1.0]).unwrap();
        let admission = || service.admission().unwrap().tier(9);
        let batch = |t: f64| {
            service.serve_batch(&[TuningRequest {
                tenant: 9,
                arrival_s: t,
            }])
        };

        // window 1: every probe attempt fails → all-violation window
        let report = batch(0.0);
        assert!(matches!(
            report.responses[0],
            Err(ServeError::WorkerFailed { .. })
        ));
        assert_eq!(admission(), AdmissionTier::Degrade, "one bad window");

        // window 2: degraded and cache-empty → probe demand rejected,
        // which burns further and escalates past the shed threshold
        let report = batch(5.0);
        assert_eq!(report.degraded, 1);
        assert!(matches!(
            &report.responses[0],
            Err(ServeError::AdmissionRejected { tenant: 9, .. })
        ));
        assert_eq!(admission(), AdmissionTier::Shed);

        // window 3: hard shed before select — carries a retry hint and
        // contributes no burn, so the tenant starts to decay
        let report = batch(10.0);
        assert_eq!(report.admission_shed, 1);
        assert_eq!(report.evaluated, 0);
        let hint = report.responses[0].as_ref().unwrap_err().retry_after_ms();
        assert!(hint.is_some_and(|ms| ms >= 5000), "hint {hint:?}");

        // quiet windows: zero-sample decay de-escalates through the
        // exit hysteresis back to degraded service
        let mut tier = admission();
        for round in 0..6 {
            batch(15.0 + 5.0 * round as f64);
            tier = admission();
            if tier != AdmissionTier::Shed {
                break;
            }
        }
        assert_eq!(tier, AdmissionTier::Degrade, "shed must not be forever");
    }

    /// A tenant that is simultaneously over its SLO budget (shed tier)
    /// and circuit-open fails fast through exactly ONE path: the front
    /// door rejects before the breaker is consulted, so no extra
    /// breaker trips, no `BreakerAllow` journal traffic, and exactly
    /// one rejection is booked per request.
    #[test]
    fn shed_tier_and_open_breaker_fail_through_one_path() {
        let service = TuningService::with_resilience(
            ServiceConfig::default(),
            ResilienceConfig::hardened(),
            Probe,
        )
        .with_chaos(ChaosConfig::new(quiet_schedule(4)).poison(9))
        .with_front_door(FrontDoorConfig::hardened());
        service.register_tenant(9, manager(), vec![1.0]).unwrap();

        // three failed attempts open the circuit (trips = 1) and the
        // all-violation window degrades the tenant
        service.serve_batch(&requests(&[9, 9, 9]));
        assert_eq!(service.breakers().total_trips(), 1);
        assert_eq!(service.admission().unwrap().tier(9), AdmissionTier::Degrade);
        // degraded probe demand keeps burning until the shed threshold
        let mut tier = AdmissionTier::Degrade;
        for round in 1..6 {
            service.serve_batch(&[TuningRequest {
                tenant: 9,
                arrival_s: 5.0 * round as f64,
            }]);
            tier = service.admission().unwrap().tier(9);
            if tier == AdmissionTier::Shed {
                break;
            }
        }
        assert_eq!(tier, AdmissionTier::Shed);
        let trips_before = service.breakers().total_trips();
        let rejected_before = service.store().with(9, |s| s.rejected).unwrap();

        let report = service.serve_batch(&[TuningRequest {
            tenant: 9,
            arrival_s: 60.0,
        }]);
        // the admission rejection wins; the breaker is never consulted
        assert!(matches!(
            &report.responses[0],
            Err(ServeError::AdmissionRejected { tenant: 9, .. })
        ));
        assert_eq!(report.admission_shed, 1);
        assert_eq!(report.evaluated, 0);
        assert_eq!(service.breakers().total_trips(), trips_before);
        assert_eq!(
            service.store().with(9, |s| s.rejected).unwrap(),
            rejected_before + 1,
            "exactly one rejection booked"
        );
    }

    #[test]
    fn autoscaler_grows_capacity_under_probe_pressure() {
        let service = TuningService::new(ServiceConfig::default(), Probe)
            .with_front_door(FrontDoorConfig::hardened());
        // 24 tenants with distinct features → 24 distinct probes in one
        // window: 6 per virtual worker exceeds queue_high = 4
        for tenant in 0..24u64 {
            service
                .register_tenant(tenant, manager(), vec![1.0 + 0.01 * tenant as f64])
                .unwrap();
        }
        let batch: Vec<TuningRequest> = (0..24u64)
            .map(|t| TuningRequest {
                tenant: t,
                arrival_s: 0.1 * t as f64,
            })
            .collect();
        let report = service.serve_batch(&batch);
        assert_eq!(report.capacity, 8, "4 doubled under pressure");
        assert_eq!(service.autoscaler().unwrap().capacity(), 8);
        assert_eq!(service.obs().pool_capacity.get(), 8.0);
        // calm traffic after the cooldown shrinks capacity additively
        let report = service.serve_batch(&[TuningRequest {
            tenant: 0,
            arrival_s: 10.0,
        }]);
        assert_eq!(report.capacity, 7);
    }

    #[test]
    fn front_door_outputs_are_physical_worker_invariant() {
        let run = |workers: usize| {
            let service = TuningService::new(
                ServiceConfig {
                    pool: PoolConfig {
                        workers,
                        queue_capacity: 256,
                    },
                    ..ServiceConfig::default()
                },
                Probe,
            )
            .with_front_door(FrontDoorConfig::hardened());
            for tenant in 0..24u64 {
                service
                    .register_tenant(tenant, manager(), vec![1.0 + 0.01 * tenant as f64])
                    .unwrap();
            }
            let mut reports = Vec::new();
            for round in 0..4 {
                let batch: Vec<TuningRequest> = (0..24u64)
                    .map(|t| TuningRequest {
                        tenant: t,
                        arrival_s: 5.0 * round as f64 + 0.1 * t as f64,
                    })
                    .collect();
                reports.push(service.serve_batch(&batch));
            }
            (reports, service.state_report())
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one, eight, "virtual capacity must decouple from threads");
    }

    #[test]
    fn crash_recovery_restores_front_door_state_bit_identically() {
        fn factory(_tenant: TenantId) -> AppManager {
            manager()
        }
        let config = ServiceConfig::default();
        let resilience = ResilienceConfig::hardened();
        let front_door = FrontDoorConfig::hardened();
        let build = || {
            let service = TuningService::with_resilience(config, resilience, Probe)
                .with_chaos(ChaosConfig::new(quiet_schedule(4)).poison(2))
                .with_front_door(front_door);
            for tenant in 0..4u64 {
                service
                    .register_tenant(tenant, factory(tenant), vec![1.0 + (tenant % 2) as f64])
                    .unwrap();
            }
            service
        };
        // tenant 2 is poisoned: its windows burn, driving admission
        // tier transitions; 26 distinct-feature probes per window would
        // push the autoscaler as well via the shared cache misses
        let batch_at = |t0: f64| -> Vec<TuningRequest> {
            (0..4u64)
                .map(|tenant| TuningRequest {
                    tenant,
                    arrival_s: t0 + 0.5 * tenant as f64,
                })
                .collect()
        };
        let windows = [0.0, 6.0, 20.0, 30.0, 36.0];

        let reference = build();
        for &t0 in &windows {
            reference.serve_batch(&batch_at(t0));
        }
        let reference_report = reference.state_report();
        assert!(
            reference_report.contains("admission 2:"),
            "poisoned tenant must have admission state:\n{reference_report}"
        );
        assert!(reference_report.contains("autoscaler: capacity="));

        let victim = build();
        for &t0 in &windows[..4] {
            victim.serve_batch(&batch_at(t0));
        }
        let (snapshot, entries) = victim.crash();
        assert!(snapshot.is_some(), "Daly cadence must have snapshotted");
        let recovered = TuningService::recover(
            config,
            resilience,
            Some(ChaosConfig::new(quiet_schedule(4)).poison(2)),
            Some(front_door),
            Probe,
            snapshot,
            &entries,
            &factory,
        );
        recovered.serve_batch(&batch_at(windows[4]));
        assert_eq!(
            recovered.state_report(),
            reference_report,
            "front-door state must recover exactly"
        );
    }

    #[test]
    fn recovery_from_journal_alone_rebuilds_registrations() {
        fn factory(_tenant: TenantId) -> AppManager {
            manager()
        }
        let config = ServiceConfig::default();
        let resilience = ResilienceConfig::hardened();
        let service = TuningService::with_resilience(config, resilience, Probe);
        service.register_tenant(3, factory(3), vec![2.0]).unwrap();
        service.serve_batch(&requests(&[3, 3]));
        let before = service.state_report();

        // crash before any snapshot: recovery replays from seq 0
        let (snapshot, entries) = service.crash();
        assert!(snapshot.is_none());
        let recovered = TuningService::recover(
            config, resilience, None, None, Probe, snapshot, &entries, &factory,
        );
        assert_eq!(recovered.state_report(), before);
        assert_eq!(recovered.store().with(3, |s| s.requests).unwrap(), 2);
    }
}
