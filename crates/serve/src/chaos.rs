//! Chaos injection and hedged-retry scheduling for the evaluation pool.
//!
//! On an exascale machine the pool's workers crash, silently slow down
//! ("gray" stragglers), and occasionally hand back bit-flipped results.
//! This module maps a deterministic [`FaultSchedule`] from
//! `antarex_sim::faults` onto the pool's *virtual* workers (virtual
//! worker *w* = fault-schedule node *w*) and replays every batch
//! through a fault-aware list scheduler:
//!
//! * a probe dispatched onto a worker that crashes mid-run fails at the
//!   crash instant and is **retried** on the earliest healthy worker
//!   after a capped exponential backoff;
//! * a probe landing on a gray (slowed) worker is **hedged**: once the
//!   primary has been running for [`HedgePolicy::hedge_after_s`]
//!   without finishing, a duplicate dispatches to another worker; the
//!   first verified result wins and the loser is cancelled, releasing
//!   its worker at the winning instant;
//! * every completed attempt is **integrity-checked** against the
//!   probe's FNV digest; a result computed inside a data-corruption
//!   window fails the check, is quarantined (never cached), and burns a
//!   retry;
//! * each job carries a **deadline budget** from its first dispatch;
//!   when crashes, corruption, and backoff exhaust it, the job fails
//!   with [`ServeError::Deadline`].
//!
//! All of it happens in virtual time over evaluations that were
//! computed once by the real (pure) probe, so the chaotic run is as
//! deterministic as the healthy one: same seed, same bytes, at any
//! physical core count.

use crate::error::ServeError;
use crate::pool::Evaluation;
use crate::store::TenantId;
use antarex_sim::faults::FaultSchedule;

/// Deterministic fault environment of one service instance.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault timeline; node *w* of the schedule is virtual worker *w*
    /// of the pool.
    pub schedule: FaultSchedule,
    /// Tenants whose probes always fail the integrity check — the
    /// "poisoned evaluator" scenario the per-tenant circuit breaker
    /// exists to contain.
    pub poisoned_tenants: Vec<TenantId>,
}

impl ChaosConfig {
    /// Chaos driven purely by a fault schedule, no poisoned tenants.
    pub fn new(schedule: FaultSchedule) -> Self {
        ChaosConfig {
            schedule,
            poisoned_tenants: Vec::new(),
        }
    }

    /// Marks a tenant's probes as permanently corrupt.
    pub fn poison(mut self, tenant: TenantId) -> Self {
        self.poisoned_tenants.push(tenant);
        self
    }
}

/// Deadline, hedging, and retry budget of one evaluation job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Virtual deadline budget per job, measured from its first
    /// dispatch; `f64::INFINITY` disables deadline enforcement.
    pub deadline_s: f64,
    /// A primary attempt still running this long after dispatch gets a
    /// hedge duplicate on another worker; `f64::INFINITY` disables
    /// hedging.
    pub hedge_after_s: f64,
    /// Retries after a failed (crashed or corrupted) attempt.
    pub max_retries: u32,
    /// First retry backoff, virtual seconds.
    pub backoff_base_s: f64,
    /// Backoff cap: delays grow `base · 2^attempt` up to this.
    pub backoff_cap_s: f64,
}

impl HedgePolicy {
    /// The hardened default: three retries, 50 ms base backoff capped
    /// at 1 s, hedging after 1 s, a 30 s deadline.
    pub fn hardened() -> Self {
        HedgePolicy {
            deadline_s: 30.0,
            hedge_after_s: 1.0,
            max_retries: 3,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
        }
    }

    /// The unhardened baseline: no retries, no hedging, no deadline —
    /// a crashed or corrupted probe is simply a dropped request.
    pub fn disabled() -> Self {
        HedgePolicy {
            deadline_s: f64::INFINITY,
            hedge_after_s: f64::INFINITY,
            max_retries: 0,
            backoff_base_s: 0.0,
            backoff_cap_s: 0.0,
        }
    }

    /// Backoff before retry number `attempt` (1-based), capped.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let factor = 2f64.powi(attempt.saturating_sub(1).min(30) as i32);
        (self.backoff_base_s * factor).min(self.backoff_cap_s)
    }
}

/// FNV-1a digest of an evaluation — the end-to-end checksum a worker
/// attaches to its result and the merge layer verifies.
pub fn evaluation_digest(evaluation: &Evaluation) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (metric, value) in &evaluation.metrics {
        eat(metric.as_bytes());
        eat(&value.to_bits().to_le_bytes());
    }
    eat(&evaluation.cost_s.to_bits().to_le_bytes());
    eat(&evaluation.energy_j.to_bits().to_le_bytes());
    hash
}

/// What a data-corruption window does to a result in flight: one bit
/// of the first metric's mantissa flips. Detectable only because the
/// digest was taken before the flip.
pub fn corrupt_evaluation(evaluation: &Evaluation) -> Evaluation {
    let mut corrupted = evaluation.clone();
    if let Some((_, value)) = corrupted.metrics.iter_mut().next() {
        *value = f64::from_bits(value.to_bits() ^ (1 << 51));
    } else {
        corrupted.cost_s = f64::from_bits(corrupted.cost_s.to_bits() ^ (1 << 51));
    }
    corrupted
}

/// Does the delivered evaluation still match the digest taken at
/// compute time?
pub fn integrity_ok(delivered: &Evaluation, expected_digest: u64) -> bool {
    evaluation_digest(delivered) == expected_digest
}

/// One scheduled attempt of a job on a virtual worker.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Attempt {
    /// The attempt completed (integrity still unchecked) at the time.
    Finished(f64),
    /// The worker crashed mid-run at the time.
    Crashed(f64),
}

/// Accounting of one chaos-scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobChaosStats {
    /// Failed attempts that were re-dispatched with backoff.
    pub retries: u32,
    /// Hedge duplicates dispatched against stragglers.
    pub hedges: u32,
    /// Attempts whose result failed the integrity check.
    pub corrupt_attempts: u32,
    /// Attempts that died with their worker.
    pub crashed_attempts: u32,
}

/// Outcome of one job under chaos: its verified virtual completion
/// time, or the typed error that ended it.
pub type JobOutcome = Result<f64, ServeError>;

/// Replays one batch's evaluations through the fault-aware list
/// scheduler on `workers` virtual workers starting at virtual time
/// `batch_start_s`. `evaluations[i]` is the pure probe result of job
/// `i`; `poisoned[i]` marks jobs whose results always fail integrity.
///
/// Returns per-job outcomes (virtual completion or error), per-job
/// chaos accounting, and the batch makespan (latest busy instant over
/// all workers, relative to the batch start).
///
/// Deterministic: a pure function of its arguments — jobs are laid out
/// in id order, ties broken by worker index, and all timing is
/// virtual.
pub fn chaos_schedule(
    evaluations: &[Evaluation],
    poisoned: &[bool],
    workers: usize,
    batch_start_s: f64,
    chaos: &ChaosConfig,
    policy: &HedgePolicy,
) -> (Vec<JobOutcome>, Vec<JobChaosStats>, f64) {
    let workers = workers.max(1);
    let mut busy_until = vec![batch_start_s; workers];
    let mut outcomes = Vec::with_capacity(evaluations.len());
    let mut stats = Vec::with_capacity(evaluations.len());

    for (job, evaluation) in evaluations.iter().enumerate() {
        let mut job_stats = JobChaosStats::default();
        let cost = evaluation.cost_s.max(0.0);
        let mut not_before = batch_start_s;
        let mut first_dispatch: Option<f64> = None;
        let mut outcome: JobOutcome = Err(ServeError::WorkerFailed { worker: 0 });

        for attempt in 0..=policy.max_retries {
            let Some((worker, start)) = pick_worker(&busy_until, not_before, chaos, &[]) else {
                // every worker is dead with no repair in sight
                outcome = Err(ServeError::WorkerFailed { worker: 0 });
                break;
            };
            let deadline = *first_dispatch.get_or_insert(start) + policy.deadline_s;
            if start > deadline {
                outcome = Err(ServeError::Deadline);
                break;
            }
            let primary = run_attempt(worker, start, cost, chaos);
            // hedge a straggling primary on a different healthy worker
            let mut hedge: Option<(usize, Attempt)> = None;
            let primary_end = match primary {
                Attempt::Finished(t) => t,
                Attempt::Crashed(t) => t,
            };
            let hedge_at = start + policy.hedge_after_s;
            if primary_end > hedge_at {
                if let Some((hedge_worker, hedge_start)) =
                    pick_worker(&busy_until, hedge_at, chaos, &[worker])
                {
                    if hedge_start <= deadline {
                        job_stats.hedges += 1;
                        hedge = Some((
                            hedge_worker,
                            run_attempt(hedge_worker, hedge_start, cost, chaos),
                        ));
                    }
                }
            }

            // first *successful* finisher wins; crashes only count when
            // both replicas crash
            let candidates = |a: &Option<(usize, Attempt)>| -> Vec<(usize, Attempt)> {
                let mut v = vec![(worker, primary)];
                if let Some((w, att)) = a {
                    v.push((*w, *att));
                }
                v
            };
            let all = candidates(&hedge);
            let winner = all
                .iter()
                .filter_map(|&(w, att)| match att {
                    Attempt::Finished(t) => Some((w, t)),
                    Attempt::Crashed(_) => None,
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

            match winner {
                Some((win_worker, win_t)) => {
                    // occupy both workers up to the decisive instant;
                    // the losing replica is cancelled at the win
                    for (w, att) in &all {
                        let end = match att {
                            Attempt::Finished(t) => *t,
                            Attempt::Crashed(t) => *t,
                        };
                        busy_until[*w] = busy_until[*w].max(end.min(win_t));
                    }
                    job_stats.crashed_attempts += all
                        .iter()
                        .filter(|(_, att)| matches!(att, Attempt::Crashed(t) if *t <= win_t))
                        .count() as u32;
                    let corrupted = poisoned.get(job).copied().unwrap_or(false)
                        || chaos.schedule.corrupted(win_worker, win_t);
                    if corrupted {
                        // end-to-end checksum catches the bit flip: the
                        // result is quarantined, the attempt has failed
                        let digest = evaluation_digest(evaluation);
                        debug_assert!(!integrity_ok(&corrupt_evaluation(evaluation), digest));
                        job_stats.corrupt_attempts += 1;
                        if win_t > deadline {
                            outcome = Err(ServeError::Deadline);
                            break;
                        }
                        outcome = Err(ServeError::WorkerFailed { worker: win_worker });
                        if attempt < policy.max_retries {
                            job_stats.retries += 1;
                            not_before = win_t + policy.backoff_s(attempt + 1);
                            continue;
                        }
                        break;
                    }
                    if win_t > deadline {
                        outcome = Err(ServeError::Deadline);
                    } else {
                        outcome = Ok(win_t);
                    }
                    break;
                }
                None => {
                    // every replica crashed: workers are blocked until
                    // their crash instants, the job retries after backoff
                    let mut last_crash = start;
                    let mut crash_worker = worker;
                    for (w, att) in &all {
                        if let Attempt::Crashed(t) = att {
                            busy_until[*w] = busy_until[*w].max(*t);
                            job_stats.crashed_attempts += 1;
                            if *t >= last_crash {
                                last_crash = *t;
                                crash_worker = *w;
                            }
                        }
                    }
                    if last_crash > deadline {
                        outcome = Err(ServeError::Deadline);
                        break;
                    }
                    outcome = Err(ServeError::WorkerFailed {
                        worker: crash_worker,
                    });
                    if attempt < policy.max_retries {
                        job_stats.retries += 1;
                        not_before = last_crash + policy.backoff_s(attempt + 1);
                    }
                }
            }
        }

        outcomes.push(outcome);
        stats.push(job_stats);
    }

    let makespan = busy_until.iter().fold(batch_start_s, |acc, &t| acc.max(t)) - batch_start_s;
    (outcomes, stats, makespan)
}

/// The earliest (worker, dispatch time) at or after `not_before` whose
/// worker is alive at dispatch, lowest index on ties; workers in
/// `exclude` are skipped (hedge placement). Dead workers become
/// eligible again at their repair instant. Returns `None` when no
/// worker is ever alive again within the schedule horizon.
fn pick_worker(
    busy_until: &[f64],
    not_before: f64,
    chaos: &ChaosConfig,
    exclude: &[usize],
) -> Option<(usize, f64)> {
    let horizon = chaos.schedule.horizon_s();
    let mut best: Option<(usize, f64)> = None;
    for (worker, &busy) in busy_until.iter().enumerate() {
        if exclude.contains(&worker) {
            continue;
        }
        let mut ready = busy.max(not_before);
        if !chaos.schedule.node_alive(worker, ready) {
            // wait for the repair: the next instant the node is alive
            match chaos
                .schedule
                .events()
                .iter()
                .find(|e| {
                    e.time_s > ready
                        && matches!(e.kind,
                            antarex_sim::faults::FaultKind::NodeRepair { node } if node == worker)
                })
                .map(|e| e.time_s)
            {
                Some(repair) if repair < horizon => ready = repair,
                _ => continue,
            }
        }
        match best {
            Some((_, t)) if t <= ready => {}
            _ => best = Some((worker, ready)),
        }
    }
    best
}

/// Runs one attempt on a virtual worker: the compute cost is stretched
/// by the worker's gray slowdown at dispatch, and a crash inside the
/// execution window kills the attempt at the crash instant.
fn run_attempt(worker: usize, start: f64, cost: f64, chaos: &ChaosConfig) -> Attempt {
    let effective = cost * chaos.schedule.slowdown(worker, start).max(1.0);
    let end = start + effective;
    match chaos
        .schedule
        .crashes_between(worker, start, end)
        .first()
        .copied()
    {
        Some(crash) => Attempt::Crashed(crash),
        None => Attempt::Finished(end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antarex_sim::faults::FaultConfig;

    fn eval(cost: f64) -> Evaluation {
        Evaluation {
            metrics: [("latency".to_string(), cost)].into_iter().collect(),
            cost_s: cost,
            energy_j: 0.0,
        }
    }

    fn quiet_chaos() -> ChaosConfig {
        ChaosConfig::new(FaultSchedule::generate(&FaultConfig::none(1), 4, 10_000.0))
    }

    /// A schedule with exactly one crash (repaired after 5 s) on the
    /// single worker, found by scanning seeds — deterministic once the
    /// scan settles.
    fn one_crash_chaos() -> ChaosConfig {
        for seed in 0..1000 {
            let mut config = FaultConfig::none(seed);
            config.node_mtbf_s = 30.0;
            config.weibull_shape = 1.0;
            config.repair_time_s = 5.0;
            let schedule = FaultSchedule::generate(&config, 1, 100.0);
            let crashes = schedule.any_crash_between(0.0, 100.0);
            if crashes.len() == 1 && crashes[0] < 40.0 {
                return ChaosConfig::new(schedule);
            }
        }
        panic!("no single-crash seed in scan range");
    }

    #[test]
    fn digest_catches_the_bit_flip() {
        let clean = eval(0.25);
        let digest = evaluation_digest(&clean);
        assert!(integrity_ok(&clean, digest));
        let flipped = corrupt_evaluation(&clean);
        assert_ne!(clean, flipped);
        assert!(!integrity_ok(&flipped, digest));
        // a metric-less evaluation corrupts through its cost
        let bare = Evaluation {
            metrics: Default::default(),
            cost_s: 1.0,
            energy_j: 0.0,
        };
        assert!(!integrity_ok(
            &corrupt_evaluation(&bare),
            evaluation_digest(&bare)
        ));
    }

    #[test]
    fn fault_free_chaos_matches_plain_list_schedule() {
        let evals: Vec<Evaluation> = (0..6).map(|_| eval(1.0)).collect();
        let chaos = quiet_chaos();
        let (outcomes, stats, makespan) = chaos_schedule(
            &evals,
            &[false; 6],
            2,
            0.0,
            &chaos,
            &HedgePolicy::hardened(),
        );
        let completions: Vec<f64> = outcomes.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(completions, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        assert_eq!(makespan, 3.0);
        assert!(stats.iter().all(|s| *s == JobChaosStats::default()));
    }

    #[test]
    fn crashed_attempt_retries_on_backoff_and_succeeds() {
        let chaos = one_crash_chaos();
        let first_crash = chaos.schedule.any_crash_between(0.0, 100.0)[0];
        // a long job dispatched at t=0 straddles the crash
        let evals = vec![eval(first_crash + 1.0)];
        let policy = HedgePolicy {
            deadline_s: f64::INFINITY,
            hedge_after_s: f64::INFINITY,
            ..HedgePolicy::hardened()
        };
        let (outcomes, stats, _) = chaos_schedule(&evals, &[false], 1, 0.0, &chaos, &policy);
        assert!(outcomes[0].is_ok(), "retry after repair must succeed");
        assert_eq!(stats[0].retries, 1);
        assert_eq!(stats[0].crashed_attempts, 1);
        // the retry waited for the repair (crash + 5 s)
        assert!(outcomes[0].clone().unwrap() > first_crash + 5.0);
    }

    #[test]
    fn unhardened_policy_drops_the_crashed_job() {
        let chaos = one_crash_chaos();
        let first_crash = chaos.schedule.any_crash_between(0.0, 100.0)[0];
        let evals = vec![eval(first_crash + 1.0)];
        let (outcomes, _, _) =
            chaos_schedule(&evals, &[false], 1, 0.0, &chaos, &HedgePolicy::disabled());
        assert!(matches!(outcomes[0], Err(ServeError::WorkerFailed { .. })));
    }

    #[test]
    fn straggler_is_hedged_and_the_fast_replica_wins() {
        // the schedule is generated for ONE node, so only worker 0 has
        // gray windows; worker 1 of the two-worker pool is fault-free
        let mut config = FaultConfig::none(3);
        config.gray_mtbf_s = 4.0;
        config.gray_slowdown = 10.0;
        config.gray_duration_s = 5_000.0;
        let schedule = FaultSchedule::generate(&config, 1, 10_000.0);
        let gray_start = schedule
            .events()
            .iter()
            .find_map(|e| match e.kind {
                antarex_sim::faults::FaultKind::GraySlowdown { node: 0, .. } => Some(e.time_s),
                _ => None,
            })
            .expect("gray event on node 0");
        let chaos = ChaosConfig::new(schedule);
        let policy = HedgePolicy {
            hedge_after_s: 0.5,
            ..HedgePolicy::hardened()
        };
        let (outcomes, stats, _) =
            chaos_schedule(&[eval(2.0)], &[false], 2, gray_start, &chaos, &policy);
        let done = outcomes[0].clone().unwrap();
        assert_eq!(stats[0].hedges, 1, "slowed primary must be hedged");
        // winner is the healthy hedge: dispatched 0.5 s in, runs 2 s,
        // while the gray primary would have taken 20 s
        assert!(
            done < gray_start + 20.0,
            "hedge must beat the 10x straggler: {done}"
        );
    }

    #[test]
    fn poisoned_job_exhausts_retries_and_fails() {
        let chaos = quiet_chaos();
        let policy = HedgePolicy::hardened();
        let (outcomes, stats, _) = chaos_schedule(&[eval(1.0)], &[true], 2, 0.0, &chaos, &policy);
        assert!(matches!(outcomes[0], Err(ServeError::WorkerFailed { .. })));
        assert_eq!(stats[0].retries, policy.max_retries);
        assert_eq!(stats[0].corrupt_attempts, policy.max_retries + 1);
    }

    #[test]
    fn deadline_budget_is_enforced() {
        let chaos = quiet_chaos();
        let policy = HedgePolicy {
            deadline_s: 0.5,
            hedge_after_s: f64::INFINITY,
            ..HedgePolicy::hardened()
        };
        let (outcomes, _, _) = chaos_schedule(&[eval(2.0)], &[false], 2, 0.0, &chaos, &policy);
        assert_eq!(outcomes[0], Err(ServeError::Deadline));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = HedgePolicy {
            backoff_base_s: 0.1,
            backoff_cap_s: 0.5,
            ..HedgePolicy::hardened()
        };
        assert_eq!(policy.backoff_s(1), 0.1);
        assert_eq!(policy.backoff_s(2), 0.2);
        assert_eq!(policy.backoff_s(3), 0.4);
        assert_eq!(policy.backoff_s(4), 0.5, "capped");
        assert_eq!(policy.backoff_s(30), 0.5, "stays capped");
    }

    #[test]
    fn chaos_schedule_is_deterministic() {
        let chaos = one_crash_chaos();
        let evals: Vec<Evaluation> = (0..8).map(|i| eval(0.5 + 0.25 * i as f64)).collect();
        let run = || {
            chaos_schedule(
                &evals,
                &[false; 8],
                1,
                0.0,
                &chaos,
                &HedgePolicy::hardened(),
            )
        };
        assert_eq!(run(), run());
    }
}
