//! Property suite for causal tracing + energy attribution.
//!
//! Three contracts must hold for the observability pipeline to be
//! trustworthy in production:
//!
//! * **Conservation is unconditional.** Σ per-request attributed
//!   energy + idle remainder ≡ the facility meter — exact integer
//!   nanojoules — even when random fault schedules crash workers,
//!   corrupt results in flight, and trip circuit breakers. Failed
//!   probes' energy lands in `idle`, never double-charged, never lost.
//! * **Trace identity is causal, not physical.** A request's
//!   [`TraceCtx`] id derives from `(tenant, probe_seed, batch, seq)`
//!   alone, so the id set is byte-identical at any physical worker
//!   count and under any scheduling policy.
//! * **Quantile estimates honour the γ bound.** The per-class
//!   energy-per-request histograms are log-bucketed at γ = 1.05;
//!   every exposed quantile must sit within `√γ − 1` relative error
//!   of the exact rank statistic of the recorded samples.

use antarex_obs::hist::relative_error_bound;
use antarex_obs::STANDARD_QUANTILES;
use antarex_serve::chaos::ChaosConfig;
use antarex_serve::docking::{register_docking_tenants, TenantMux};
use antarex_serve::driver::{self, DriverConfig};
use antarex_serve::store::TenantClass;
use antarex_serve::{ResilienceConfig, SchedConfig, ServiceConfig, TuningRequest, TuningService};
use antarex_sim::faults::{FaultConfig, FaultSchedule};
use std::collections::BTreeSet;

/// First docking tenant id — nav tenants occupy the low range.
const DOCKING_BASE: u64 = 1000;

fn mixed_requests(seed: u64, tenants: usize, docking: usize) -> Vec<TuningRequest> {
    let nav_config = DriverConfig {
        tenants,
        archetypes: 3,
        duration_s: 30.0,
        rate_per_tenant_hz: 0.8,
        batch_window_s: 1.0,
        seed,
    };
    let docking_config = DriverConfig {
        tenants: docking,
        seed: seed.wrapping_add(1),
        ..nav_config
    };
    let mut requests = driver::arrivals(&nav_config);
    requests.extend(driver::arrivals(&docking_config).into_iter().map(|mut r| {
        r.tenant += DOCKING_BASE;
        r
    }));
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });
    requests
}

fn mixed_service(
    seed: u64,
    physical: usize,
    sched: SchedConfig,
    chaos: Option<ChaosConfig>,
) -> TuningService<TenantMux> {
    let mut config = ServiceConfig::default();
    config.pool.workers = physical;
    let resilience = if chaos.is_some() {
        ResilienceConfig::hardened()
    } else {
        ResilienceConfig::disabled()
    };
    let mut service =
        TuningService::with_resilience(config, resilience, TenantMux::city_and_screening(seed))
            .with_scheduler(sched);
    if let Some(chaos) = chaos {
        service = service.with_chaos(chaos);
    }
    // explicit Nav class so the per-class histograms split the use cases
    for tenant in 0..6u64 {
        let features = driver::archetype_features(tenant as usize % 3);
        let _ = service.register_tenant_classed(
            tenant,
            TenantClass::Nav,
            driver::nav_manager(0.5),
            features,
        );
    }
    register_docking_tenants(&service, DOCKING_BASE, 2, seed, 0.5);
    service
}

/// A compressed fault profile (the exascale MTBFs would land nothing
/// on a 30 s horizon): crashes, gray slowdowns, corruption windows.
fn random_chaos(seed: u64, workers: usize) -> ChaosConfig {
    let mut config = FaultConfig::none(seed);
    config.node_mtbf_s = 40.0;
    config.repair_time_s = 3.0;
    config.gray_mtbf_s = 30.0;
    config.gray_slowdown = 8.0;
    config.gray_duration_s = 5.0;
    config.corrupt_mtbf_s = 8.0;
    config.corrupt_window_s = 2.0;
    ChaosConfig::new(FaultSchedule::generate(&config, workers, 1000.0))
}

#[test]
fn conservation_is_exact_under_random_chaos_schedules() {
    for seed in 0..10u64 {
        // a poisoned tenant guarantees integrity failures on top of
        // whatever the random schedule lands
        let chaos = random_chaos(seed, 4).poison(2);
        let service = mixed_service(seed, 2, SchedConfig::work_stealing(), Some(chaos));
        let requests = mixed_requests(seed, 6, 2);
        for batch in requests.chunks(16) {
            service.serve_batch(batch);
            // the invariant holds at every window boundary, not just
            // at the end of the campaign
            assert!(
                service.obs().plane().energy.conservation_holds(),
                "seed {seed}: conservation broke mid-campaign"
            );
        }
        let (facility, attributed, idle) = service.obs().plane().energy.totals_nj();
        assert_eq!(attributed + idle, facility, "seed {seed}");
        assert!(facility > 0, "seed {seed}: campaign spent no energy");
    }
}

#[test]
fn failed_probes_are_idle_energy_never_lost() {
    // poison every docking tenant: their probes always fail integrity,
    // so their direct energy must land in `idle`, not vanish
    let chaos = ChaosConfig::new(FaultSchedule::generate(&FaultConfig::none(1), 4, 1000.0))
        .poison(DOCKING_BASE)
        .poison(DOCKING_BASE + 1);
    let service = mixed_service(3, 2, SchedConfig::work_stealing(), Some(chaos));
    for batch in mixed_requests(3, 6, 2).chunks(16) {
        service.serve_batch(batch);
    }
    let (facility, attributed, idle) = service.obs().plane().energy.totals_nj();
    assert_eq!(attributed + idle, facility);
    assert!(idle > 0, "poisoned probes must leave unattributed energy");
    let per_tenant = service.obs().plane().energy.per_tenant_nj();
    assert!(
        per_tenant.iter().all(|&(tenant, _)| tenant < DOCKING_BASE),
        "poisoned tenants must not be attributed: {per_tenant:?}"
    );
}

fn trace_id_set(physical: usize, sched: SchedConfig) -> BTreeSet<String> {
    let service = mixed_service(7, physical, sched, None);
    for batch in mixed_requests(7, 6, 2).chunks(16) {
        service.serve_batch(batch);
    }
    service
        .obs()
        .plane()
        .trace
        .events()
        .iter()
        .map(|event| event.trace.to_hex())
        .collect()
}

#[test]
fn trace_ids_are_invariant_in_physical_workers_and_steal_policy() {
    let reference = trace_id_set(1, SchedConfig::default());
    assert!(!reference.is_empty(), "campaign produced no traces");
    for physical in [2usize, 4, 8] {
        assert_eq!(
            trace_id_set(physical, SchedConfig::default()),
            reference,
            "physical worker count {physical} leaked into trace identity"
        );
    }
    assert_eq!(
        trace_id_set(4, SchedConfig::work_stealing()),
        reference,
        "the scheduling policy leaked into trace identity"
    );
}

#[test]
fn class_energy_quantiles_respect_the_gamma_bound() {
    let service = mixed_service(11, 2, SchedConfig::work_stealing(), None);
    let requests = mixed_requests(11, 6, 2);
    // exact per-class samples: every Ok response's attributed energy,
    // which is precisely what the service records into the histograms
    let mut samples: [Vec<f64>; TenantClass::COUNT] = Default::default();
    for batch in requests.chunks(16) {
        let report = service.serve_batch(batch);
        for response in report.responses.iter().flatten() {
            let class = if response.tenant >= DOCKING_BASE {
                TenantClass::Docking
            } else {
                TenantClass::Nav
            };
            samples[class.index()].push(response.energy_j);
        }
    }
    let bound = relative_error_bound();
    for class in [TenantClass::Nav, TenantClass::Docking] {
        let mut exact = samples[class.index()].clone();
        assert!(
            exact.len() >= 20,
            "{}: too few samples ({})",
            class.label(),
            exact.len()
        );
        exact.sort_by(f64::total_cmp);
        let snapshot = service.obs().class_energy_snapshot(class);
        assert_eq!(snapshot.count, exact.len() as u64, "{}", class.label());
        for (slot, &q) in snapshot.quantiles.iter().zip(STANDARD_QUANTILES.iter()) {
            let estimate = slot.unwrap_or_else(|| panic!("{}: empty quantile", class.label()));
            // the histogram's rank convention: the ⌈q·n⌉-th smallest
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let err = (estimate - truth).abs() / truth.abs().max(f64::MIN_POSITIVE);
            assert!(
                err <= bound + 1e-12,
                "{} p{q}: estimate {estimate} vs exact {truth} -> {err:.5} > {bound:.5}",
                class.label()
            );
        }
    }
}
