//! Property suite for the structural design-point cache key.
//!
//! [`DesignKey`] replaced a formatted-string key with a precomputed
//! structural hash. Over *typed* design spaces (each knob holds one
//! value type — the only configurations the service ever builds) its
//! equality must coincide exactly with the retained string reference
//! ([`ReferenceKey`]): no false hits, no lost hits. And `probe_seed`
//! must reproduce the historical string-fold seed bit-for-bit, because
//! every seeded evaluator's metrics depend on it.

use antarex_serve::{probe_seed, DesignKey, ReferenceKey};
use antarex_tuner::{Configuration, KnobValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn random_case(rng: &mut StdRng) -> (Configuration, Vec<f64>) {
    let mut config = Configuration::new();
    config.set("unroll", KnobValue::Int(rng.gen_range(1..4)));
    // floats drawn from a pool with the two edge cases the string
    // rendering distinguishes (-0.0) and collapses (every NaN)
    let alphas = [-0.0, 0.0, 0.25, 0.5, f64::NAN, -f64::NAN];
    config.set(
        "alpha",
        KnobValue::Float(alphas[rng.gen_range(0..alphas.len())]),
    );
    let variants = ["scalar", "blocked", "simd"];
    config.set(
        "variant",
        KnobValue::Choice(variants[rng.gen_range(0..variants.len())].to_string()),
    );
    if rng.gen_bool(0.3) {
        config.set("extra", KnobValue::Int(rng.gen_range(0..2)));
    }
    let features: Vec<f64> = (0..rng.gen_range(0..3))
        .map(|_| match rng.gen_range(0..6) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            // a coarse grid plus sub-quantum noise, so some pairs are
            // equal only after quantization
            _ => rng.gen_range(0..3) as f64 + rng.gen::<f64>() * 1e-9,
        })
        .collect();
    (config, features)
}

#[test]
fn structural_key_equality_coincides_with_the_string_reference() {
    let mut rng = StdRng::seed_from_u64(4242);
    let cases: Vec<(Configuration, Vec<f64>)> = (0..160).map(|_| random_case(&mut rng)).collect();
    let hashed: Vec<DesignKey> = cases.iter().map(|(c, f)| DesignKey::new(c, f)).collect();
    let reference: Vec<ReferenceKey> = cases.iter().map(|(c, f)| ReferenceKey::new(c, f)).collect();
    for i in 0..cases.len() {
        for j in i..cases.len() {
            assert_eq!(
                hashed[i] == hashed[j],
                reference[i] == reference[j],
                "keys {i} and {j} disagree with the reference:\n  {:?} / {:?}\n  {:?} / {:?}",
                cases[i],
                cases[j],
                reference[i],
                reference[j],
            );
        }
    }
}

#[test]
fn hashed_lookup_has_no_false_hits_or_misses() {
    let mut rng = StdRng::seed_from_u64(99);
    let cases: Vec<(Configuration, Vec<f64>)> = (0..200).map(|_| random_case(&mut rng)).collect();
    // map each string-reference class to the first index that minted it
    let mut by_reference: HashMap<ReferenceKey, usize> = HashMap::new();
    let mut by_hash: HashMap<DesignKey, usize> = HashMap::new();
    for (i, (config, features)) in cases.iter().enumerate() {
        let class = *by_reference
            .entry(ReferenceKey::new(config, features))
            .or_insert(i);
        // a rebuilt structural key must land on exactly that class
        match by_hash.entry(DesignKey::new(config, features)) {
            std::collections::hash_map::Entry::Occupied(hit) => assert_eq!(
                *hit.get(),
                class,
                "case {i} hit a different entry than the string reference"
            ),
            std::collections::hash_map::Entry::Vacant(slot) => {
                assert_eq!(
                    class, i,
                    "case {i} missed but the string reference had seen it"
                );
                slot.insert(i);
            }
        }
    }
}

#[test]
fn probe_seed_reproduces_the_reference_seed_everywhere() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..300 {
        let (config, features) = random_case(&mut rng);
        assert_eq!(
            probe_seed(&config, &features),
            ReferenceKey::new(&config, &features).seed(),
            "probe_seed diverged on {config} / {features:?}"
        );
    }
}
