//! Property suite for the deterministic work-stealing scheduler.
//!
//! The steal schedule replaced static list scheduling as the pool's
//! dynamic policy. Three properties must hold for the serving tier's
//! determinism contract to survive the change: the discrete-event
//! stealing simulation must agree with an independently written
//! sequential reference on arbitrary heavy-tailed cost vectors; batch
//! outcomes flowing through the full [`EvalPool`] must be invariant in
//! the *physical* worker count; and the steal order must stay total —
//! byte-stable — when estimated loads tie exactly.

use antarex_obs::TraceCtx;
use antarex_serve::pool::{EvalJob, EvalPool, Evaluation, PoolConfig, SchedConfig};
use antarex_serve::store::TenantClass;
use antarex_serve::SchedPolicy;
use antarex_sim::sched::{steal_schedule, Schedule};
use antarex_sim::workload::lognormal;
use antarex_tuner::{Configuration, KnobValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An independent sequential reference of the stealing model, written
/// against the documented protocol rather than the production code:
/// guided decreasing-chunk deal, (clock, index)-ordered core steps,
/// back-half steals from the estimated-heaviest victim, stolen chunks
/// re-sorted ascending.
fn reference_steal(costs: &[f64], estimates: &[f64], cores: usize) -> Schedule {
    let n = costs.len();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); cores];
    let mut next = 0usize;
    let mut turn = 0usize;
    while next < n {
        let chunk = ((n - next) / (2 * cores)).max(1).min(n - next);
        queues[turn % cores].extend(next..next + chunk);
        next += chunk;
        turn += 1;
    }
    let mut clock = vec![0.0f64; cores];
    let mut completions = vec![0.0f64; n];
    let mut assignments = vec![0usize; n];
    let mut remaining = n;
    while remaining > 0 {
        let core = (0..cores)
            .min_by(|&a, &b| clock[a].total_cmp(&clock[b]).then(a.cmp(&b)))
            .unwrap();
        if queues[core].is_empty() {
            let mut victim: Option<usize> = None;
            for (v, queue) in queues.iter().enumerate() {
                if v == core || queue.is_empty() {
                    continue;
                }
                let load: f64 = queue.iter().map(|&j| estimates[j]).sum();
                let better = match victim {
                    None => true,
                    Some(current) => {
                        let current_load: f64 = queues[current].iter().map(|&j| estimates[j]).sum();
                        load > current_load || (load == current_load && v < current)
                    }
                };
                if better {
                    victim = Some(v);
                }
            }
            let victim = victim.expect("jobs remain, so a victim exists");
            let keep = queues[victim].len() - queues[victim].len().div_ceil(2);
            let mut stolen = queues[victim].split_off(keep);
            stolen.sort_unstable();
            queues[core] = stolen;
        }
        let job = queues[core].remove(0);
        clock[core] += costs[job].max(0.0);
        completions[job] = clock[core];
        assignments[job] = core;
        remaining -= 1;
    }
    let makespan_s = clock.iter().fold(0.0f64, |a, &b| a.max(b));
    Schedule {
        completions,
        assignments,
        makespan_s,
        stats: Default::default(),
    }
}

fn heavy_tailed_costs(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| lognormal(rng, 0.0, 1.2)).collect()
}

#[test]
fn stealing_agrees_with_the_reference_on_random_heavy_tails() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..200);
        let cores = rng.gen_range(1..9);
        let costs = heavy_tailed_costs(&mut rng, n);
        // estimates deliberately disagree with costs (stale model):
        // placement follows estimates, execution follows costs
        let estimates: Vec<f64> = costs
            .iter()
            .map(|c| c * lognormal(&mut rng, 0.0, 0.3))
            .collect();
        let got = steal_schedule(&costs, &estimates, cores);
        let want = reference_steal(&costs, &estimates, cores);
        assert_eq!(got.assignments, want.assignments, "seed {seed}");
        assert_eq!(got.completions, want.completions, "seed {seed}");
        assert_eq!(got.makespan_s, want.makespan_s, "seed {seed}");
    }
}

#[test]
fn steal_order_is_total_when_estimated_loads_tie() {
    // every estimate identical: victim choice must fall back to the
    // lowest index, making the schedule a pure function of n and cores
    let costs = vec![1.0; 64];
    let a = steal_schedule(&costs, &costs, 5);
    let b = steal_schedule(&costs, &costs, 5);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.completions, b.completions);
    // and perturbing costs below the estimate layer must not change
    // placement at all — ties break on structure, not noise
    let noisy: Vec<f64> = (0..64).map(|i| 1.0 + (i as f64) * 1e-9).collect();
    let c = steal_schedule(&noisy, &costs, 5);
    assert_eq!(a.assignments, c.assignments, "estimates drive placement");
}

fn pool_digest(physical: usize, virtual_workers: usize) -> String {
    let pool = EvalPool::new(PoolConfig {
        workers: physical,
        queue_capacity: 1024,
    })
    .with_sched(SchedConfig::work_stealing());
    let jobs: Vec<EvalJob> = (0..96u64)
        .map(|id| {
            let mut config = Configuration::new();
            config.set("poses", KnobValue::Int((id % 7) as i64 + 1));
            EvalJob {
                id: id as usize,
                tenant: id,
                config,
                features: vec![id as f64],
                class: TenantClass::Docking,
                trace: TraceCtx::NONE,
            }
        })
        .collect();
    // heavy-tailed pure evaluator: cost depends only on the job
    let outcome = pool.evaluate_batch_on(jobs, virtual_workers, &|job: &EvalJob| {
        let mut rng = StdRng::seed_from_u64(job.tenant);
        let cost = lognormal(&mut rng, 0.0, 1.5);
        Evaluation {
            metrics: [("latency".to_string(), cost)].into_iter().collect(),
            cost_s: cost,
            energy_j: 0.0,
        }
    });
    assert_eq!(outcome.policy, SchedPolicy::WorkSteal);
    let mut digest = String::new();
    for result in &outcome.results {
        digest.push_str(&format!(
            "{} {:.12} {:.12}\n",
            result.job.tenant, result.completion_s, result.evaluation.cost_s
        ));
    }
    digest.push_str(&format!(
        "makespan {:.12} steals {} stolen {:?}\n",
        outcome.makespan_s, outcome.stats.steals, outcome.stats.stolen_jobs
    ));
    digest
}

#[test]
fn pool_outcomes_are_invariant_in_physical_workers() {
    for virtual_workers in [2usize, 4, 8] {
        let reference = pool_digest(1, virtual_workers);
        for physical in [2usize, 4, 8] {
            assert_eq!(
                pool_digest(physical, virtual_workers),
                reference,
                "physical {physical} leaked into the virtual schedule \
                 at {virtual_workers} virtual workers"
            );
        }
    }
}
