//! Criterion: search-technique throughput on a synthetic surface
//! (experiment A1 mechanism costs) and precision-tuner evaluations
//! (experiment A2).

use antarex_ir::parse_program;
use antarex_ir::value::Value;
use antarex_precision::tuner::{PrecisionTuner, TunerOptions};
use antarex_tuner::knob::Knob;
use antarex_tuner::search::annealing::Annealing;
use antarex_tuner::search::bandit::Bandit;
use antarex_tuner::search::genetic::Genetic;
use antarex_tuner::search::hillclimb::HillClimb;
use antarex_tuner::search::random::RandomSearch;
use antarex_tuner::search::{SearchTechnique, Tuner};
use antarex_tuner::space::DesignSpace;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> DesignSpace {
    DesignSpace::new(vec![
        Knob::int("x", 0, 31, 1),
        Knob::int("y", 0, 31, 1),
        Knob::choice("variant", ["a", "b", "c"]),
    ])
}

fn cost(config: &antarex_tuner::space::Configuration) -> f64 {
    let x = config.get_int("x").unwrap() as f64;
    let y = config.get_int("y").unwrap() as f64;
    let bias = match config.get_choice("variant").unwrap() {
        "a" => 0.0,
        "b" => 5.0,
        _ => 10.0,
    };
    (x - 20.0).powi(2) + (y - 11.0).powi(2) + bias
}

fn bench_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_100_evals");
    type MakeTechnique = fn() -> Box<dyn SearchTechnique>;
    let mk: Vec<(&str, MakeTechnique)> = vec![
        ("random", || Box::new(RandomSearch::new())),
        ("hillclimb", || Box::new(HillClimb::new())),
        ("annealing", || Box::new(Annealing::new())),
        ("genetic", || Box::new(Genetic::new())),
        ("bandit", || Box::new(Bandit::default_ensemble())),
    ];
    for (name, make) in mk {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut tuner = Tuner::new(space(), make());
                let mut rng = StdRng::seed_from_u64(5);
                black_box(tuner.run(100, &mut rng, cost))
            })
        });
    }
    group.finish();
}

fn bench_precision(c: &mut Criterion) {
    let program = parse_program(antarex_core::scenario::DOT_KERNEL).unwrap();
    let inputs: Vec<Vec<Value>> = (1..=3)
        .map(|k| {
            vec![
                Value::from((0..16).map(|i| 0.1 * (i + k) as f64).collect::<Vec<f64>>()),
                Value::from(vec![0.5; 16]),
                Value::Int(16),
            ]
        })
        .collect();
    c.bench_function("precision_tune_dot_1e-3", |b| {
        let tuner = PrecisionTuner::new(program.clone(), "dot", inputs.clone());
        b.iter(|| {
            black_box(
                tuner
                    .tune(&TunerOptions {
                        error_budget: 1e-3,
                        max_sweeps: 4,
                    })
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_techniques, bench_precision);
criterion_main!(benches);
