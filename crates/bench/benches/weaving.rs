//! Criterion: DSL front-end and weaving throughput (experiments F2/F3
//! mechanism costs).

use antarex_dsl::figures::{
    FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
};
use antarex_dsl::interp::Weaver;
use antarex_dsl::{parse_aspects, DslValue};
use antarex_ir::parse_program;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const APP: &str = "double kernel(double a[], int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
    return s;
}
void sweep(double buf[]) {
    for (int r = 0; r < 8; r++) { kernel(buf, 64); }
    kernel(buf, 128);
    kernel(buf, 256);
}";

fn bench_parsing(c: &mut Criterion) {
    let all = format!(
        "{FIG2_PROFILE_ARGUMENTS}\n{FIG3_UNROLL_INNERMOST_LOOPS}\n{FIG4_SPECIALIZE_KERNEL}"
    );
    c.bench_function("parse_three_paper_aspects", |b| {
        b.iter(|| parse_aspects(black_box(&all)).unwrap())
    });
    c.bench_function("parse_mini_c_application", |b| {
        b.iter(|| parse_program(black_box(APP)).unwrap())
    });
}

fn bench_weaving(c: &mut Criterion) {
    c.bench_function("weave_fig2_profiling", |b| {
        let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
        b.iter(|| {
            let mut program = parse_program(APP).unwrap();
            Weaver::new(lib.clone())
                .weave(
                    &mut program,
                    "ProfileArguments",
                    &[DslValue::from("kernel")],
                )
                .unwrap();
            black_box(program)
        })
    });
    c.bench_function("weave_fig4_capture_dynamic_plan", |b| {
        let lib = parse_aspects(&format!(
            "{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}"
        ))
        .unwrap();
        b.iter(|| {
            let mut program = parse_program(APP).unwrap();
            let mut weaver = Weaver::new(lib.clone());
            weaver
                .weave(
                    &mut program,
                    "SpecializeKernel",
                    &[DslValue::Int(4), DslValue::Int(64)],
                )
                .unwrap();
            black_box(weaver.dynamic_plans().len())
        })
    });
}

criterion_group!(benches, bench_parsing, bench_weaving);
criterion_main!(benches);
