//! Criterion: bytecode VM dispatch vs the reference interpreter
//! (experiment V1 mechanisms).
//!
//! Times one metered probe per iteration on each engine for the
//! canonical kernel suite, plus the lowering step the instrumented-code
//! cache amortizes. The `BENCH_vm.json` gate numbers come from the
//! `vm_bench` binary; this bench exists for profiling dispatch-level
//! regressions with criterion's statistics.

use antarex_bench::vm_exp::kernel_suite;
use antarex_ir::cost::CostModel;
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::parse_program;
use antarex_vm::{lower_program, Vm};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_probe_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe");
    for case in kernel_suite() {
        let program = parse_program(case.source).expect("suite kernel parses");
        let mut interp = Interp::new(program.clone());
        interp
            .call(case.function, &case.args, &mut ExecEnv::new())
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("interp", case.name),
            &case.args,
            |b, args| {
                b.iter(|| {
                    let mut env = ExecEnv::new();
                    black_box(interp.call(case.function, black_box(args), &mut env)).unwrap()
                })
            },
        );
        let mut vm = Vm::new(program);
        vm.call(case.function, &case.args, &mut ExecEnv::new())
            .unwrap();
        group.bench_with_input(BenchmarkId::new("vm", case.name), &case.args, |b, args| {
            b.iter(|| {
                let mut env = ExecEnv::new();
                black_box(vm.call(case.function, black_box(args), &mut env)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let model = CostModel::new();
    let mut group = c.benchmark_group("lower");
    for case in kernel_suite() {
        let program = parse_program(case.source).expect("suite kernel parses");
        group.bench_with_input(
            BenchmarkId::from_parameter(case.name),
            &program,
            |b, program| b.iter(|| black_box(lower_program(black_box(program), &model))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_probe_dispatch, bench_lowering);
criterion_main!(benches);
