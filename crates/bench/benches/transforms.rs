//! Criterion: weaver transformation costs (unroll, specialize, fold).

use antarex_ir::value::Value;
use antarex_ir::{parse_program, NodePath};
use antarex_weaver::transform::fold::fold_block;
use antarex_weaver::transform::specialize::specialize;
use antarex_weaver::transform::unroll::{unroll_by_factor, unroll_full};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn kernel(trip: usize) -> String {
    format!(
        "double k(double a[]) {{
             double s = 0.0;
             for (int i = 0; i < {trip}; i++) {{ s += a[i] * 1.5 + 2.0; }}
             return s;
         }}"
    )
}

fn bench_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("unroll_full");
    for trip in [8usize, 64, 256] {
        let program = parse_program(&kernel(trip)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(trip), &trip, |b, _| {
            b.iter(|| {
                let mut p = program.clone();
                p.edit_function("k", |f| {
                    unroll_full(&mut f.body, &NodePath::root(1)).unwrap();
                })
                .unwrap();
                black_box(p)
            })
        });
    }
    group.finish();

    c.bench_function("unroll_by_factor_8_of_256", |b| {
        let program = parse_program(&kernel(256)).unwrap();
        b.iter(|| {
            let mut p = program.clone();
            p.edit_function("k", |f| {
                unroll_by_factor(&mut f.body, &NodePath::root(1), 8).unwrap();
            })
            .unwrap();
            black_box(p)
        })
    });
}

fn bench_specialize_and_fold(c: &mut Criterion) {
    let program = parse_program(
        "double kernel(double a[], int size) {
             double s = 0.0;
             for (int i = 0; i < size; i++) { s += a[i] * a[i]; }
             if (size > 100) { s = s / 2.0; }
             return s;
         }",
    )
    .unwrap();
    c.bench_function("specialize_kernel_size", |b| {
        b.iter(|| black_box(specialize(&program, "kernel", "size", &Value::Int(64)).unwrap()))
    });
    let body = program.function("kernel").unwrap().body.clone();
    c.bench_function("fold_kernel_body", |b| {
        b.iter(|| black_box(fold_block(black_box(&body))))
    });
}

fn bench_tile_and_inline(c: &mut Criterion) {
    let program = parse_program(&kernel(256)).unwrap();
    c.bench_function("tile_16_of_256", |b| {
        b.iter(|| {
            let mut p = program.clone();
            p.edit_function("k", |f| {
                antarex_weaver::transform::tile::tile(&mut f.body, &NodePath::root(1), 16).unwrap();
            })
            .unwrap();
            black_box(p)
        })
    });
    let inlinable = parse_program(
        "double w(double x) { return x * 0.5 + 1.0; }
         double k(double a[]) {
             double s = 0.0;
             for (int i = 0; i < 64; i++) { s += w(a[i]) + w(s); }
             return s;
         }",
    )
    .unwrap();
    c.bench_function("inline_helper_calls", |b| {
        b.iter(|| {
            let mut p = inlinable.clone();
            p.edit_function("k", |f| {
                antarex_weaver::transform::inline::inline_calls(&mut f.body, &inlinable, "w")
                    .unwrap();
            })
            .unwrap();
            black_box(p)
        })
    });
}

criterion_group!(
    benches,
    bench_unroll,
    bench_specialize_and_fold,
    bench_tile_and_inline
);
criterion_main!(benches);
