//! Criterion: runtime execution — generic vs specialized kernels and the
//! dynamic-dispatch overhead (experiment F4 mechanism costs).

use antarex_core::flow::ToolFlow;
use antarex_core::scenario::DYNAMIC_KERNEL;
use antarex_dsl::figures::{FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL};
use antarex_dsl::DslValue;
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::parse_program;
use antarex_ir::value::Value;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_interp(c: &mut Criterion) {
    let program = parse_program(DYNAMIC_KERNEL).unwrap();
    let buf = Value::from(vec![0.5; 64]);
    c.bench_function("interp_generic_kernel_64", |b| {
        let mut interp = Interp::new(program.clone());
        b.iter(|| {
            interp
                .call(
                    "run",
                    black_box(&[buf.clone(), Value::Int(64)]),
                    &mut ExecEnv::new(),
                )
                .unwrap()
        })
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let aspects = format!("{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}");
    let buf = Value::from(vec![0.5; 32]);

    c.bench_function("runtime_specialized_cached_call", |b| {
        let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
        flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
            .unwrap();
        let mut runtime = flow.deploy();
        // warm up: synthesize the version
        runtime.call("run", &[buf.clone(), Value::Int(32)]).unwrap();
        b.iter(|| {
            runtime
                .call("run", black_box(&[buf.clone(), Value::Int(32)]))
                .unwrap()
        })
    });

    c.bench_function("runtime_first_call_specialization", |b| {
        b.iter_with_setup(
            || {
                let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
                flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
                    .unwrap();
                flow.deploy()
            },
            |mut runtime| {
                runtime
                    .call("run", black_box(&[buf.clone(), Value::Int(32)]))
                    .unwrap();
                black_box(runtime.version_count("kernel"))
            },
        )
    });
}

criterion_group!(benches, bench_interp, bench_dispatch);
criterion_main!(benches);
