//! Criterion: platform-simulator mechanism costs (experiments C1–C4
//! building blocks).

use antarex_rtrm::governor::{run_with_governor, Governor, GovernorKind};
use antarex_sim::cooling::CoolingPlant;
use antarex_sim::job::WorkUnit;
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::thermal::ThermalModel;
use antarex_sim::variability::ProcessVariation;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_node_execution(c: &mut Criterion) {
    c.bench_function("node_execute_compute_bound", |b| {
        let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
        let work = WorkUnit::compute_bound(1e12);
        b.iter(|| black_box(node.execute(black_box(&work))))
    });
    c.bench_function("node_execute_offloaded_gpu", |b| {
        let mut node = Node::nominal(NodeSpec::cineca_accelerated(), 0);
        let work = WorkUnit::compute_bound(1e12);
        b.iter(|| black_box(node.execute_offloaded(black_box(&work), 0)))
    });
}

fn bench_models(c: &mut Criterion) {
    c.bench_function("thermal_step", |b| {
        let mut model = ThermalModel::server_node(26.0);
        b.iter(|| black_box(model.step(black_box(200.0), 26.0, 1.0)))
    });
    c.bench_function("variability_sample", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| black_box(ProcessVariation::sample(&mut rng)))
    });
    c.bench_function("pue_evaluation", |b| {
        let plant = CoolingPlant::european_datacenter();
        b.iter(|| black_box(plant.pue(black_box(1e6), black_box(22.0))))
    });
}

fn bench_governors(c: &mut Criterion) {
    let work = vec![WorkUnit::with_intensity(3e11, 2.0); 4];
    c.bench_function("governor_ondemand_stream", |b| {
        b.iter(|| {
            let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
            let mut gov = Governor::new(GovernorKind::Ondemand);
            black_box(run_with_governor(&mut node, &mut gov, &work))
        })
    });
    c.bench_function("governor_energy_optimal_stream", |b| {
        b.iter(|| {
            let mut node = Node::nominal(NodeSpec::cineca_xeon(), 0);
            let mut gov = Governor::new(GovernorKind::EnergyOptimal);
            black_box(run_with_governor(&mut node, &mut gov, &work))
        })
    });
}

criterion_group!(benches, bench_node_execution, bench_models, bench_governors);
criterion_main!(benches);
