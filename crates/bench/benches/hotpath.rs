//! Criterion: tuner data-plane hot path (experiment P1 mechanisms).
//!
//! Times the four operations the serving layer performs per request —
//! knowledge-base `best()` (indexed vs the retained linear reference),
//! online `learn()`, the Pareto filter, and design-point cache probes
//! (structural key vs the retained string reference).

use antarex_serve::cache::{DesignKey, DesignPointCache, Metrics, ReferenceKey};
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::knob::KnobValue;
use antarex_tuner::space::Configuration;
use antarex_tuner::{KnowledgeBase, OperatingPoint};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn config(i: u64) -> Configuration {
    let mut c = Configuration::new();
    c.set("unroll", KnobValue::Int((i % 32) as i64));
    c.set("block", KnobValue::Int((i / 32 % 32) as i64));
    c.set("threads", KnobValue::Int((i / 1024 % 8) as i64));
    c
}

fn knowledge(points: u64) -> KnowledgeBase {
    let mut rng = StdRng::seed_from_u64(7);
    (0..points)
        .map(|i| {
            OperatingPoint::new(
                config(i),
                [
                    ("time".to_string(), rng.gen::<f64>() * 10.0),
                    ("energy".to_string(), rng.gen::<f64>() * 100.0),
                    ("quality".to_string(), rng.gen::<f64>()),
                ],
            )
        })
        .collect()
}

fn bench_select(c: &mut Criterion) {
    let kb = knowledge(2048);
    let objective = Objective::minimize("time");
    let constraints = [
        Constraint::at_most("energy", 60.0),
        Constraint::at_least("quality", 0.2),
    ];
    let mut group = c.benchmark_group("kb_select_2048");
    group.bench_function(BenchmarkId::from_parameter("indexed"), |b| {
        b.iter(|| black_box(kb.best(black_box(&objective), black_box(&constraints))))
    });
    group.bench_function(BenchmarkId::from_parameter("linear_reference"), |b| {
        b.iter(|| black_box(kb.best_linear(black_box(&objective), black_box(&constraints))))
    });
    group.finish();
}

fn bench_learn(c: &mut Criterion) {
    let kb = knowledge(2048);
    c.bench_function("kb_learn_2048", |b| {
        let mut kb = kb.clone();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(997);
            kb.learn(
                OperatingPoint::new(config(i % 2048), [("time".to_string(), 1.0)]),
                0.2,
            );
        })
    });
}

fn bench_pareto(c: &mut Criterion) {
    let kb = knowledge(512);
    c.bench_function("kb_pareto_512_2d", |b| {
        b.iter(|| black_box(kb.pareto(black_box(&["time", "energy"]))))
    });
}

fn bench_cache(c: &mut Criterion) {
    let cache = DesignPointCache::new(8);
    let metrics: Metrics = [("time".to_string(), 1.0)].into_iter().collect();
    for i in 0..256 {
        cache.insert(DesignKey::new(&config(i), &[1.0]), metrics.clone());
    }
    let mut reference: BTreeMap<ReferenceKey, Metrics> = BTreeMap::new();
    for i in 0..256 {
        reference.insert(ReferenceKey::new(&config(i), &[1.0]), metrics.clone());
    }
    let mut group = c.benchmark_group("cache_probe");
    group.bench_function(BenchmarkId::from_parameter("hit_structural"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cache.get(&DesignKey::new(&config(i % 256), &[1.0])))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("hit_string_reference"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(reference.get(&ReferenceKey::new(&config(i % 256), &[1.0])))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("miss_structural"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cache.get(&DesignKey::new(&config(i % 256), &[9.9])))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_select,
    bench_learn,
    bench_pareto,
    bench_cache
);
criterion_main!(benches);
