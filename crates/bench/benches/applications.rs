//! Criterion: use-case application kernels (experiments U1/U2 mechanism
//! costs).

use antarex_apps::docking::{dock_ligand, generate_library, generate_pocket};
use antarex_apps::nav::{alternative_routes, shortest_path, RoadNetwork, TrafficModel};
use antarex_rtrm::dispatch::{run_task_pool, DispatchStrategy};
use antarex_sim::node::{Node, NodeSpec};
use antarex_sim::workload::docking_tasks;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_docking(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let pocket = generate_pocket(30, &mut rng);
    let library = generate_library(4, 24, &mut rng);
    let mut group = c.benchmark_group("dock_ligand_poses");
    for poses in [8usize, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(poses), &poses, |b, &poses| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                black_box(dock_ligand(&library[0], &pocket, poses, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let tasks = docking_tasks(120, 5e10, 1.0, &mut rng);
    let mut group = c.benchmark_group("dispatch_120_tasks");
    for strategy in DispatchStrategy::all() {
        group.bench_function(BenchmarkId::from_parameter(strategy.name()), |b| {
            b.iter(|| {
                let mut nodes: Vec<Node> = (0..4)
                    .map(|i| Node::nominal(NodeSpec::cineca_xeon(), i))
                    .collect();
                black_box(run_task_pool(&mut nodes, &tasks, strategy))
            })
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let network = RoadNetwork::city_grid(16, &mut rng);
    let traffic = TrafficModel::weekday();
    let dest = network.len() - 1;
    c.bench_function("astar_16x16", |b| {
        b.iter(|| {
            black_box(shortest_path(&network, &traffic, 0, dest, 8.0 * 3600.0, true).unwrap())
        })
    });
    c.bench_function("alternatives_k4_16x16", |b| {
        b.iter(|| {
            black_box(alternative_routes(
                &network,
                &traffic,
                0,
                dest,
                8.0 * 3600.0,
                4,
            ))
        })
    });
}

criterion_group!(benches, bench_docking, bench_dispatch, bench_routing);
criterion_main!(benches);
