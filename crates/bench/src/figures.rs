//! Experiments F2–F4: the paper's aspect listings in action.

use antarex_core::flow::ToolFlow;
use antarex_core::scenario::DYNAMIC_KERNEL;
use antarex_dsl::figures::{
    FIG2_PROFILE_ARGUMENTS, FIG3_UNROLL_INNERMOST_LOOPS, FIG4_SPECIALIZE_KERNEL,
};
use antarex_dsl::interp::Weaver;
use antarex_dsl::{parse_aspects, DslValue};
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::parse_program;
use antarex_ir::value::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// F2: weave Fig. 2 verbatim, run, and report the argument histogram the
/// aspect exists to collect — plus the instrumentation overhead.
pub fn f2_profile_arguments() -> String {
    let source = "double kernel(double a[], int size) {
        double s = 0.0;
        for (int i = 0; i < size; i++) { s += a[i]; }
        return s;
    }
    void sweep(double buf[]) {
        for (int r = 0; r < 6; r++) { kernel(buf, 64); }
        for (int r = 0; r < 3; r++) { kernel(buf, 256); }
        kernel(buf, 1024);
    }";
    let baseline_cost = {
        let mut env = ExecEnv::new();
        Interp::new(parse_program(source).unwrap())
            .call("sweep", &[Value::from(vec![1.0; 1024])], &mut env)
            .unwrap();
        env.stats.cost
    };

    let lib = parse_aspects(FIG2_PROFILE_ARGUMENTS).unwrap();
    let mut program = parse_program(source).unwrap();
    Weaver::new(lib)
        .weave(
            &mut program,
            "ProfileArguments",
            &[DslValue::from("kernel")],
        )
        .unwrap();
    let mut interp = Interp::new(program);
    let histogram: Rc<RefCell<BTreeMap<i64, u32>>> = Rc::new(RefCell::new(BTreeMap::new()));
    let sink = Rc::clone(&histogram);
    interp.register_host(
        "profile_args",
        Box::new(move |args| {
            if let Some(Value::Int(size)) = args.last() {
                *sink.borrow_mut().entry(*size).or_insert(0) += 1;
            }
            Ok(Value::Unit)
        }),
    );
    let mut env = ExecEnv::new();
    interp
        .call("sweep", &[Value::from(vec![1.0; 1024])], &mut env)
        .unwrap();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "argument-value histogram collected by the woven probe:"
    );
    let _ = writeln!(out, "{:>8} {:>8}", "size", "calls");
    for (size, count) in histogram.borrow().iter() {
        let _ = writeln!(out, "{size:>8} {count:>8}");
    }
    let overhead = 100.0 * (env.stats.cost as f64 - baseline_cost as f64) / baseline_cost as f64;
    let _ = writeln!(
        out,
        "instrumentation overhead: {overhead:.2}% of kernel cost ({} host calls)",
        env.stats.host_calls
    );
    out
}

/// F3: sweep the unroll threshold of Fig. 3 and report loops remaining,
/// cost, and speedup vs the unwoven program.
pub fn f3_unroll_threshold_sweep() -> String {
    let source = "double work(double a[]) {
        double s = 0.0;
        for (int i = 0; i < 4; i++) { s += a[i]; }
        for (int i = 0; i < 16; i++) { s += a[i] * 2.0; }
        for (int i = 0; i < 64; i++) { s += a[i] * 3.0; }
        return s;
    }";
    let args = [Value::from(vec![0.5; 64])];
    let base_cost = {
        let mut env = ExecEnv::new();
        Interp::new(parse_program(source).unwrap())
            .call("work", &args, &mut env)
            .unwrap();
        env.stats.cost
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>10} {:>9}",
        "threshold", "loops kept", "cost", "speedup"
    );
    for threshold in [0i64, 4, 16, 64] {
        let lib = parse_aspects(FIG3_UNROLL_INNERMOST_LOOPS).unwrap();
        let mut program = parse_program(source).unwrap();
        Weaver::new(lib)
            .weave(
                &mut program,
                "UnrollInnermostLoops",
                &[DslValue::FuncRef("work".into()), DslValue::Int(threshold)],
            )
            .unwrap();
        let loops = antarex_ir::analysis::loops(&program.function("work").unwrap().body).len();
        let mut env = ExecEnv::new();
        Interp::new(program).call("work", &args, &mut env).unwrap();
        let _ = writeln!(
            out,
            "{threshold:>10} {loops:>14} {:>10} {:>8.2}x",
            env.stats.cost,
            base_cost as f64 / env.stats.cost as f64
        );
    }
    let _ = writeln!(
        out,
        "(threshold = max numIter eligible for `do LoopUnroll('full')`)"
    );
    out
}

/// F4: drive the deployed Fig. 4 runtime through a size sweep and report
/// specialization decisions, cache behaviour and per-call cost.
pub fn f4_dynamic_specialization() -> String {
    let aspects = format!("{FIG4_SPECIALIZE_KERNEL}\n{FIG3_UNROLL_INNERMOST_LOOPS}");
    let mut flow = ToolFlow::new(DYNAMIC_KERNEL, &aspects).unwrap();
    flow.weave("SpecializeKernel", &[DslValue::Int(4), DslValue::Int(64)])
        .unwrap();
    let mut runtime = flow.deploy();

    let mut out = String::new();
    let _ = writeln!(out, "lowT = 4, highT = 64");
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>10} {:>10} {:>9}",
        "size", "cost", "loopiters", "versions", "action"
    );
    for size in [2usize, 16, 16, 48, 48, 100] {
        let before = runtime.version_count("kernel");
        let buf = Value::from(vec![0.5; size]);
        let (_, stats) = runtime
            .call("run", &[buf, Value::Int(size as i64)])
            .unwrap();
        let after = runtime.version_count("kernel");
        let action = if after > before {
            "specialize"
        } else if stats.loop_iters == 0 && (4..=64).contains(&size) {
            "cache hit"
        } else {
            "generic"
        };
        let _ = writeln!(
            out,
            "{size:>6} {:>9} {:>10} {after:>10} {action:>9}",
            stats.cost, stats.loop_iters
        );
    }
    let (hits, misses) = runtime.dispatch_stats("kernel");
    let _ = writeln!(out, "version cache: {hits} hits / {misses} misses");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_reports_histogram_and_overhead() {
        let report = f2_profile_arguments();
        assert!(report.contains("64"), "{report}");
        assert!(report.contains("1024"));
        assert!(report.contains("overhead"));
    }

    #[test]
    fn f3_speedup_is_monotone_in_threshold() {
        let report = f3_unroll_threshold_sweep();
        let speedups: Vec<f64> = report
            .lines()
            .filter_map(|l| l.trim().strip_suffix('x'))
            .filter_map(|l| l.split_whitespace().last())
            .filter_map(|s| s.parse().ok())
            .collect();
        assert_eq!(speedups.len(), 4, "{report}");
        for pair in speedups.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{report}");
        }
    }

    #[test]
    fn f4_specializes_in_range_only() {
        let report = f4_dynamic_specialization();
        assert_eq!(report.matches("specialize").count(), 2, "{report}");
        assert!(report.contains("generic"), "{report}");
        assert!(report.contains("cache hit"), "{report}");
    }
}
