//! E1 — cross-layer causal tracing + energy-per-request attribution.
//!
//! The ANTAREX monitoring loop needs to answer "where did this joule
//! go?" per *request*, not per node: admission decides whether work
//! enters, the tuning service picks the design point, the pool places
//! the probe, the VM meters its flops, and the RTRM splits the power
//! budget — all for the same request. This experiment replays a mixed
//! navigation + drug-discovery campaign (the paper's two use cases)
//! through the full service with tracing and attribution on, and
//! proves the three properties that make the pipeline trustworthy:
//!
//! * **Conservation.** Σ per-request attributed energy + idle remainder
//!   ≡ the facility meter, exact to the last nanojoule, every window
//!   ([`antarex_obs::EnergyLedger::conservation_holds`]).
//! * **Invariance.** The whole observable surface — per-batch reports,
//!   the invariant metric exposition, the energy ledger, the Chrome
//!   trace export — is byte-identical at 1/2/4/8 *physical* workers,
//!   because every recorded quantity is virtual work content.
//! * **Bounded cost.** Deriving a [`antarex_obs::TraceCtx`] is gated
//!   ≤ 25 ns by `energy_obs_bench`, so the untraced hot path stays hot.

use antarex_obs::nj_to_j;
use antarex_serve::docking::{register_docking_tenants, TenantMux};
use antarex_serve::driver::{self, DriverConfig};
use antarex_serve::service::FrontDoorConfig;
use antarex_serve::store::TenantClass;
use antarex_serve::{AdmissionConfig, AutoscaleConfig, SchedConfig, ServiceConfig, TuningService};

/// First docking tenant id — nav tenants occupy `0..nav_tenants`.
const DOCKING_BASE: u64 = 1000;

/// Campaign sizing.
#[derive(Debug, Clone)]
pub struct EnergyScale {
    /// Navigation tenants (ids `0..nav_tenants`).
    pub nav_tenants: usize,
    /// Docking tenants (ids `DOCKING_BASE..`).
    pub docking_tenants: usize,
    /// Distinct workload archetypes shared among nav tenants.
    pub archetypes: usize,
    /// Virtual campaign duration, seconds.
    pub duration_s: f64,
    /// Mean request rate per tenant, Hz.
    pub rate_per_tenant_hz: f64,
    /// Requests served per batch.
    pub batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl EnergyScale {
    /// The experiment-report scale: fast under `cargo test`.
    pub fn tiny() -> Self {
        EnergyScale {
            nav_tenants: 6,
            docking_tenants: 2,
            archetypes: 3,
            duration_s: 40.0,
            rate_per_tenant_hz: 0.5,
            batch: 16,
            seed: 2016,
        }
    }

    /// The gated-bench scale: ≥ 10⁵ requests through the full stack.
    pub fn full() -> Self {
        EnergyScale {
            nav_tenants: 192,
            docking_tenants: 64,
            archetypes: 6,
            duration_s: 800.0,
            rate_per_tenant_hz: 0.5,
            batch: 64,
            seed: 2016,
        }
    }

    /// Expected request count (Poisson mean).
    pub fn expected_requests(&self) -> f64 {
        (self.nav_tenants + self.docking_tenants) as f64 * self.duration_s * self.rate_per_tenant_hz
    }
}

/// FNV-1a over the campaign's observable surface.
#[derive(Debug, Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Everything one campaign run exposes, plus the invariance digest.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// Physical worker threads the pool actually spawned.
    pub physical_workers: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Requests answered `Ok`.
    pub served: usize,
    /// Facility meter total, joules.
    pub facility_j: f64,
    /// Σ per-request attributed energy, joules.
    pub attributed_j: f64,
    /// Unattributed remainder, joules.
    pub idle_j: f64,
    /// Exact integer conservation verdict from the ledger.
    pub conserved: bool,
    /// Energy-SLO overruns observed (not acted on) by admission.
    pub slo_overruns: u64,
    /// Trace events retained in the bounded store.
    pub trace_retained: usize,
    /// Trace events dropped past capacity.
    pub trace_dropped: u64,
    /// Per-class energy-per-request `(label, p50, p95, p99)` rows.
    pub class_quantiles: Vec<(&'static str, f64, f64, f64)>,
    /// Ledger text dump (totals + per-tenant tallies).
    pub ledger_report: String,
    /// Chrome `trace_event` JSON of the retained events.
    pub chrome_json: String,
    /// Text waterfall of the first retained trace.
    pub waterfall: String,
    /// FNV-1a over reports + exposition + ledger + Chrome export.
    pub digest: u64,
}

/// Runs the mixed campaign at one *physical* worker count. Virtual
/// capacity is pinned by the front door (as in `d1`), so everything
/// observable may depend only on the workload.
pub fn run_campaign(scale: &EnergyScale, physical: usize) -> CampaignRun {
    let mut config = ServiceConfig::default();
    config.pool.workers = physical;
    let front_door = FrontDoorConfig {
        admission: AdmissionConfig::hardened(),
        autoscale: AutoscaleConfig {
            min_workers: 4,
            max_workers: 4,
            ..AutoscaleConfig::hardened()
        },
    };
    let service = TuningService::new(config, TenantMux::city_and_screening(scale.seed))
        .with_scheduler(SchedConfig::work_stealing())
        .with_front_door(front_door);

    let nav_config = DriverConfig {
        tenants: scale.nav_tenants,
        archetypes: scale.archetypes,
        duration_s: scale.duration_s,
        rate_per_tenant_hz: scale.rate_per_tenant_hz,
        batch_window_s: 1.0,
        seed: scale.seed,
    };
    // like driver::register_nav_tenants, but under the explicit Nav
    // class so the per-class energy histograms separate the use cases
    for tenant in 0..scale.nav_tenants as u64 {
        let features = driver::archetype_features(tenant as usize % scale.archetypes);
        let _ = service.register_tenant_classed(
            tenant,
            TenantClass::Nav,
            driver::nav_manager(0.5),
            features,
        );
    }
    register_docking_tenants(
        &service,
        DOCKING_BASE,
        scale.docking_tenants,
        scale.seed,
        0.5,
    );

    // docking arrivals come from a second Poisson stream on the same
    // clock, remapped onto the docking tenant range and merged
    let docking_config = DriverConfig {
        tenants: scale.docking_tenants,
        seed: scale.seed.wrapping_add(1),
        ..nav_config
    };
    let mut requests = driver::arrivals(&nav_config);
    requests.extend(driver::arrivals(&docking_config).into_iter().map(|mut r| {
        r.tenant += DOCKING_BASE;
        r
    }));
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });

    let mut digest = Digest::new();
    let mut served = 0usize;
    for batch in requests.chunks(scale.batch) {
        let report = service.serve_batch(batch);
        served += report.responses.iter().filter(|r| r.is_ok()).count();
        digest.bytes(format!("{report:?}").as_bytes());
    }

    let obs = service.obs();
    let plane = obs.plane();
    let (facility_nj, attributed_nj, idle_nj) = plane.energy.totals_nj();
    let ledger_report = plane.energy.report();
    let chrome_json = plane.trace.chrome_trace_json();
    let waterfall = plane
        .trace
        .events()
        .first()
        .map(|event| plane.trace.waterfall(event.trace))
        .unwrap_or_else(|| "no traces retained\n".to_string());
    let class_quantiles = TenantClass::all()
        .iter()
        .map(|&class| {
            let snap = obs.class_energy_snapshot(class);
            let q = |i: usize| snap.quantiles[i].unwrap_or(0.0);
            (class.label(), q(0), q(1), q(2))
        })
        .collect();

    digest.bytes(obs.invariant_exposition().as_bytes());
    digest.bytes(ledger_report.as_bytes());
    digest.bytes(chrome_json.as_bytes());
    digest.bytes(service.state_report().as_bytes());

    CampaignRun {
        physical_workers: physical,
        requests: requests.len(),
        served,
        facility_j: nj_to_j(facility_nj),
        attributed_j: nj_to_j(attributed_nj),
        idle_j: nj_to_j(idle_nj),
        conserved: plane.energy.conservation_holds(),
        slo_overruns: obs.energy_slo_overruns(),
        trace_retained: plane.trace.len(),
        trace_dropped: plane.trace.dropped(),
        class_quantiles,
        ledger_report,
        chrome_json,
        waterfall,
        digest: digest.0,
    }
}

/// Runs the campaign at each physical worker count; `true` when every
/// digest matches the first.
pub fn campaign_invariance(scale: &EnergyScale, counts: &[usize]) -> (Vec<CampaignRun>, bool) {
    let runs: Vec<CampaignRun> = counts
        .iter()
        .map(|&physical| run_campaign(scale, physical))
        .collect();
    let identical = runs.windows(2).all(|pair| pair[0].digest == pair[1].digest);
    (runs, identical)
}

/// First `lines` lines of `text`, each indented two spaces.
fn head(text: &str, lines: usize) -> String {
    let mut out = String::new();
    for line in text.lines().take(lines) {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The registered `e1` experiment: the tiny-scale campaign across the
/// worker grid, deterministic text.
pub fn e1_energy_observability() -> String {
    let scale = EnergyScale::tiny();
    let counts = [1usize, 2, 4, 8];
    let (runs, identical) = campaign_invariance(&scale, &counts);
    let reference = &runs[0];

    let mut out = String::new();
    out.push_str(&format!(
        "energy observability campaign (seed {}, {} nav + {} docking tenants, {:.0} s, ~{:.0} requests expected)\n",
        scale.seed,
        scale.nav_tenants,
        scale.docking_tenants,
        scale.duration_s,
        scale.expected_requests(),
    ));
    out.push_str(&format!(
        "requests {}  served {}  energy-slo overruns {}\n",
        reference.requests, reference.served, reference.slo_overruns
    ));
    out.push_str(&format!(
        "energy: facility {:.6} J = attributed {:.6} J + idle {:.6} J -> conservation {}\n",
        reference.facility_j,
        reference.attributed_j,
        reference.idle_j,
        if reference.conserved {
            "exact"
        } else {
            "VIOLATED"
        },
    ));
    out.push_str("\nenergy per request by tenant class (J):\n");
    out.push_str("class     p50         p95         p99\n");
    for (label, p50, p95, p99) in &reference.class_quantiles {
        out.push_str(&format!(
            "{label:<8}  {p50:<10.6}  {p95:<10.6}  {p99:<10.6}\n"
        ));
    }
    out.push_str(&format!(
        "\ntrace store: {} events retained, {} dropped\n",
        reference.trace_retained, reference.trace_dropped
    ));
    out.push_str("energy ledger (head):\n");
    out.push_str(&head(&reference.ledger_report, 8));
    out.push_str("first trace waterfall:\n");
    out.push_str(&head(&reference.waterfall, 10));
    out.push_str(&format!(
        "chrome trace_event export: {} bytes (head):\n",
        reference.chrome_json.len()
    ));
    out.push_str(
        &head(&reference.chrome_json, 1)
            .chars()
            .take(240)
            .collect::<String>(),
    );
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!(
        "\nworker invariance ({counts:?} physical): digests {:?} -> {}\n",
        runs.iter()
            .map(|run| format!("{:016x}", run.digest))
            .collect::<Vec<_>>(),
        if identical { "identical" } else { "DIVERGED" },
    ));
    out.push_str(&format!(
        "verdict: conservation to the last nanojoule ({}), physical workers invisible ({}), traces bounded ({})\n",
        if runs.iter().all(|run| run.conserved) { "yes" } else { "NO" },
        if identical { "yes" } else { "NO" },
        if reference.trace_retained > 0 { "yes" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_conserves_energy_exactly() {
        let run = run_campaign(&EnergyScale::tiny(), 2);
        assert!(run.conserved, "ledger:\n{}", run.ledger_report);
        assert!(run.served > 0);
        assert!(run.facility_j > 0.0);
        assert!(run.attributed_j > 0.0, "served work must be attributed");
    }

    #[test]
    fn campaign_is_physical_worker_invariant() {
        let (runs, identical) = campaign_invariance(&EnergyScale::tiny(), &[1, 2, 4]);
        let digests: Vec<String> = runs.iter().map(|r| format!("{:016x}", r.digest)).collect();
        assert!(identical, "digests diverged: {digests:?}");
    }

    #[test]
    fn e1_report_is_deterministic() {
        assert_eq!(e1_energy_observability(), e1_energy_observability());
    }

    #[test]
    fn e1_report_renders_with_green_verdicts() {
        let report = e1_energy_observability();
        assert!(report.contains("conservation exact"), "report:\n{report}");
        assert!(report.contains("identical"), "report:\n{report}");
        assert!(!report.contains("NO"), "report:\n{report}");
        assert!(!report.contains("DIVERGED"), "report:\n{report}");
        assert!(!report.contains("VIOLATED"), "report:\n{report}");
    }
}
