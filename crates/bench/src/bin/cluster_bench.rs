//! Headline numbers and gates for the fault-tolerant cluster RTRM.
//!
//! Prints a JSON object (for `BENCH_cluster.json`) combining the
//! *virtual-time* campaign metrics — deterministic,
//! hardware-independent — with honest *wall-clock* timings of the same
//! campaigns on this machine: goodput retention and facility-cap
//! overshoot per profile for the 4096-node cluster under the fault
//! storm (Weibull crashes + sensor dropouts + afternoon heat wave),
//! plus the worker-count invariance verdict.
//!
//! The acceptance gates are evaluated after the report and the process
//! exits nonzero when any fails, so CI can run this binary directly:
//!
//! * the fault-tolerant hierarchy holds the facility cap (peak
//!   overshoot ≤ 1%) AND keeps ≥ 95% of the fault-free goodput;
//! * the ambient-blind flat manager breaks the cap (> 1% overshoot);
//! * the checkpoint-less hierarchy loses goodput (< 95% retention);
//! * the storm actually fired (crashes and sensor fallbacks observed);
//! * the campaign digest is byte-identical at 1/2/4/8 workers.
//!
//! Usage: `cargo run --release -p antarex-bench --bin cluster_bench`

use antarex_bench::cluster_exp::{cluster_campaign, worker_invariance, ClusterScale};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn main() {
    let seed = 42;
    let scale = ClusterScale::full();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = cores.min(8);

    let (rows, wall_campaign_s) = timed(|| cluster_campaign(seed, &scale, workers));
    let (invariance, wall_invariance_s) = timed(|| worker_invariance(seed, &scale, &[1, 2, 4, 8]));

    let reference = rows[0].goodput_flops;
    let tolerant = &rows[1];
    let no_ckpt = &rows[2];
    let flat = &rows[3];
    let retention = |goodput: f64| goodput / reference;

    let gates = [
        (
            "tolerant_holds_facility_cap",
            format!("peak overshoot {:.4} <= 0.01", tolerant.peak_overshoot_frac),
            tolerant.peak_overshoot_frac <= 0.01,
        ),
        (
            "tolerant_retains_goodput",
            format!("retention {:.4} >= 0.95", retention(tolerant.goodput_flops)),
            retention(tolerant.goodput_flops) >= 0.95,
        ),
        (
            "flat_breaks_the_cap",
            format!("peak overshoot {:.4} > 0.01", flat.peak_overshoot_frac),
            flat.peak_overshoot_frac > 0.01,
        ),
        (
            "no_checkpoint_loses_goodput",
            format!("retention {:.4} < 0.95", retention(no_ckpt.goodput_flops)),
            retention(no_ckpt.goodput_flops) < 0.95,
        ),
        (
            "storm_actually_fired",
            format!(
                "crashes {} > 0, sensor fallbacks {} > 0",
                tolerant.crashes, tolerant.sensor_fallbacks
            ),
            tolerant.crashes > 0 && tolerant.sensor_fallbacks > 0,
        ),
        (
            "worker_invariance",
            format!("digests identical at {:?}", invariance.worker_counts),
            invariance.identical,
        ),
    ];
    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(name, _, _)| *name)
        .collect();

    println!("{{");
    println!("  \"benchmark\": \"antarex-rtrm: fault-tolerant cluster-scale control plane\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"workload\": {{");
    println!("    \"nodes\": {},", scale.nodes);
    println!("    \"jobs\": {},", scale.jobs);
    println!("    \"virtual_horizon_s\": {:.0},", scale.horizon_s);
    println!("    \"control_step_s\": {:.0},", scale.dt_s);
    println!("    \"facility_cap_w\": {:.0},", scale.facility_cap_w);
    println!("    \"node_mtbf_s\": {:.0},", scale.node_mtbf_s());
    println!(
        "    \"heat_wave_c\": [{:.0}, {:.0}],",
        scale.ambient_start_c, scale.ambient_peak_c
    );
    println!("    \"workers\": {workers}");
    println!("  }},");
    println!("  \"profiles\": {{");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    \"{}\": {{", row.profile);
        println!("      \"goodput_flops\": {:.6e},", row.goodput_flops);
        println!(
            "      \"goodput_retention\": {:.4},",
            retention(row.goodput_flops)
        );
        println!("      \"completed_jobs\": {},", row.completed_jobs);
        println!(
            "      \"peak_overshoot_frac\": {:.6},",
            row.peak_overshoot_frac
        );
        println!("      \"overshoot_ws\": {:.3},", row.overshoot_ws);
        println!("      \"crashes\": {},", row.crashes);
        println!("      \"requeues\": {},", row.requeues);
        println!("      \"migrations\": {},", row.migrations);
        println!("      \"throttle_events\": {},", row.throttle_events);
        println!("      \"sensor_fallbacks\": {},", row.sensor_fallbacks);
        println!("      \"checkpoints\": {},", row.checkpoints);
        println!("      \"energy_mj\": {:.3},", row.energy_j / 1e6);
        println!("      \"digest\": \"{:016x}\"", row.digest);
        println!("    }}{comma}");
    }
    println!("  }},");
    println!("  \"worker_invariance\": {{");
    println!("    \"worker_counts\": {:?},", invariance.worker_counts);
    println!(
        "    \"digests\": [{}],",
        invariance
            .digests
            .iter()
            .map(|d| format!("\"{d:016x}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("    \"identical\": {}", invariance.identical);
    println!("  }},");
    println!("  \"gates\": {{");
    for (i, (name, detail, ok)) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        println!("    \"{name}\": {{ \"pass\": {ok}, \"detail\": \"{detail}\" }}{comma}");
    }
    println!("  }},");
    println!("  \"gates_passed\": {},", failed.is_empty());
    println!("  \"wall_clock_s\": {{");
    println!("    \"campaign\": {wall_campaign_s:.3},");
    println!("    \"worker_invariance\": {wall_invariance_s:.3}");
    println!("  }}");
    println!("}}");

    if !failed.is_empty() {
        eprintln!("cluster_bench: FAILED gates: {}", failed.join(", "));
        std::process::exit(1);
    }
}
