//! Headline numbers and gates for the metered bytecode VM.
//!
//! Prints a JSON object (for `BENCH_vm.json`) with honest *wall-clock*
//! probe-throughput numbers on this machine: the tree-walking reference
//! interpreter vs the bytecode VM over the canonical kernel suite, plus
//! the lowering cost the instrumented-code cache amortizes and the
//! serving-tier replay hit rate.
//!
//! The acceptance gates are evaluated after the report and the process
//! exits nonzero when any fails, so CI can run this binary directly:
//!
//! * `probe_speedup` — geometric-mean VM speedup over the interpreter
//!   across the suite is at least 10×;
//! * `replay_hit_rate` — the instrumented-code cache absorbs at least
//!   95% of serving-tier lowerings.
//!
//! Usage: `cargo run --release -p antarex-bench --bin vm_bench`

use antarex_bench::vm_exp::kernel_suite;
use antarex_ir::cost::CostModel;
use antarex_ir::interp::{ExecEnv, Interp};
use antarex_ir::parse_program;
use antarex_serve::kernel::KernelEvaluator;
use antarex_serve::Evaluator;
use antarex_tuner::{Configuration, KnobValue};
use antarex_vm::{lower_program, Vm};
use std::hint::black_box;
use std::time::Instant;

/// ns/op of `op` over `iters` iterations.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum ns/op across `windows` measurement windows: the minimum is the
/// standard estimator for "time absent interference" on a noisy machine —
/// scheduler preemption and frequency transitions only ever add time.
fn min_ns_per_op(windows: u32, iters: u64, mut op: impl FnMut()) -> f64 {
    (0..windows)
        .map(|_| ns_per_op(iters, &mut op))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let model = CostModel::new();
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    for case in kernel_suite() {
        let program = parse_program(case.source).expect("suite kernel parses");

        let mut interp = Interp::new(program.clone());
        // warm up, then time probe replay on each engine: same budget
        // semantics, same statistics, same results (experiment v1)
        let mut env = ExecEnv::new();
        interp.call(case.function, &case.args, &mut env).unwrap();
        let interp_ns = min_ns_per_op(3, 300, || {
            let mut env = ExecEnv::new();
            black_box(interp.call(case.function, black_box(&case.args), &mut env)).unwrap();
        });

        let mut vm = Vm::new(program.clone());
        let mut env = ExecEnv::new();
        vm.call(case.function, &case.args, &mut env).unwrap();
        let vm_ns = min_ns_per_op(3, 3000, || {
            let mut env = ExecEnv::new();
            black_box(vm.call(case.function, black_box(&case.args), &mut env)).unwrap();
        });

        let lower_ns = min_ns_per_op(3, 2000, || {
            black_box(lower_program(black_box(&program), black_box(&model)));
        });

        let speedup = interp_ns / vm_ns;
        log_speedup_sum += speedup.ln();
        rows.push((case.name, interp_ns, vm_ns, speedup, lower_ns));
    }
    let geomean_speedup = (log_speedup_sum / rows.len() as f64).exp();

    // serving-tier replay: 100 probes over 4 precision rungs x 3 workloads
    let evaluator = KernelEvaluator::fma();
    let mut config = Configuration::new();
    let mut i = 0u64;
    let replay_ns = ns_per_op(100, || {
        let bits = [52i64, 23, 12, 8][(i % 4) as usize];
        let features = [16.0 + (i % 3) as f64 * 8.0];
        config.set("mantissa", KnobValue::Int(bits));
        black_box(evaluator.evaluate(black_box(&config), black_box(&features)));
        i += 1;
    });
    let hit_rate = evaluator.cache().hit_rate();

    let gates = [
        (
            "probe_speedup",
            format!("geomean {geomean_speedup:.1}x >= 10x"),
            geomean_speedup >= 10.0,
        ),
        (
            "replay_hit_rate",
            format!("{:.1}% >= 95%", hit_rate * 100.0),
            hit_rate >= 0.95,
        ),
    ];
    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(name, _, _)| *name)
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"benchmark\": \"antarex-vm: metered bytecode probe throughput\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"kernels\": [");
    for (i, (name, interp_ns, vm_ns, speedup, lower_ns)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"kernel\": \"{name}\", \"interp_ns_per_probe\": {interp_ns:.0}, \"vm_ns_per_probe\": {vm_ns:.0}, \"speedup\": {speedup:.1}, \"lowering_ns\": {lower_ns:.0}}}{comma}"
        );
    }
    println!("  ],");
    println!("  \"probe_speedup_geomean\": {geomean_speedup:.1},");
    println!("  \"serving_replay\": {{");
    println!("    \"ns_per_probe\": {replay_ns:.0},");
    println!("    \"code_cache_hits\": {},", evaluator.cache().hits());
    println!("    \"code_cache_misses\": {},", evaluator.cache().misses());
    println!("    \"hit_rate\": {hit_rate:.3}");
    println!("  }},");
    println!("  \"gates\": {{");
    for (i, (name, detail, ok)) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        println!("    \"{name}\": {{\"detail\": \"{detail}\", \"pass\": {ok}}}{comma}");
    }
    println!("  }},");
    println!("  \"gates_passed\": {}", failed.is_empty());
    println!("}}");
    if !failed.is_empty() {
        eprintln!("vm_bench: FAILED gates: {}", failed.join(", "));
        std::process::exit(1);
    }
}
