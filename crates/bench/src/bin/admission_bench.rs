//! Headline numbers and gates for the SLO front door.
//!
//! Prints a JSON object (for `BENCH_admission.json`) combining the
//! *virtual-time* overload metrics — deterministic,
//! hardware-independent — with honest *wall-clock* timings of the same
//! campaigns on this machine: per-class goodput and p99 across the
//! uncontended / open-door / controlled profiles, the virtual-capacity
//! invariance verdict, and the mid-campaign crash/recovery drill.
//!
//! The acceptance gates are evaluated after the report and the process
//! exits nonzero when any fails, so CI can run this binary directly:
//!
//! * the controlled stack keeps ≥ 95% of the uncontended well-behaved
//!   goodput while the open door keeps ≤ 90%;
//! * the controlled well-behaved p99 stays below the open door's;
//! * the autoscaler actually grew virtual capacity;
//! * outcomes and state are byte-identical across physical worker
//!   counts;
//! * crash recovery restores the front-door state bit-identically.
//!
//! Usage: `cargo run --release -p antarex-bench --bin admission_bench`

use antarex_bench::admission_exp::{
    crash_recovery_drill, overload_campaign, worker_invariance, AdmissionScale, RunOutcome,
};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn print_run(row: &RunOutcome, comma: &str) {
    println!("    \"{}\": {{", row.profile);
    for (class, stats, trailing) in [("wb", &row.wb, ","), ("aggressive", &row.aggressive, ",")] {
        println!("      \"{class}\": {{");
        println!("        \"requests\": {},", stats.requests);
        println!("        \"served\": {},", stats.served);
        println!("        \"shed\": {},", stats.shed);
        println!("        \"failed\": {},", stats.failed);
        println!("        \"goodput\": {:.4},", stats.goodput());
        println!("        \"p99_latency_s\": {:.4}", stats.p99_latency_s);
        println!("      }}{trailing}");
    }
    println!("      \"degraded\": {},", row.degraded);
    println!("      \"admission_shed\": {},", row.admission_shed);
    println!("      \"tier_transitions\": {},", row.transitions);
    println!("      \"peak_virtual_capacity\": {}", row.peak_capacity);
    println!("    }}{comma}");
}

fn main() {
    let seed = 42;
    let scale = AdmissionScale::full();

    let (rows, wall_campaign_s) = timed(|| overload_campaign(seed, &scale));
    let (invariance, wall_invariance_s) = timed(|| worker_invariance(seed, &scale));
    let (recovery, wall_recovery_s) = timed(|| crash_recovery_drill(seed, &scale));

    let uncontended = &rows[0];
    let open_door = &rows[1];
    let controlled = &rows[2];
    let reference = uncontended.wb.goodput();
    let controlled_rel = controlled.wb.goodput() / reference;
    let open_rel = open_door.wb.goodput() / reference;

    let gates = [
        (
            "controlled_keeps_wb_goodput",
            format!("{controlled_rel:.4} >= 0.95"),
            controlled_rel >= 0.95,
        ),
        (
            "open_door_collapses",
            format!("{open_rel:.4} <= 0.90"),
            open_rel <= 0.90,
        ),
        (
            "controlled_holds_p99",
            format!(
                "{:.3} s < {:.3} s",
                controlled.wb.p99_latency_s, open_door.wb.p99_latency_s
            ),
            controlled.wb.p99_latency_s < open_door.wb.p99_latency_s,
        ),
        (
            "autoscaler_grew_capacity",
            format!("{} > {}", controlled.peak_capacity, scale.workers),
            controlled.peak_capacity > scale.workers,
        ),
        (
            "aggressive_tenants_shed",
            format!("{} > 0", controlled.admission_shed),
            controlled.admission_shed > 0,
        ),
        (
            "physical_worker_invariance",
            format!(
                "outcomes {} / state {}",
                invariance.outcomes_identical, invariance.state_identical
            ),
            invariance.outcomes_identical && invariance.state_identical,
        ),
        (
            "crash_recovery_bit_identical",
            format!("{}", recovery.bit_identical),
            recovery.bit_identical,
        ),
    ];
    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(name, _, _)| *name)
        .collect();

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"benchmark\": \"antarex-serve: SLO front door under bursty overload\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"workload\": {{");
    println!("    \"well_behaved_tenants\": {},", scale.wb_tenants);
    println!("    \"aggressive_tenants\": {},", scale.aggressive_tenants);
    println!("    \"workers\": {},", scale.workers);
    println!("    \"queue_capacity\": {},", scale.queue_capacity);
    println!("    \"virtual_duration_s\": {:.0}", scale.duration_s);
    println!("  }},");
    println!("  \"overload_campaign\": {{");
    for (i, row) in rows.iter().enumerate() {
        print_run(row, if i + 1 < rows.len() { "," } else { "" });
    }
    println!("  }},");
    println!("  \"worker_invariance\": {{");
    println!("    \"worker_counts\": {:?},", invariance.worker_counts);
    println!(
        "    \"outcomes_identical\": {},",
        invariance.outcomes_identical
    );
    println!("    \"state_identical\": {}", invariance.state_identical);
    println!("  }},");
    println!("  \"crash_recovery\": {{");
    println!(
        "    \"windows_before_crash\": {},",
        recovery.windows_before_crash
    );
    println!(
        "    \"windows_after_crash\": {},",
        recovery.windows_after_crash
    );
    println!("    \"had_snapshot\": {},", recovery.had_snapshot);
    println!("    \"replayed_entries\": {},", recovery.replayed_entries);
    println!("    \"bit_identical\": {}", recovery.bit_identical);
    println!("  }},");
    println!("  \"gates\": {{");
    for (i, (name, detail, ok)) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        println!("    \"{name}\": {{ \"pass\": {ok}, \"detail\": \"{detail}\" }}{comma}");
    }
    println!("  }},");
    println!("  \"gates_passed\": {},", failed.is_empty());
    println!("  \"wall_clock_s\": {{");
    println!("    \"overload_campaign\": {wall_campaign_s:.3},");
    println!("    \"worker_invariance\": {wall_invariance_s:.3},");
    println!("    \"recovery_drill\": {wall_recovery_s:.3}");
    println!("  }}");
    println!("}}");

    if !failed.is_empty() {
        eprintln!("admission_bench: FAILED gates: {}", failed.join(", "));
        std::process::exit(1);
    }
}
