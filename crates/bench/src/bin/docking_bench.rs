//! Headline numbers and gates for the work-stealing docking scheduler.
//!
//! Prints a JSON object (for `BENCH_docking.json`) combining the
//! *virtual-time* schedule metrics — deterministic,
//! hardware-independent — with honest *wall-clock* timings of the
//! scheduling passes on this machine: a million-ligand scaffold-sorted
//! screening library scheduled by every policy across a 1/2/4/8
//! virtual-core grid, the uniform control library, and the mixed
//! nav + docking service campaign at varying physical worker counts.
//!
//! The acceptance gates are evaluated after the report and the process
//! exits nonzero when any fails, so CI can run this binary directly:
//!
//! * the campaign is at drug-discovery scale (≥ 10⁶ tasks);
//! * stealing beats the static block partition ≥ 1.5× on the
//!   scaffold-sorted library at 8 cores;
//! * stealing stays within 1.02× of block on the uniform control;
//! * stealing actually stole (transactions observed);
//! * the mixed-campaign digest is byte-identical at 1/2/4/8 physical
//!   workers.
//!
//! Usage: `cargo run --release -p antarex-bench --bin docking_bench`

use antarex_bench::docking_exp::{
    campaign_invariance, scaffold_sorted_library, schedule_grid, uniform_library, DockingScale,
};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn main() {
    let scale = DockingScale::million();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (imbalanced, wall_library_s) = timed(|| scaffold_sorted_library(&scale));
    let total_work: f64 = imbalanced.costs.iter().sum();
    let (grid, wall_grid_s) = timed(|| schedule_grid(&imbalanced, &[1, 2, 4, 8]));
    let (uniform_grid, wall_uniform_s) = timed(|| schedule_grid(&uniform_library(&scale), &[8]));
    let counts = [1usize, 2, 4, 8];
    let ((digests, identical), wall_campaign_s) =
        timed(|| campaign_invariance(scale.seed, &counts));

    let eight = grid.last().expect("grid has rows");
    let uniform_eight = &uniform_grid[0];
    let uniform_ratio = uniform_eight.steal_s / uniform_eight.block_s;

    let gates = [
        (
            "million_task_scale",
            format!("{} tasks >= 1000000", scale.tasks),
            scale.tasks >= 1_000_000,
        ),
        (
            "stealing_beats_static_block",
            format!(
                "steal-vs-block {:.2}x >= 1.50x at 8 cores",
                eight.speedup_vs_block()
            ),
            eight.speedup_vs_block() >= 1.5,
        ),
        (
            "uniform_parity_held",
            format!("uniform steal/block {uniform_ratio:.4} <= 1.02"),
            uniform_ratio <= 1.02,
        ),
        (
            "stealing_actually_fired",
            format!("{} steal transactions at 8 cores", eight.steals),
            eight.steals > 0,
        ),
        (
            "physical_worker_invariance",
            format!("campaign digests identical at {counts:?}"),
            identical,
        ),
    ];
    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(name, _, _)| *name)
        .collect();

    println!("{{");
    println!(
        "  \"benchmark\": \"antarex-serve: deterministic work stealing at drug-discovery scale\","
    );
    println!("  \"physical_cores\": {cores},");
    println!("  \"workload\": {{");
    println!("    \"tasks\": {},", scale.tasks);
    println!("    \"scaffold_families\": {},", scale.families);
    println!("    \"pocket_spheres\": {},", scale.spheres);
    println!("    \"seed\": {},", scale.seed);
    println!("    \"total_work_core_s\": {total_work:.1}");
    println!("  }},");
    println!("  \"schedule_grid\": {{");
    for (i, row) in grid.iter().enumerate() {
        let comma = if i + 1 < grid.len() { "," } else { "" };
        println!("    \"cores_{}\": {{", row.cores);
        println!("      \"block_makespan_s\": {:.3},", row.block_s);
        println!("      \"list_makespan_s\": {:.3},", row.list_s);
        println!("      \"lpt_makespan_s\": {:.3},", row.lpt_s);
        println!("      \"steal_makespan_s\": {:.3},", row.steal_s);
        println!("      \"steals\": {},", row.steals);
        println!("      \"steal_vs_block\": {:.3},", row.speedup_vs_block());
        println!(
            "      \"effective_cores\": {:.3},",
            row.goodput_cores(total_work)
        );
        println!("      \"digest\": \"{:016x}\"", row.digest);
        println!("    }}{comma}");
    }
    println!("  }},");
    println!("  \"uniform_control\": {{");
    println!("    \"block_makespan_s\": {:.3},", uniform_eight.block_s);
    println!("    \"steal_makespan_s\": {:.3},", uniform_eight.steal_s);
    println!("    \"steal_over_block\": {uniform_ratio:.4}");
    println!("  }},");
    println!("  \"mixed_campaign_invariance\": {{");
    println!("    \"physical_workers\": {counts:?},");
    println!(
        "    \"digests\": [{}],",
        digests
            .iter()
            .map(|d| format!("\"{d:016x}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("    \"identical\": {identical}");
    println!("  }},");
    println!("  \"gates\": {{");
    for (i, (name, detail, ok)) in gates.iter().enumerate() {
        let comma = if i + 1 < gates.len() { "," } else { "" };
        println!("    \"{name}\": {{ \"pass\": {ok}, \"detail\": \"{detail}\" }}{comma}");
    }
    println!("  }},");
    println!("  \"gates_passed\": {},", failed.is_empty());
    println!("  \"wall_clock_s\": {{");
    println!("    \"library\": {wall_library_s:.3},");
    println!("    \"schedule_grid\": {wall_grid_s:.3},");
    println!("    \"uniform_control\": {wall_uniform_s:.3},");
    println!("    \"mixed_campaign\": {wall_campaign_s:.3}");
    println!("  }}");
    println!("}}");

    if !failed.is_empty() {
        eprintln!("docking_bench: FAILED gates: {}", failed.join(", "));
        std::process::exit(1);
    }
}
