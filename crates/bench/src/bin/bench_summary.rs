//! Aggregates every `BENCH_*.json` gate file into one markdown table.
//!
//! Each gated bench binary (`obs_bench`, `serve_bench`, `chaos_bench`,
//! `tuner_bench`, `energy_obs_bench`, ...) prints a flat-ish JSON
//! object of headline numbers and boolean gates. This tool scans a
//! directory (default: the current directory) for `BENCH_*.json`,
//! extracts every scalar with a tolerant line-based reader (no JSON
//! dependency — the files are machine-written, one scalar per line),
//! and renders:
//!
//! * a summary table — one row per bench, its gate tally, and a
//!   pass/FAIL verdict (a gate is any boolean field; pass means all
//!   booleans are `true`);
//! * a per-bench detail list of every scalar, in file order.
//!
//! `--update-readme` instead rewrites the region between the
//! `<!-- bench-summary:start -->` / `<!-- bench-summary:end -->`
//! markers in `README.md` with the summary table, so the published
//! results always match the committed gate files.
//!
//! Exits nonzero when any bench fails its gates (and, with
//! `--update-readme`, when the markers are missing), so CI can chain
//! it after the bench runs.
//!
//! Usage: `cargo run --release -p antarex-bench --bin bench_summary -- [dir] [--update-readme]`

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One scalar extracted from a gate file, in file order.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Number(String),
    Bool(bool),
    Text(String),
}

impl Scalar {
    fn render(&self) -> String {
        match self {
            Scalar::Number(n) => n.clone(),
            Scalar::Bool(b) => b.to_string(),
            Scalar::Text(t) => t.clone(),
        }
    }
}

/// Parses `"key": value` lines; nested objects contribute their leaf
/// keys, arrays and object openers are skipped.
fn extract_scalars(json: &str) -> Vec<(String, Scalar)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value = value.trim();
        let scalar = if value == "true" || value == "false" {
            Scalar::Bool(value == "true")
        } else if value.starts_with('"') && value.ends_with('"') && value.len() >= 2 {
            Scalar::Text(value[1..value.len() - 1].to_string())
        } else if !value.is_empty()
            && value
                .chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            Scalar::Number(value.to_string())
        } else {
            continue; // `{`, `[`, or malformed — not a scalar
        };
        out.push((key.to_string(), scalar));
    }
    out
}

/// One parsed gate file.
struct Bench {
    file: String,
    scalars: Vec<(String, Scalar)>,
}

impl Bench {
    fn name(&self) -> &str {
        self.scalars
            .iter()
            .find_map(|(key, value)| match (key.as_str(), value) {
                ("benchmark", Scalar::Text(text)) => Some(text.as_str()),
                _ => None,
            })
            .unwrap_or(&self.file)
    }

    fn gates(&self) -> (usize, usize) {
        let total = self
            .scalars
            .iter()
            .filter(|(_, v)| matches!(v, Scalar::Bool(_)))
            .count();
        let passed = self
            .scalars
            .iter()
            .filter(|(_, v)| matches!(v, Scalar::Bool(true)))
            .count();
        (passed, total)
    }

    fn passes(&self) -> bool {
        let (passed, total) = self.gates();
        passed == total
    }
}

fn load_benches(dir: &Path) -> std::io::Result<Vec<Bench>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    let mut benches = Vec::new();
    for path in files {
        let json = std::fs::read_to_string(&path)?;
        benches.push(Bench {
            file: path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string(),
            scalars: extract_scalars(&json),
        });
    }
    Ok(benches)
}

fn summary_table(benches: &[Bench]) -> String {
    let mut out = String::from("| gate file | benchmark | gates | verdict |\n|---|---|---|---|\n");
    for bench in benches {
        let (passed, total) = bench.gates();
        let _ = writeln!(
            out,
            "| `{}` | {} | {passed}/{total} | {} |",
            bench.file,
            bench.name(),
            if bench.passes() { "pass" } else { "**FAIL**" },
        );
    }
    out
}

fn full_report(benches: &[Bench]) -> String {
    let mut out = String::from("# Bench summary\n\n");
    out.push_str(&summary_table(benches));
    for bench in benches {
        let _ = write!(out, "\n## {}\n\n", bench.file);
        for (key, value) in &bench.scalars {
            let _ = writeln!(out, "- `{key}`: {}", value.render());
        }
    }
    out
}

const START: &str = "<!-- bench-summary:start -->";
const END: &str = "<!-- bench-summary:end -->";

fn update_readme(readme: &Path, table: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(readme).map_err(|e| format!("{}: {e}", readme.display()))?;
    let start = text
        .find(START)
        .ok_or_else(|| format!("{START} marker missing from {}", readme.display()))?;
    let end = text
        .find(END)
        .ok_or_else(|| format!("{END} marker missing from {}", readme.display()))?;
    if end < start {
        return Err("bench-summary markers are out of order".to_string());
    }
    let mut updated = String::with_capacity(text.len() + table.len());
    updated.push_str(&text[..start + START.len()]);
    updated.push('\n');
    updated.push_str(table);
    updated.push_str(&text[end..]);
    std::fs::write(readme, updated).map_err(|e| format!("{}: {e}", readme.display()))
}

fn main() -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut do_update = false;
    for arg in std::env::args().skip(1) {
        if arg == "--update-readme" {
            do_update = true;
        } else {
            dir = PathBuf::from(arg);
        }
    }
    let benches = match load_benches(&dir) {
        Ok(benches) => benches,
        Err(error) => {
            eprintln!("bench_summary: {}: {error}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    if benches.is_empty() {
        eprintln!("bench_summary: no BENCH_*.json in {}", dir.display());
        return ExitCode::FAILURE;
    }
    print!("{}", full_report(&benches));
    if do_update {
        if let Err(error) = update_readme(&dir.join("README.md"), &summary_table(&benches)) {
            eprintln!("bench_summary: {error}");
            return ExitCode::FAILURE;
        }
    }
    if benches.iter().all(Bench::passes) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "sample bench",
  "physical_cores": 8,
  "per_event_ns": {
    "counter_inc": 6.6
  },
  "within_budget": true,
  "worker_invariant": false,
  "digests": ["aa", "bb"],
  "note": "text value"
}"#;

    #[test]
    fn extracts_scalars_and_skips_structure() {
        let scalars = extract_scalars(SAMPLE);
        let keys: Vec<&str> = scalars.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "benchmark",
                "physical_cores",
                "counter_inc",
                "within_budget",
                "worker_invariant",
                "note"
            ]
        );
        assert_eq!(scalars[3].1, Scalar::Bool(true));
        assert_eq!(scalars[1].1, Scalar::Number("8".to_string()));
    }

    #[test]
    fn gate_tally_counts_booleans_only() {
        let bench = Bench {
            file: "BENCH_sample.json".to_string(),
            scalars: extract_scalars(SAMPLE),
        };
        assert_eq!(bench.gates(), (1, 2));
        assert!(!bench.passes());
        assert_eq!(bench.name(), "sample bench");
        let table = summary_table(&[bench]);
        assert!(table.contains("**FAIL**"));
        assert!(table.contains("1/2"));
    }
}
