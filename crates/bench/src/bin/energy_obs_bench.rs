//! Headline numbers for causal tracing + energy attribution (E1).
//!
//! Prints a JSON object (for `BENCH_energy_obs.json`) combining the
//! honest *wall-clock* cost of deriving a [`TraceCtx`] on this machine
//! with the virtual-time gates of the full-scale mixed campaign:
//!
//! * `trace_ctx_within_budget` — `TraceCtx::derive` stays under
//!   `ENERGY_OBS_TRACE_BUDGET_NS` (default 25 ns), so the untraced hot
//!   path pays only a few SplitMix64 rounds per request;
//! * `requests_at_scale` — the campaign pushes ≥ 10⁵ requests through
//!   the full admission → tuning → pool → VM → RTRM stack;
//! * `conservation_exact` — Σ per-request attributed energy + idle
//!   remainder ≡ the facility meter, exact integer nanojoules, at
//!   every worker count of the sweep;
//! * `worker_invariant` — the campaign digest (reports + invariant
//!   exposition + energy ledger + Chrome trace export) is
//!   byte-identical at 1/2/4/8 physical workers.
//!
//! The binary exits nonzero when any gate fails — CI publishes the
//! JSON and gates on the exit code.
//!
//! Usage: `cargo run --release -p antarex-bench --bin energy_obs_bench`

use antarex_bench::energy_obs::{campaign_invariance, EnergyScale};
use antarex_obs::{Layer, SpanId, TraceCtx, TraceEvent, TraceId, TraceStore};
use std::hint::black_box;
use std::time::Instant;

/// ns/op of `op` over `iters` iterations.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A budget override from the environment, in nanoseconds.
fn env_budget_ns(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // wall-clock: the per-request cost tracing adds even when nothing
    // is sampled (derivation), and the sampled-path record cost
    let mut seq = 0u32;
    let derive_ns = ns_per_op(20_000_000, || {
        seq = seq.wrapping_add(1);
        black_box(TraceCtx::derive(
            black_box(7),
            black_box(0x9e37_79b9),
            black_box(11),
            seq,
            black_box(8),
        ));
    });
    let store = TraceStore::new(1 << 20, 1);
    let mut t = 0.0f64;
    let record_ns = ns_per_op(1_000_000, || {
        t += 1e-6;
        black_box(store.record(TraceEvent {
            trace: TraceId(42),
            tenant: 7,
            layer: Layer::Vm,
            name: "bench",
            start_s: t,
            end_s: t + 1e-7,
            value: 1.0,
            span: SpanId::NONE,
        }));
    });

    // virtual-time gates on the full-scale campaign: hardware-independent
    let scale = EnergyScale::full();
    let counts = [1usize, 2, 4, 8];
    let (runs, worker_invariant) = campaign_invariance(&scale, &counts);
    let reference = &runs[0];
    let conservation_exact = runs.iter().all(|run| run.conserved);
    let requests_at_scale = reference.requests >= 100_000;

    let trace_budget_ns = env_budget_ns("ENERGY_OBS_TRACE_BUDGET_NS", 25.0);
    let trace_ctx_within_budget = derive_ns <= trace_budget_ns;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json_bool = |b: bool| if b { "true" } else { "false" };
    println!("{{");
    println!("  \"benchmark\": \"antarex-obs: causal tracing + energy attribution\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"trace_ctx_derive_ns\": {derive_ns:.1},");
    println!("  \"trace_budget_ns\": {trace_budget_ns:.1},");
    println!(
        "  \"trace_ctx_within_budget\": {},",
        json_bool(trace_ctx_within_budget)
    );
    println!("  \"trace_record_ns\": {record_ns:.1},");
    println!("  \"campaign_requests\": {},", reference.requests);
    println!("  \"campaign_served\": {},", reference.served);
    println!("  \"requests_at_scale\": {},", json_bool(requests_at_scale));
    println!("  \"facility_joules\": {:.6},", reference.facility_j);
    println!("  \"attributed_joules\": {:.6},", reference.attributed_j);
    println!("  \"idle_joules\": {:.6},", reference.idle_j);
    println!(
        "  \"conservation_exact\": {},",
        json_bool(conservation_exact)
    );
    println!(
        "  \"worker_digests\": [{}],",
        runs.iter()
            .map(|run| format!("\"{:016x}\"", run.digest))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("  \"worker_invariant\": {},", json_bool(worker_invariant));
    println!("  \"trace_events_retained\": {},", reference.trace_retained);
    println!("  \"trace_events_dropped\": {}", reference.trace_dropped);
    println!("}}");

    if !(trace_ctx_within_budget && requests_at_scale && conservation_exact && worker_invariant) {
        std::process::exit(1);
    }
}
