//! Headline numbers for the multi-tenant autotuning service.
//!
//! Prints a JSON object (for `BENCH_serve.json`) combining the
//! *virtual-time* metrics the reports are built on — deterministic,
//! hardware-independent — with honest *wall-clock* timings of the same
//! runs on this machine. On a single-core host the wall-clock speedup
//! sits near 1.0 while the virtual speedup reflects the pool's
//! scheduling; both are recorded side by side.
//!
//! Usage: `cargo run --release -p antarex-bench --bin serve_bench`

use antarex_bench::serve_exp::{batched_evaluation, scaling_row, ServeScale};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn main() {
    let seed = 42;
    let scale = ServeScale::full();
    let tenants = 64;

    let (one, wall_one_s) = timed(|| scaling_row(seed, &scale, tenants, 1));
    let (four, wall_four_s) = timed(|| scaling_row(seed, &scale, tenants, 4));
    let (bench, _) = timed(|| batched_evaluation(seed, scale.batch_tenants, 4));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"benchmark\": \"antarex-serve: multi-tenant autotuning service\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"driven_workload\": {{");
    println!("    \"tenants\": {tenants},");
    println!("    \"requests\": {},", one.requests);
    println!("    \"served\": {},", one.served);
    println!("    \"cache_hit_rate\": {:.4},", one.cache_hit_rate);
    println!(
        "    \"virtual_throughput_rps_1_worker\": {:.1},",
        one.throughput_rps
    );
    println!(
        "    \"virtual_throughput_rps_4_workers\": {:.1},",
        four.throughput_rps
    );
    println!("    \"wall_s_1_worker\": {wall_one_s:.3},");
    println!("    \"wall_s_4_workers\": {wall_four_s:.3}");
    println!("  }},");
    println!("  \"batched_evaluation\": {{");
    println!("    \"distinct_design_points\": {},", bench.jobs);
    println!(
        "    \"virtual_makespan_s_1_worker\": {:.3},",
        bench.serial_makespan_s
    );
    println!(
        "    \"virtual_makespan_s_4_workers\": {:.3},",
        bench.parallel_makespan_s
    );
    println!("    \"virtual_speedup_4_workers\": {:.2},", bench.speedup());
    println!(
        "    \"virtual_eval_per_s_1_worker\": {:.1},",
        bench.serial_throughput_rps()
    );
    println!(
        "    \"virtual_eval_per_s_4_workers\": {:.1}",
        bench.parallel_throughput_rps()
    );
    println!("  }}");
    println!("}}");
}
