//! Headline numbers for the tuner hot-path data plane.
//!
//! Prints a JSON object (for `BENCH_tuner.json`) combining honest
//! *wall-clock* micro-loop timings on this machine — indexed select vs
//! the retained linear reference, structural cache probes vs the
//! retained string-keyed reference — with the *virtual-time* DSE
//! speedups, which are deterministic and hardware-independent (on a
//! single-core host the wall-clock DSE speedup sits near 1.0 while the
//! virtual speedup reflects the evaluation schedule).
//!
//! Usage: `cargo run --release -p antarex-bench --bin tuner_bench`

use antarex_bench::tuner_exp::{dse_grid, HotPathScale, WORKER_COUNTS};
use antarex_serve::cache::{DesignKey, DesignPointCache, Metrics, ReferenceKey};
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::knob::KnobValue;
use antarex_tuner::space::Configuration;
use antarex_tuner::{KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

fn config(i: u64) -> Configuration {
    let mut c = Configuration::new();
    c.set("unroll", KnobValue::Int((i % 32) as i64));
    c.set("block", KnobValue::Int((i / 32 % 32) as i64));
    c.set("threads", KnobValue::Int((i / 1024 % 8) as i64));
    c
}

fn knowledge(points: u64) -> KnowledgeBase {
    let mut rng = StdRng::seed_from_u64(7);
    (0..points)
        .map(|i| {
            OperatingPoint::new(
                config(i),
                [
                    ("time".to_string(), rng.gen::<f64>() * 10.0),
                    ("energy".to_string(), rng.gen::<f64>() * 100.0),
                    ("quality".to_string(), rng.gen::<f64>()),
                ],
            )
        })
        .collect()
}

/// ns/op of `op` over `iters` iterations.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let kb = knowledge(2048);
    let objective = Objective::minimize("time");
    let constraints = [
        Constraint::at_most("energy", 60.0),
        Constraint::at_least("quality", 0.2),
    ];

    // select micro-loop: indexed probe vs retained linear scan
    let select_indexed_ns = ns_per_op(20_000, || {
        black_box(kb.best(black_box(&objective), black_box(&constraints)));
    });
    let select_linear_ns = ns_per_op(2_000, || {
        black_box(kb.best_linear(black_box(&objective), black_box(&constraints)));
    });

    // learn micro-loop: steady-state online update on the indexed base
    let mut learner = kb.clone();
    let mut i = 0u64;
    let learn_ns = ns_per_op(20_000, || {
        i = i.wrapping_add(997);
        learner.learn(
            OperatingPoint::new(config(i % 2048), [("time".to_string(), 1.0)]),
            0.2,
        );
    });

    // cache probes: structural key vs retained string-keyed reference
    let cache = DesignPointCache::new(8);
    let metrics: Metrics = [("time".to_string(), 1.0)].into_iter().collect();
    let mut reference: BTreeMap<ReferenceKey, Metrics> = BTreeMap::new();
    for j in 0..256u64 {
        cache.insert(DesignKey::new(&config(j), &[1.0]), metrics.clone());
        reference.insert(ReferenceKey::new(&config(j), &[1.0]), metrics.clone());
    }
    let mut k = 0u64;
    let cache_hit_ns = ns_per_op(50_000, || {
        k = k.wrapping_add(1);
        black_box(cache.get(&DesignKey::new(&config(k % 256), &[1.0])));
    });
    let mut k = 0u64;
    let cache_ref_ns = ns_per_op(50_000, || {
        k = k.wrapping_add(1);
        black_box(reference.get(&ReferenceKey::new(&config(k % 256), &[1.0])));
    });

    // parallel DSE: deterministic virtual speedups + wall clock
    let scale = HotPathScale::full();
    let wall_start = Instant::now();
    let grid = dse_grid(424244, scale.dse_budget);
    let dse_wall_s = wall_start.elapsed().as_secs_f64();
    let invariant = grid.iter().all(|r| r.invariant);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"benchmark\": \"antarex-tuner: hot-path data plane\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"select_2048_points\": {{");
    println!("    \"indexed_ns_per_op\": {select_indexed_ns:.0},");
    println!("    \"linear_reference_ns_per_op\": {select_linear_ns:.0},");
    println!(
        "    \"speedup\": {:.1}",
        select_linear_ns / select_indexed_ns
    );
    println!("  }},");
    println!("  \"learn_2048_points\": {{");
    println!("    \"ns_per_op\": {learn_ns:.0}");
    println!("  }},");
    println!("  \"cache_probe_hit\": {{");
    println!("    \"structural_ns_per_op\": {cache_hit_ns:.0},");
    println!("    \"string_reference_ns_per_op\": {cache_ref_ns:.0},");
    println!("    \"speedup\": {:.1}", cache_ref_ns / cache_hit_ns);
    println!("  }},");
    println!("  \"parallel_dse\": {{");
    println!("    \"budget_per_technique\": {},", scale.dse_budget);
    println!(
        "    \"worker_invariant\": {},",
        if invariant { "true" } else { "false" }
    );
    println!("    \"grid_wall_s\": {dse_wall_s:.3},");
    println!("    \"techniques\": [");
    for (t, row) in grid.iter().enumerate() {
        let comma = if t + 1 < grid.len() { "," } else { "" };
        let makespans = WORKER_COUNTS
            .iter()
            .zip(&row.makespans)
            .map(|(w, m)| format!("\"{w}\": {m:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "      {{\"technique\": \"{}\", \"evaluations\": {}, \"virtual_makespan_s\": {{{makespans}}}, \"virtual_speedup_4_workers\": {:.2}}}{comma}",
            row.technique,
            row.evaluations,
            row.makespans[0] / row.makespans[2]
        );
    }
    println!("    ]");
    println!("  }}");
    println!("}}");
}
