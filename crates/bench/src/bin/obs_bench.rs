//! Headline numbers for the observability plane.
//!
//! Prints a JSON object (for `BENCH_obs.json`) combining honest
//! *wall-clock* per-event overheads of the plane's instruments on this
//! machine — counter increment, gauge set, histogram record, span
//! record — with the determinism and accounting checks, which are
//! virtual-time and hardware-independent:
//!
//! * `worker_invariant` — invariant exposition + folded trace are
//!   byte-identical at every pool worker count of the sweep;
//! * `s1_figures_match` — the registry-derived scaling-grid counts are
//!   identical down a worker column, as the S1 experiment has always
//!   reported;
//! * `r2_figures_match` — batch-report sums (the pre-migration
//!   bookkeeping) equal the registry counters under the R2 fault
//!   campaign, metric by metric.
//!
//! The binary exits nonzero when a hot-path event exceeds its budget
//! (`OBS_BUDGET_NS`, default 25 ns; spans take a mutexed ring and an
//! interning probe, budgeted separately via `OBS_SPAN_BUDGET_NS`,
//! default 250 ns) or when any determinism/accounting check fails —
//! CI publishes the JSON and gates on the exit code.
//!
//! Usage: `cargo run --release -p antarex-bench --bin obs_bench`

use antarex_bench::obs_exp::{dual_accounting, invariance_holds, ObsScale};
use antarex_bench::serve_exp::{scaling_row, ServeScale};
use antarex_obs::{MetricsRegistry, Scope, SpanId, Tracer};
use std::hint::black_box;
use std::time::Instant;

/// ns/op of `op` over `iters` iterations.
fn ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A budget override from the environment, in nanoseconds.
fn env_budget_ns(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_events_total", Scope::Invariant);
    let gauge = registry.gauge("bench_level", Scope::Invariant);
    let histogram = registry.histogram("bench_latency_seconds", Scope::Timing);

    let counter_inc_ns = ns_per_op(20_000_000, || counter.inc());
    let mut level = 0.0f64;
    let gauge_set_ns = ns_per_op(20_000_000, || {
        level += 1.0;
        gauge.set(black_box(level));
    });
    let values: Vec<f64> = (0..1024).map(|i| 1e-6 * (i + 1) as f64).collect();
    let mut i = 0usize;
    let histogram_record_ns = ns_per_op(20_000_000, || {
        i = (i + 1) & 1023;
        histogram.record(black_box(values[i]));
    });
    let tracer = Tracer::new(4096);
    let mut t = 0.0f64;
    let span_record_ns = ns_per_op(2_000_000, || {
        t += 1e-6;
        black_box(tracer.record("bench", Some(1), SpanId::NONE, t, t + 1e-7));
    });

    // determinism + accounting checks on the tiny scales: virtual-time,
    // so the booleans are hardware-independent
    let obs_scale = ObsScale::tiny();
    let worker_invariant = invariance_holds(42, &obs_scale);
    let accounting = dual_accounting(42, &obs_scale);
    let r2_figures_match = accounting.iter().all(|r| r.report_sum == r.registry);
    let serve_scale = ServeScale::tiny();
    let one = scaling_row(42, &serve_scale, 6, 1);
    let four = scaling_row(42, &serve_scale, 6, 4);
    let s1_figures_match = one.requests == four.requests
        && one.served == four.served
        && one.shed == four.shed
        && one.evaluated == four.evaluated
        && one.cache_hit_rate == four.cache_hit_rate;

    let budget_ns = env_budget_ns("OBS_BUDGET_NS", 25.0);
    let span_budget_ns = env_budget_ns("OBS_SPAN_BUDGET_NS", 250.0);
    let hot_path_event_ns = counter_inc_ns.max(gauge_set_ns).max(histogram_record_ns);
    let within_budget = hot_path_event_ns <= budget_ns;
    let span_within_budget = span_record_ns <= span_budget_ns;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json_bool = |b: bool| if b { "true" } else { "false" };
    println!("{{");
    println!("  \"benchmark\": \"antarex-obs: tracing + metrics plane\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"per_event_ns\": {{");
    println!("    \"counter_inc\": {counter_inc_ns:.1},");
    println!("    \"gauge_set\": {gauge_set_ns:.1},");
    println!("    \"histogram_record\": {histogram_record_ns:.1},");
    println!("    \"span_record\": {span_record_ns:.1}");
    println!("  }},");
    println!("  \"hot_path_event_ns\": {hot_path_event_ns:.1},");
    println!("  \"budget_ns\": {budget_ns:.1},");
    println!("  \"within_budget\": {},", json_bool(within_budget));
    println!("  \"span_budget_ns\": {span_budget_ns:.1},");
    println!(
        "  \"span_within_budget\": {},",
        json_bool(span_within_budget)
    );
    println!("  \"worker_invariant\": {},", json_bool(worker_invariant));
    println!("  \"s1_figures_match\": {},", json_bool(s1_figures_match));
    println!("  \"r2_figures_match\": {}", json_bool(r2_figures_match));
    println!("}}");

    if !(within_budget
        && span_within_budget
        && worker_invariant
        && s1_figures_match
        && r2_figures_match)
    {
        std::process::exit(1);
    }
}
