//! Regenerates every figure and quantitative claim of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p antarex-bench --bin experiments            # all experiments
//! cargo run -p antarex-bench --bin experiments -- --only c3 u1
//! cargo run -p antarex-bench --bin experiments -- --jobs 4
//! cargo run -p antarex-bench --bin experiments -- --out   # also write a file
//! cargo run -p antarex-bench --bin experiments -- --list
//! ```
//!
//! `--jobs N` runs experiments on N worker threads; each report renders
//! into its own buffer and the merged output is printed in registry
//! order, byte-identical to a serial run.
//!
//! `--out [PATH]` additionally writes the report to PATH — by default
//! `target/experiments_output.txt`, so the artifact lands in build
//! output rather than the working tree (it is generated, not tracked).

use antarex_bench::{all_experiments, run_selected_jobs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for experiment in all_experiments() {
            println!("{:<4} {}", experiment.id, experiment.title);
        }
        return;
    }
    let only: Vec<String> = match args.iter().position(|a| a == "--only") {
        Some(pos) => args[pos + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .cloned()
            .collect(),
        None => Vec::new(),
    };
    let jobs = match args.iter().position(|a| a == "--jobs") {
        Some(pos) => match args.get(pos + 1).map(|a| a.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("--jobs expects a positive integer");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let out = args.iter().position(|a| a == "--out").map(|pos| {
        match args.get(pos + 1).filter(|a| !a.starts_with("--")) {
            Some(path) => std::path::PathBuf::from(path),
            None => std::path::PathBuf::from("target/experiments_output.txt"),
        }
    });
    let report = run_selected_jobs(&only, jobs);
    print!("{report}");
    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        std::fs::write(&path, &report)
            .unwrap_or_else(|e| panic!("write report to {}: {e}", path.display()));
        eprintln!("report written to {}", path.display());
    }
}
