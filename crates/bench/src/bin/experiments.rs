//! Regenerates every figure and quantitative claim of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p antarex-bench --bin experiments            # all experiments
//! cargo run -p antarex-bench --bin experiments -- --only c3 u1
//! cargo run -p antarex-bench --bin experiments -- --list
//! ```

use antarex_bench::{all_experiments, run_selected};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for experiment in all_experiments() {
            println!("{:<4} {}", experiment.id, experiment.title);
        }
        return;
    }
    let only: Vec<String> = match args.iter().position(|a| a == "--only") {
        Some(pos) => args[pos + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .cloned()
            .collect(),
        None => Vec::new(),
    };
    print!("{}", run_selected(&only));
}
