//! Headline numbers for the chaos-hardened serving tier.
//!
//! Prints a JSON object (for `BENCH_chaos.json`) combining the
//! *virtual-time* availability metrics — deterministic,
//! hardware-independent — with honest *wall-clock* timings of the same
//! campaigns on this machine: goodput per hardening profile under the
//! R2 fault schedule, poisoned-tenant containment, and the mid-run
//! crash/recovery drill with its bit-identity verdict.
//!
//! Usage: `cargo run --release -p antarex-bench --bin chaos_bench`

use antarex_bench::chaos_exp::{
    crash_recovery_drill, goodput_campaign, poisoned_tenant_containment, ChaosScale,
};
use std::time::Instant;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn main() {
    let seed = 42;
    let scale = ChaosScale::full();

    let (rows, wall_goodput_s) = timed(|| goodput_campaign(seed, &scale));
    let (containment, wall_containment_s) = timed(|| poisoned_tenant_containment(seed, &scale));
    let (recovery, wall_recovery_s) = timed(|| crash_recovery_drill(seed, &scale));

    let baseline = rows[0].stats.goodput();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"benchmark\": \"antarex-serve: chaos-hardened serving tier\",");
    println!("  \"physical_cores\": {cores},");
    println!("  \"workload\": {{");
    println!("    \"tenants\": {},", scale.tenants);
    println!("    \"workers\": {},", scale.workers);
    println!("    \"virtual_duration_s\": {:.0},", scale.duration_s);
    println!("    \"requests\": {}", rows[0].stats.requests);
    println!("  }},");
    println!("  \"goodput_under_faults\": {{");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    \"{}\": {{", row.profile);
        println!("      \"served\": {},", row.stats.served);
        println!("      \"failed\": {},", row.stats.failed);
        println!("      \"goodput\": {:.4},", row.stats.goodput());
        println!(
            "      \"relative_goodput\": {:.4},",
            if baseline > 0.0 {
                row.stats.goodput() / baseline
            } else {
                0.0
            }
        );
        println!("      \"retries\": {},", row.stats.retries);
        println!("      \"hedges\": {},", row.stats.hedges);
        println!("      \"quarantined\": {}", row.stats.quarantined);
        println!("    }}{comma}");
    }
    println!("  }},");
    println!("  \"poisoned_tenant_containment\": {{");
    println!(
        "    \"poisoned_requests\": {},",
        containment.poisoned_requests
    );
    println!(
        "    \"poisoned_rejected\": {},",
        containment.poisoned_rejected
    );
    println!("    \"breaker_trips\": {},", containment.breaker_trips);
    println!("    \"quarantined\": {},", containment.quarantined);
    println!("    \"others_served\": {}", containment.others_served);
    println!("  }},");
    println!("  \"crash_recovery\": {{");
    println!(
        "    \"windows_before_crash\": {},",
        recovery.windows_before_crash
    );
    println!(
        "    \"windows_after_crash\": {},",
        recovery.windows_after_crash
    );
    println!("    \"had_snapshot\": {},", recovery.had_snapshot);
    println!("    \"replayed_entries\": {},", recovery.replayed_entries);
    println!("    \"bit_identical\": {}", recovery.bit_identical);
    println!("  }},");
    println!("  \"wall_clock_s\": {{");
    println!("    \"goodput_campaign\": {wall_goodput_s:.3},");
    println!("    \"containment\": {wall_containment_s:.3},");
    println!("    \"recovery_drill\": {wall_recovery_s:.3}");
    println!("  }}");
    println!("}}");
}
