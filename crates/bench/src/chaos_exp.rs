//! Experiment R2: chaos-hardened serving.
//!
//! Drives the multi-tenant serving tier through a deterministic fault
//! campaign and measures what the hardening machinery buys:
//!
//! 1. **Goodput under faults** — the same seeded workload is served
//!    three ways: fault-free baseline, faults with the unhardened
//!    policy (no retries, no hedging, no breakers), and faults with the
//!    hardened profile (hedged retries with deadlines, per-tenant
//!    circuit breakers, quarantine). The headline claim: at a fault
//!    rate where the unhardened service loses well over 10% of its
//!    baseline goodput, the hardened service keeps ≥ 99% of it.
//! 2. **Poisoned-tenant containment** — one tenant's probes always fail
//!    the integrity check; its circuit breaker must trip and convert
//!    the stream into fail-fast rejections instead of burned pool time,
//!    while the other tenants keep serving.
//! 3. **Crash and recovery** — the hardened, journaled service is
//!    killed mid-run; recovery (snapshot + journal-suffix replay)
//!    continues the remaining windows and the final
//!    [`TuningService::state_report`] is compared byte for byte against
//!    an uninterrupted run of the same seed.
//!
//! Everything is virtual-time and seeded, so the whole report is
//! reproducible byte for byte — the CI determinism smoke diffs two runs.

use antarex_serve::chaos::ChaosConfig;
use antarex_serve::driver::{self, DriveStats, DriverConfig};
use antarex_serve::nav::NavEvaluator;
use antarex_serve::pool::PoolConfig;
use antarex_serve::service::ResilienceConfig;
use antarex_serve::store::TenantId;
use antarex_serve::{ServiceConfig, TuningRequest, TuningService};
use antarex_sim::faults::{FaultConfig, FaultSchedule};
use antarex_tuner::manager::AppManager;
use std::fmt::Write as _;

/// Size of one R2 run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosScale {
    /// Concurrent tenant sessions.
    pub tenants: usize,
    /// Distinct workload archetypes shared among tenants.
    pub archetypes: usize,
    /// Virtual duration of the driven run, seconds.
    pub duration_s: f64,
    /// Mean request rate per tenant, Hz.
    pub rate_per_tenant_hz: f64,
    /// Pool workers (= fault-schedule nodes).
    pub workers: usize,
}

impl ChaosScale {
    /// The full campaign printed by the `r2` experiment.
    ///
    /// One archetype per tenant keeps evaluation pressure on the pool
    /// for the whole run (no cross-tenant memoization hiding the
    /// faults), which is exactly the regime where hardening matters:
    /// a workload the cache has fully absorbed cannot fail.
    pub fn full() -> Self {
        ChaosScale {
            tenants: 96,
            archetypes: 96,
            duration_s: 120.0,
            rate_per_tenant_hz: 0.1,
            workers: 4,
        }
    }

    /// A tiny campaign for smoke testing in `cargo test`.
    pub fn tiny() -> Self {
        ChaosScale {
            tenants: 16,
            archetypes: 16,
            duration_s: 40.0,
            rate_per_tenant_hz: 0.1,
            workers: 2,
        }
    }

    fn driver(&self, seed: u64) -> DriverConfig {
        DriverConfig {
            tenants: self.tenants,
            archetypes: self.archetypes,
            duration_s: self.duration_s,
            rate_per_tenant_hz: self.rate_per_tenant_hz,
            batch_window_s: 5.0,
            seed,
        }
    }
}

/// The aggressive fault profile of the serving campaign. Exascale-cited
/// MTBFs (hours per node) would produce nothing on a two-minute virtual
/// horizon, so the rates are compressed to land several crashes, gray
/// windows, and corruption windows on every run while keeping the same
/// failure *shapes* as `FaultConfig::exascale`.
pub fn serving_faults(seed: u64) -> FaultConfig {
    let mut config = FaultConfig::none(seed);
    config.node_mtbf_s = 45.0;
    config.weibull_shape = 1.0;
    config.repair_time_s = 4.0;
    config.gray_mtbf_s = 35.0;
    config.gray_slowdown = 8.0;
    config.gray_duration_s = 6.0;
    config.corrupt_mtbf_s = 6.0;
    config.corrupt_window_s = 2.5;
    config
}

fn nav_service(
    seed: u64,
    scale: &ChaosScale,
    resilience: ResilienceConfig,
    chaos: Option<ChaosConfig>,
) -> TuningService<NavEvaluator> {
    let service = TuningService::with_resilience(
        ServiceConfig {
            pool: PoolConfig {
                workers: scale.workers,
                queue_capacity: 256,
            },
            ..ServiceConfig::default()
        },
        resilience,
        NavEvaluator::city(seed),
    );
    match chaos {
        Some(chaos) => service.with_chaos(chaos),
        None => service,
    }
}

/// One row of the goodput comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputRow {
    /// Profile label (`baseline`, `unhardened`, `hardened`).
    pub profile: &'static str,
    /// The driven-run statistics.
    pub stats: DriveStats,
    /// Total circuit trips across tenants.
    pub breaker_trips: u64,
}

/// Serves the seeded workload under one (resilience, chaos) profile.
pub fn goodput_run(
    seed: u64,
    scale: &ChaosScale,
    profile: &'static str,
    resilience: ResilienceConfig,
    chaos: Option<ChaosConfig>,
) -> GoodputRow {
    let config = scale.driver(seed);
    let service = nav_service(seed, scale, resilience, chaos);
    driver::register_nav_tenants(&service, &config, 0.5);
    let stats = driver::drive(&service, &config);
    GoodputRow {
        profile,
        stats,
        breaker_trips: service.breakers().total_trips(),
    }
}

/// The three-way goodput comparison: baseline, unhardened under faults,
/// hardened under the same faults.
pub fn goodput_campaign(seed: u64, scale: &ChaosScale) -> Vec<GoodputRow> {
    let schedule = || {
        FaultSchedule::generate(
            &serving_faults(seed),
            scale.workers,
            scale.duration_s + 60.0,
        )
    };
    let unhardened = ResilienceConfig {
        hedge: antarex_serve::chaos::HedgePolicy::disabled(),
        breaker: antarex_serve::breaker::BreakerConfig::disabled(),
        journaled: false,
        snapshot_mtbf_s: 0.0,
        snapshot_cost_s: 0.0,
    };
    vec![
        goodput_run(seed, scale, "baseline", ResilienceConfig::disabled(), None),
        goodput_run(
            seed,
            scale,
            "unhardened",
            unhardened,
            Some(ChaosConfig::new(schedule())),
        ),
        goodput_run(
            seed,
            scale,
            "hardened",
            ResilienceConfig::hardened(),
            Some(ChaosConfig::new(schedule())),
        ),
    ]
}

/// Outcome of the poisoned-tenant containment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainmentOutcome {
    /// The poisoned tenant.
    pub tenant: TenantId,
    /// Requests the poisoned tenant issued.
    pub poisoned_requests: u64,
    /// Its requests that failed (faulted or fail-fasted).
    pub poisoned_rejected: u64,
    /// Times its circuit opened.
    pub breaker_trips: u64,
    /// Requests served across the *other* tenants.
    pub others_served: u64,
    /// Design points quarantined over the run.
    pub quarantined: u64,
}

/// Poisons one tenant's probes and measures the blast radius.
pub fn poisoned_tenant_containment(seed: u64, scale: &ChaosScale) -> ContainmentOutcome {
    let poisoned: TenantId = 0;
    let config = scale.driver(seed);
    let schedule = FaultSchedule::generate(
        &FaultConfig::none(seed),
        scale.workers,
        scale.duration_s + 60.0,
    );
    let service = nav_service(
        seed,
        scale,
        ResilienceConfig::hardened(),
        Some(ChaosConfig::new(schedule).poison(poisoned)),
    );
    driver::register_nav_tenants(&service, &config, 0.5);
    let stats = driver::drive(&service, &config);
    let (requests, rejected) = service
        .store()
        .with(poisoned, |s| (s.requests + s.rejected, s.rejected))
        .unwrap_or((0, 0));
    let trips = service
        .breakers()
        .snapshot()
        .iter()
        .find(|(t, _)| *t == poisoned)
        .map(|(_, b)| b.trips())
        .unwrap_or(0);
    ContainmentOutcome {
        tenant: poisoned,
        poisoned_requests: requests,
        poisoned_rejected: rejected,
        breaker_trips: trips,
        others_served: stats.served as u64
            - service.store().with(poisoned, |s| s.requests).unwrap_or(0),
        quarantined: stats.quarantined,
    }
}

/// Outcome of the crash-recovery drill.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Batch windows served before the crash.
    pub windows_before_crash: usize,
    /// Batch windows served after recovery.
    pub windows_after_crash: usize,
    /// Whether a Daly snapshot existed at the crash.
    pub had_snapshot: bool,
    /// Journal-suffix entries replayed on recovery.
    pub replayed_entries: usize,
    /// Whether the recovered run's final state report equals the
    /// uninterrupted run's, byte for byte.
    pub bit_identical: bool,
}

/// Chunks the arrival stream into non-empty batch windows.
fn batch_windows(events: &[TuningRequest], window_s: f64) -> Vec<&[TuningRequest]> {
    let mut windows = Vec::new();
    let mut start = 0;
    let mut window_end = window_s;
    while start < events.len() {
        let end = events[start..]
            .iter()
            .position(|e| e.arrival_s >= window_end)
            .map(|offset| start + offset)
            .unwrap_or(events.len());
        if end == start {
            window_end += window_s;
            continue;
        }
        windows.push(&events[start..end]);
        start = end;
    }
    windows
}

/// Kills the hardened service mid-run, recovers from snapshot + journal
/// suffix, finishes the workload, and compares against an uninterrupted
/// run of the same seed.
pub fn crash_recovery_drill(seed: u64, scale: &ChaosScale) -> RecoveryOutcome {
    let config = scale.driver(seed);
    let service_config = ServiceConfig {
        pool: PoolConfig {
            workers: scale.workers,
            queue_capacity: 256,
        },
        ..ServiceConfig::default()
    };
    let resilience = ResilienceConfig::hardened();
    let chaos = || {
        ChaosConfig::new(FaultSchedule::generate(
            &serving_faults(seed),
            scale.workers,
            scale.duration_s + 60.0,
        ))
    };
    let make_manager = |_tenant: TenantId| -> AppManager { driver::nav_manager(0.5) };

    let events = driver::arrivals(&config);
    let windows = batch_windows(&events, config.batch_window_s);
    let crash_at = windows.len() / 2;

    let build = || {
        let service =
            TuningService::with_resilience(service_config, resilience, NavEvaluator::city(seed))
                .with_chaos(chaos());
        driver::register_nav_tenants(&service, &config, 0.5);
        service
    };

    // the uninterrupted reference
    let reference = build();
    for window in &windows {
        reference.serve_batch(window);
    }

    // the victim: crash after `crash_at` windows, recover, continue
    let victim = build();
    for window in &windows[..crash_at] {
        victim.serve_batch(window);
    }
    let (snapshot, entries) = victim.crash();
    let had_snapshot = snapshot.is_some();
    let replayed_entries = entries.len();
    let recovered = TuningService::recover(
        service_config,
        resilience,
        Some(chaos()),
        None,
        NavEvaluator::city(seed),
        snapshot,
        &entries,
        &make_manager,
    );
    for window in &windows[crash_at..] {
        recovered.serve_batch(window);
    }

    RecoveryOutcome {
        windows_before_crash: crash_at,
        windows_after_crash: windows.len() - crash_at,
        had_snapshot,
        replayed_entries,
        bit_identical: recovered.state_report() == reference.state_report(),
    }
}

/// Renders the full R2 report for one seed and scale.
pub fn r2_report(seed: u64, scale: &ChaosScale) -> String {
    let mut out = String::new();
    let faults = serving_faults(seed);
    let _ = writeln!(
        out,
        "chaos campaign (seed {seed}, {} tenants, {} workers, {:.0} s virtual)",
        scale.tenants, scale.workers, scale.duration_s
    );
    let _ = writeln!(
        out,
        "fault profile: node MTBF {:.0} s (repair {:.0} s), gray MTBF {:.0} s ({}x for {:.0} s), corruption MTBF {:.0} s ({:.0} s windows)",
        faults.node_mtbf_s,
        faults.repair_time_s,
        faults.gray_mtbf_s,
        faults.gray_slowdown,
        faults.gray_duration_s,
        faults.corrupt_mtbf_s,
        faults.corrupt_window_s
    );

    let rows = goodput_campaign(seed, scale);
    let baseline_goodput = rows[0].stats.goodput();
    let _ = writeln!(
        out,
        "\n{:>11} {:>9} {:>7} {:>7} {:>6} {:>9} {:>8} {:>7} {:>7} {:>6}",
        "profile",
        "requests",
        "served",
        "failed",
        "shed",
        "goodput",
        "rel",
        "retries",
        "hedges",
        "trips"
    );
    for row in &rows {
        let relative = if baseline_goodput > 0.0 {
            row.stats.goodput() / baseline_goodput
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>11} {:>9} {:>7} {:>7} {:>6} {:>8.1}% {:>7.1}% {:>7} {:>7} {:>6}",
            row.profile,
            row.stats.requests,
            row.stats.served,
            row.stats.failed,
            row.stats.shed,
            100.0 * row.stats.goodput(),
            100.0 * relative,
            row.stats.retries,
            row.stats.hedges,
            row.breaker_trips,
        );
    }
    let unhardened_rel = rows[1].stats.goodput() / baseline_goodput;
    let hardened_rel = rows[2].stats.goodput() / baseline_goodput;
    let _ = writeln!(
        out,
        "hardening recovers {:.1}% of baseline goodput where the unhardened service keeps {:.1}%",
        100.0 * hardened_rel,
        100.0 * unhardened_rel
    );

    let containment = poisoned_tenant_containment(seed, scale);
    let _ = writeln!(
        out,
        "\npoisoned tenant {}: {} requests, {} rejected, breaker tripped {} time(s), {} design points quarantined; other tenants served {}",
        containment.tenant,
        containment.poisoned_requests,
        containment.poisoned_rejected,
        containment.breaker_trips,
        containment.quarantined,
        containment.others_served
    );

    let recovery = crash_recovery_drill(seed, scale);
    let _ = writeln!(
        out,
        "\ncrash after {} of {} windows: snapshot {}, {} journal entries replayed, recovered state {} the uninterrupted run",
        recovery.windows_before_crash,
        recovery.windows_before_crash + recovery.windows_after_crash,
        if recovery.had_snapshot { "present" } else { "absent" },
        recovery.replayed_entries,
        if recovery.bit_identical {
            "IDENTICAL to"
        } else {
            "DIVERGED from"
        }
    );
    out
}

/// The registered `r2` experiment.
pub fn r2_chaos_hardening() -> String {
    r2_report(42, &ChaosScale::full())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic() {
        let a = r2_report(3, &ChaosScale::tiny());
        let b = r2_report(3, &ChaosScale::tiny());
        assert_eq!(a, b, "same seed must reproduce the report byte for byte");
    }

    #[test]
    fn hardened_goodput_holds_where_unhardened_collapses() {
        let rows = goodput_campaign(42, &ChaosScale::full());
        let baseline = rows[0].stats.goodput();
        assert!(baseline > 0.9, "baseline must mostly serve: {baseline}");
        let unhardened = rows[1].stats.goodput() / baseline;
        let hardened = rows[2].stats.goodput() / baseline;
        assert!(
            unhardened <= 0.90,
            "the fault rate must cost the unhardened service >= 10%: {unhardened}"
        );
        assert!(
            hardened >= 0.99,
            "the hardened service must keep >= 99% of baseline goodput: {hardened}"
        );
        assert!(rows[2].stats.retries > 0, "retries must have fired");
    }

    #[test]
    fn poisoned_tenant_is_contained() {
        let outcome = poisoned_tenant_containment(42, &ChaosScale::full());
        assert!(outcome.breaker_trips >= 1, "the breaker must trip");
        assert!(outcome.poisoned_rejected > 0);
        assert!(outcome.quarantined > 0, "corrupt points must quarantine");
        assert!(
            outcome.others_served > 0,
            "healthy tenants must keep serving"
        );
    }

    #[test]
    fn crash_recovery_is_bit_identical() {
        let outcome = crash_recovery_drill(7, &ChaosScale::tiny());
        assert!(outcome.windows_before_crash > 0);
        assert!(outcome.windows_after_crash > 0);
        assert!(outcome.bit_identical, "recovery must replay exactly");
    }
}
