//! D1 — work-stealing scheduler at drug-discovery scale.
//!
//! The §VII-a use case is a screening campaign of ~10⁶ ligands whose
//! per-task cost follows the `atoms × pocket_spheres × poses` work law:
//! lognormal heavy-atom counts times scaffold-clustered pose budgets —
//! exactly the "unpredictable imbalance" the paper's dynamic dispatch
//! targets. This experiment proves the deterministic work-stealing
//! scheduler on that shape at two levels:
//!
//! * **Part A — schedule grid.** ≥10⁵ (10⁶ in the gated bench)
//!   synthetic docking tasks, scheduled by every policy (static block,
//!   static list, LPT, stealing) across a 1/2/4/8-virtual-core grid.
//!   The scheduler sees only per-*scaffold* estimates (the quantized
//!   feature key a real cost model would have); execution accrues the
//!   true per-ligand cost. Stealing must beat the block partition on
//!   the scaffold-sorted library and hold parity on a uniform one.
//! * **Part B — mixed campaign.** Navigation and docking tenants in one
//!   [`TuningService`] behind a [`TenantMux`], scheduled with stealing,
//!   run at 1/2/4/8 *physical* workers with virtual capacity pinned —
//!   the full response/state digest must be byte-identical.

use antarex_serve::docking::{register_docking_tenants, TenantMux};
use antarex_serve::driver::{self, DriverConfig};
use antarex_serve::service::FrontDoorConfig;
use antarex_serve::{AdmissionConfig, AutoscaleConfig, SchedConfig, ServiceConfig, TuningService};
use antarex_sim::sched::{block_schedule, list_schedule, lpt_schedule, steal_schedule};
use antarex_sim::workload::lognormal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flops per scored atom–sphere interaction (the docking kernel's
/// calibrated constant) over platform flops per second.
const SECONDS_PER_INTERACTION: f64 = 2000.0 / 4.0e9;

/// Pose budgets a scaffold family can carry — the 32× spread between
/// fragment screens and exhaustive refinement is what makes a
/// scaffold-sorted library adversarial for static partitioning.
const FAMILY_POSES: [usize; 6] = [64, 32, 16, 8, 4, 2];

/// FNV-1a over schedule and campaign state.
#[derive(Debug, Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u64(&mut self, value: u64) {
        self.bytes(&value.to_le_bytes());
    }
    fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Part A — the synthetic screening library
// ---------------------------------------------------------------------------

/// Library sizing.
#[derive(Debug, Clone)]
pub struct DockingScale {
    /// Virtual docking tasks (ligands to score).
    pub tasks: usize,
    /// Scaffold families; each carries one pose budget (2–64) and its
    /// own median ligand size.
    pub families: usize,
    /// Pocket spheres (fixed per campaign).
    pub spheres: usize,
    /// Master seed.
    pub seed: u64,
}

impl DockingScale {
    /// The experiment-report scale: fast under `cargo test`.
    pub fn tiny() -> Self {
        DockingScale {
            tasks: 100_000,
            families: 48,
            spheres: 30,
            seed: 2016,
        }
    }

    /// The gated-bench scale: the use case's million-ligand campaign.
    pub fn million() -> Self {
        DockingScale {
            tasks: 1_048_576,
            ..DockingScale::tiny()
        }
    }
}

/// One synthetic library: true per-task costs plus the per-scaffold
/// estimates the scheduler is allowed to see.
#[derive(Debug, Clone)]
pub struct Library {
    /// True per-ligand docking cost, virtual seconds.
    pub costs: Vec<f64>,
    /// Quantized per-task estimate: the task's scaffold-family median
    /// cost (the cost model knows the family, not the ligand).
    pub estimates: Vec<f64>,
}

/// Generates the scaffold-sorted (imbalanced) library: ligands arrive
/// grouped by family, heaviest pose budgets first — the order a
/// screening deck file actually has, and the worst case for a static
/// block partition.
pub fn scaffold_sorted_library(scale: &DockingScale) -> Library {
    let mut rng = StdRng::seed_from_u64(scale.seed);
    // per-family median atom counts, themselves lognormal around the
    // library median of 24 heavy atoms
    let medians: Vec<f64> = (0..scale.families)
        .map(|_| (24.0 * lognormal(&mut rng, 0.0, 0.3)).clamp(8.0, 120.0))
        .collect();
    let mut families: Vec<usize> = (0..scale.families).collect();
    // heaviest scaffolds first: sort by estimated per-ligand work
    families.sort_by(|&a, &b| {
        let wa = medians[a] * FAMILY_POSES[a % FAMILY_POSES.len()] as f64;
        let wb = medians[b] * FAMILY_POSES[b % FAMILY_POSES.len()] as f64;
        wb.total_cmp(&wa).then(a.cmp(&b))
    });
    let mut costs = Vec::with_capacity(scale.tasks);
    let mut estimates = Vec::with_capacity(scale.tasks);
    let per_family = scale.tasks.div_ceil(scale.families);
    for &family in &families {
        let poses = FAMILY_POSES[family % FAMILY_POSES.len()] as f64;
        let family_estimate =
            medians[family] * scale.spheres as f64 * poses * SECONDS_PER_INTERACTION;
        for _ in 0..per_family {
            if costs.len() == scale.tasks {
                break;
            }
            let atoms = (medians[family] * lognormal(&mut rng, 0.0, 0.5)).clamp(4.0, 250.0);
            costs.push(atoms * scale.spheres as f64 * poses * SECONDS_PER_INTERACTION);
            estimates.push(family_estimate);
        }
    }
    Library { costs, estimates }
}

/// Generates the uniform control library: every ligand the median
/// fragment at the default pose budget. Static partitioning is optimal
/// here, so it bounds the stealing overhead.
pub fn uniform_library(scale: &DockingScale) -> Library {
    let cost = 24.0 * scale.spheres as f64 * 8.0 * SECONDS_PER_INTERACTION;
    Library {
        costs: vec![cost; scale.tasks],
        estimates: vec![cost; scale.tasks],
    }
}

/// One (policy × cores) grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Virtual cores scheduled onto.
    pub cores: usize,
    /// Static block partition (OpenMP `schedule(static)` analogue).
    pub block_s: f64,
    /// Greedy list schedule in arrival order (the legacy pool policy).
    pub list_s: f64,
    /// Longest-processing-time by estimate.
    pub lpt_s: f64,
    /// Deterministic work stealing.
    pub steal_s: f64,
    /// Steal transactions in the stealing schedule.
    pub steals: u64,
    /// FNV digest of the stealing schedule (assignments + completions).
    pub digest: u64,
}

impl GridRow {
    /// Stealing speedup over the static block partition.
    pub fn speedup_vs_block(&self) -> f64 {
        self.block_s / self.steal_s
    }

    /// Effective cores: total work over the stealing makespan.
    pub fn goodput_cores(&self, total_work_s: f64) -> f64 {
        total_work_s / self.steal_s
    }
}

/// Schedules the library under every policy across the core grid.
pub fn schedule_grid(library: &Library, cores_grid: &[usize]) -> Vec<GridRow> {
    cores_grid
        .iter()
        .map(|&cores| {
            let steal = steal_schedule(&library.costs, &library.estimates, cores);
            let mut digest = Digest::new();
            for (&core, &done) in steal.assignments.iter().zip(&steal.completions) {
                digest.u64(core as u64);
                digest.f64(done);
            }
            GridRow {
                cores,
                block_s: block_schedule(&library.costs, cores).makespan_s,
                list_s: list_schedule(&library.costs, cores).makespan_s,
                lpt_s: lpt_schedule(&library.costs, &library.estimates, cores).makespan_s,
                steal_s: steal.makespan_s,
                steals: steal.stats.steals,
                digest: digest.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Part B — mixed nav + docking campaign invariance
// ---------------------------------------------------------------------------

/// Runs the mixed campaign at the given *physical* worker count and
/// digests every response plus the final service state. Virtual
/// capacity is pinned by the front door, so the digest may depend only
/// on the workload.
pub fn mixed_campaign_digest(seed: u64, physical: usize) -> u64 {
    let mut config = ServiceConfig::default();
    config.pool.workers = physical;
    let front_door = FrontDoorConfig {
        admission: AdmissionConfig::hardened(),
        autoscale: AutoscaleConfig {
            min_workers: 4,
            max_workers: 4,
            ..AutoscaleConfig::hardened()
        },
    };
    let service = TuningService::new(config, TenantMux::city_and_screening(seed))
        .with_scheduler(SchedConfig::work_stealing())
        .with_front_door(front_door);
    let driver_config = DriverConfig::smoke(seed);
    driver::register_nav_tenants(&service, &driver_config, 0.5);
    register_docking_tenants(&service, 1000, 8, seed, 0.5);
    let mut requests = driver::arrivals(&driver_config);
    // docking tenants probe on the same clock, interleaved with nav
    for (index, arrival_s) in (0..48).map(|i| (i, 0.4 + 1.1 * i as f64)) {
        requests.push(antarex_serve::TuningRequest {
            tenant: 1000 + index % 8,
            arrival_s,
        });
    }
    requests.sort_by(|a, b| {
        a.arrival_s
            .total_cmp(&b.arrival_s)
            .then(a.tenant.cmp(&b.tenant))
    });
    let mut digest = Digest::new();
    for batch in requests.chunks(16) {
        let report = service.serve_batch(batch);
        digest.bytes(format!("{report:?}").as_bytes());
    }
    digest.bytes(service.state_report().as_bytes());
    digest.0
}

/// Digests the mixed campaign at each physical worker count.
pub fn campaign_invariance(seed: u64, counts: &[usize]) -> (Vec<u64>, bool) {
    let digests: Vec<u64> = counts
        .iter()
        .map(|&physical| mixed_campaign_digest(seed, physical))
        .collect();
    let identical = digests.windows(2).all(|pair| pair[0] == pair[1]);
    (digests, identical)
}

// ---------------------------------------------------------------------------
// Experiment report
// ---------------------------------------------------------------------------

/// The registered `d1` experiment: the tiny-scale grid plus the mixed
/// campaign, deterministic text.
pub fn d1_docking_scale() -> String {
    let scale = DockingScale::tiny();
    let imbalanced = scaffold_sorted_library(&scale);
    let uniform = uniform_library(&scale);
    let total_work: f64 = imbalanced.costs.iter().sum();
    let grid = schedule_grid(&imbalanced, &[1, 2, 4, 8]);
    let uniform_grid = schedule_grid(&uniform, &[8]);
    let counts = [1usize, 2, 4, 8];
    let (digests, identical) = campaign_invariance(scale.seed, &counts);

    let mut out = String::new();
    out.push_str(&format!(
        "docking scheduler campaign (seed {}, {} tasks, {} scaffold families, {} spheres)\n",
        scale.seed, scale.tasks, scale.families, scale.spheres
    ));
    out.push_str(&format!(
        "library: scaffold-sorted, total work {:.1} core-s, heaviest/median task {:.1}x\n\n",
        total_work,
        heaviest_over_median(&imbalanced.costs)
    ));
    out.push_str(
        "cores  block(s)   list(s)    lpt(s)     steal(s)   steals   steal-vs-block  eff-cores\n",
    );
    for row in &grid {
        out.push_str(&format!(
            "{:>5}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>7}  {:>13.2}x  {:>9.2}\n",
            row.cores,
            row.block_s,
            row.list_s,
            row.lpt_s,
            row.steal_s,
            row.steals,
            row.speedup_vs_block(),
            row.goodput_cores(total_work),
        ));
    }
    let eight = grid.last().expect("grid has rows");
    let uniform_eight = &uniform_grid[0];
    out.push_str(&format!(
        "\nuniform control (8 cores): steal {:.3} s vs block {:.3} s -> {:.3}x overhead\n",
        uniform_eight.steal_s,
        uniform_eight.block_s,
        uniform_eight.steal_s / uniform_eight.block_s
    ));
    out.push_str(&format!(
        "mixed nav+docking campaign ({counts:?} physical workers): digests {:?} -> {}\n",
        digests
            .iter()
            .map(|d| format!("{d:016x}"))
            .collect::<Vec<_>>(),
        if identical { "identical" } else { "DIVERGED" }
    ));
    out.push_str(&format!(
        "verdict: stealing rebalances the scaffold tail ({}), stays near parity on uniform ({}), physical workers invisible ({})\n",
        if eight.speedup_vs_block() >= 1.5 { "yes" } else { "NO" },
        if uniform_eight.steal_s <= 1.02 * uniform_eight.block_s { "yes" } else { "NO" },
        if identical { "yes" } else { "NO" },
    ));
    out
}

fn heaviest_over_median(costs: &[f64]) -> f64 {
    let mut sorted = costs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() - 1] / sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_deterministic_and_heavy_tailed() {
        let scale = DockingScale {
            tasks: 5000,
            ..DockingScale::tiny()
        };
        let a = scaffold_sorted_library(&scale);
        let b = scaffold_sorted_library(&scale);
        assert_eq!(a.costs, b.costs);
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.costs.len(), 5000);
        assert!(heaviest_over_median(&a.costs) > 4.0, "tail too light");
    }

    #[test]
    fn stealing_clears_the_gates_at_tiny_scale() {
        let scale = DockingScale {
            tasks: 20_000,
            ..DockingScale::tiny()
        };
        let grid = schedule_grid(&scaffold_sorted_library(&scale), &[8]);
        assert!(
            grid[0].speedup_vs_block() >= 1.5,
            "only {:.2}x over block",
            grid[0].speedup_vs_block()
        );
        let uniform = schedule_grid(&uniform_library(&scale), &[8]);
        assert!(
            uniform[0].steal_s <= 1.02 * uniform[0].block_s,
            "stealing overhead {:.3}x on uniform work",
            uniform[0].steal_s / uniform[0].block_s
        );
    }

    #[test]
    fn mixed_campaign_is_physical_worker_invariant() {
        let (digests, identical) = campaign_invariance(9, &[1, 2, 4]);
        assert!(identical, "digests diverged: {digests:?}");
    }

    #[test]
    fn d1_report_renders_with_green_verdicts() {
        let report = d1_docking_scale();
        assert!(report.contains("identical"));
        assert!(!report.contains("NO"), "report:\n{report}");
    }
}
