//! # antarex-bench — the experiment harness
//!
//! Regenerates every figure and every quantitative claim of the paper
//! (Silvano et al., DATE 2016) on the simulated substrate. Each
//! experiment is a function returning a printable report; the
//! `experiments` binary prints them all (or a `--only` selection), and
//! the criterion benches time the underlying mechanisms.
//!
//! Experiment index (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | id | source | reproduces |
//! |----|--------|------------|
//! | f2 | Fig. 2 | profiling aspect weaving + runtime histograms |
//! | f3 | Fig. 3 | unrolling speedup vs threshold |
//! | f4 | Fig. 4 | dynamic specialization in `[lowT, highT]` |
//! | c1 | §I     | heterogeneous ≈ 3× homogeneous MFLOPS/W |
//! | c2 | §V     | ≈15% energy variation across identical nodes |
//! | c3 | §V     | 18–50% savings: optimal P-state vs Linux governor |
//! | c4 | §V     | >10% PUE loss winter → summer |
//! | c5 | §I     | exascale power projection vs the 20–30 MW envelope |
//! | u1 | §VII-a | docking: static vs dynamic vs hetero-aware dispatch |
//! | u2 | §VII-b | navigation: fixed vs adaptive quality under load |
//! | a1 | §IV    | grey-box vs black-box autotuning convergence |
//! | a2 | §IV    | precision autotuning: energy vs error budget |
//! | a3 | §V     | hierarchical vs flat power management (ablation) |
//! | a4 | §V     | thermal-aware vs oblivious operation (ablation) |
//! | a5 | §V     | energy-aware co-scheduling under a power cap |
//! | a6 | §V     | FIFO vs EASY backfilling, replayed with energy |
//! | r1 | —      | fault campaign: checkpoint/restart, sensor loss, safe mode |
//! | s1 | §II    | autotuning-as-a-service: multi-tenant scaling, pool speedup, memoization |
//! | r2 | —      | chaos hardening: goodput under faults, breaker containment, crash recovery |
//! | p1 | —      | hot-path data plane: indexed select, structural cache keys, parallel DSE |
//! | o1 | —      | observability plane: worker-invariant traces, dual accounting, SLO burn |
//! | ad1 | —     | SLO front door: admission tiers, overload shedding, virtual autoscaling |
//! | v1 | —      | metered bytecode VM: engine equivalence, fused meters, code-cache replay |
//! | cl1 | §V    | fault-tolerant cluster RTRM: 4096-node hierarchy under a fault storm |
//! | d1 | §VII-a | work-stealing scheduler at drug-discovery scale: 10⁶ heavy-tailed docking tasks |
//! | e1 | —      | energy observability: causal traces + per-request joules, conservation exact |

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod ablations;
pub mod admission_exp;
pub mod chaos_exp;
pub mod claims;
pub mod cluster_exp;
pub mod docking_exp;
pub mod energy_obs;
pub mod figures;
pub mod obs_exp;
pub mod resiliency;
pub mod serve_exp;
pub mod tuner_exp;
pub mod use_cases;
pub mod vm_exp;

/// One registered experiment.
pub struct Experiment {
    /// Short identifier (`f2`, `c1`, ...).
    pub id: &'static str,
    /// Human-readable title, citing the paper source.
    pub title: &'static str,
    /// Runs the experiment and renders its report.
    pub run: fn() -> String,
}

/// Every experiment, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "f2",
            title: "Fig. 2 — ProfileArguments: weaving + runtime argument histogram",
            run: figures::f2_profile_arguments,
        },
        Experiment {
            id: "f3",
            title: "Fig. 3 — UnrollInnermostLoops: speedup vs threshold",
            run: figures::f3_unroll_threshold_sweep,
        },
        Experiment {
            id: "f4",
            title: "Fig. 4 — SpecializeKernel: dynamic weaving and the version cache",
            run: figures::f4_dynamic_specialization,
        },
        Experiment {
            id: "c1",
            title: "§I — heterogeneous vs homogeneous efficiency (paper: 7032 vs 2304 MFLOPS/W)",
            run: claims::c1_heterogeneous_efficiency,
        },
        Experiment {
            id: "c2",
            title: "§V — energy variation across nominally identical nodes (paper: 15%)",
            run: claims::c2_variability_spread,
        },
        Experiment {
            id: "c3",
            title: "§V — optimal operating point vs Linux governors (paper: 18-50%)",
            run: claims::c3_governor_savings,
        },
        Experiment {
            id: "c4",
            title: "§V — PUE loss winter to summer (paper: >10%)",
            run: claims::c4_pue_seasons,
        },
        Experiment {
            id: "c5",
            title: "§I — exascale power projection vs the 20-30 MW envelope",
            run: claims::c5_exascale_projection,
        },
        Experiment {
            id: "u1",
            title: "§VII-a — drug discovery: dispatch strategies on the heterogeneous cluster",
            run: use_cases::u1_docking_dispatch,
        },
        Experiment {
            id: "u2",
            title: "§VII-b — navigation: fixed vs SLA-adaptive quality under rush-hour load",
            run: use_cases::u2_navigation_adaptivity,
        },
        Experiment {
            id: "a1",
            title: "§IV — grey-box vs black-box autotuning convergence",
            run: ablations::a1_greybox_vs_blackbox,
        },
        Experiment {
            id: "a2",
            title: "§IV — precision autotuning: energy vs error budget",
            run: ablations::a2_precision_budget_sweep,
        },
        Experiment {
            id: "a3",
            title: "§V ablation — hierarchical vs flat power management",
            run: ablations::a3_hierarchical_vs_flat,
        },
        Experiment {
            id: "a4",
            title: "§V ablation — thermal-aware vs oblivious operation (MS3)",
            run: ablations::a4_thermal_aware,
        },
        Experiment {
            id: "a6",
            title: "§V — FIFO vs EASY-backfill scheduling, replayed with energy accounting",
            run: ablations::a6_scheduler_replay,
        },
        Experiment {
            id: "a5",
            title: "§V — energy-aware co-scheduling under a facility power cap (SuperMUC-style)",
            run: ablations::a5_energy_aware_scheduling,
        },
        Experiment {
            id: "r1",
            title: "fault campaign — checkpoint/restart, sensor-loss control, CADA safe mode",
            run: resiliency::r1_fault_campaign,
        },
        Experiment {
            id: "s1",
            title: "autotuning as a service — multi-tenant scaling, pool speedup, memoization",
            run: serve_exp::s1_service_scaling,
        },
        Experiment {
            id: "r2",
            title: "chaos hardening — goodput under faults, breaker containment, crash recovery",
            run: chaos_exp::r2_chaos_hardening,
        },
        Experiment {
            id: "p1",
            title: "hot-path data plane — indexed select, structural keys, parallel DSE",
            run: tuner_exp::p1_hot_path_report,
        },
        Experiment {
            id: "o1",
            title: "observability plane — worker-invariant traces, dual accounting, SLO burn",
            run: obs_exp::o1_observability,
        },
        Experiment {
            id: "ad1",
            title: "SLO front door — admission tiers, overload shedding, virtual autoscaling",
            run: admission_exp::ad1_admission_control,
        },
        Experiment {
            id: "v1",
            title: "metered bytecode VM — engine equivalence, fused meters, code-cache replay",
            run: vm_exp::v1_vm_equivalence,
        },
        Experiment {
            id: "cl1",
            title: "cluster RTRM — fault-tolerant hierarchy holds the cap through a fault storm",
            run: cluster_exp::cl1_cluster_rtrm,
        },
        Experiment {
            id: "d1",
            title: "§VII-a scale — deterministic work stealing over a million-ligand screen",
            run: docking_exp::d1_docking_scale,
        },
        Experiment {
            id: "e1",
            title: "energy observability — causal traces, per-request joules, exact conservation",
            run: energy_obs::e1_energy_observability,
        },
    ]
}

/// Runs experiments by id (all when `only` is empty), rendering a full
/// report.
pub fn run_selected(only: &[String]) -> String {
    run_selected_jobs(only, 1)
}

/// Runs experiments by id (all when `only` is empty) on `jobs` worker
/// threads.
///
/// Each experiment renders into its own buffer; the merged report is
/// emitted in registry order, so the output is identical to the serial
/// [`run_selected`] no matter how the workers interleave.
///
/// # Panics
///
/// Panics when `jobs` is zero.
pub fn run_selected_jobs(only: &[String], jobs: usize) -> String {
    assert!(jobs > 0, "at least one job is required");
    let selected: Vec<Experiment> = all_experiments()
        .into_iter()
        .filter(|e| only.is_empty() || only.iter().any(|o| o == e.id))
        .collect();
    let reports: Vec<Mutex<Option<String>>> = selected.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(selected.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(experiment) = selected.get(index) else {
                    break;
                };
                let body = (experiment.run)();
                match reports[index].lock() {
                    Ok(mut slot) => *slot = Some(body),
                    Err(poisoned) => *poisoned.into_inner() = Some(body),
                }
            });
        }
    });
    let mut out = String::new();
    for (experiment, report) in selected.iter().zip(&reports) {
        let body = match report.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
        .unwrap_or_default();
        out.push_str(&format!(
            "==============================================================\n[{}] {}\n==============================================================\n",
            experiment.id, experiment.title
        ));
        out.push_str(&body);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let experiments = all_experiments();
        for (i, a) in experiments.iter().enumerate() {
            for b in &experiments[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
        assert_eq!(experiments.len(), 26);
    }

    #[test]
    fn selection_filters() {
        let report = run_selected(&["c4".to_string()]);
        assert!(report.contains("[c4]"));
        assert!(!report.contains("[c1]"));
    }

    #[test]
    fn parallel_jobs_match_serial_output() {
        let only = vec!["c4".to_string(), "c5".to_string()];
        assert_eq!(run_selected_jobs(&only, 3), run_selected(&only));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_rejected() {
        let _ = run_selected_jobs(&[], 0);
    }
}
