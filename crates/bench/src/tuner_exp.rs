//! Experiment P1: the autotuning hot-path data plane.
//!
//! The tuner's per-request operations were rebuilt for speed — interned
//! symbols, an indexed knowledge base, structural cache keys, parallel
//! DSE — under one contract: *results are bit-identical to the retained
//! reference implementations*. This experiment makes the contract
//! observable and deterministic:
//!
//! 1. **Indexed select ≡ linear reference** — a seeded knowledge base
//!    (NaNs, negative zeros and missing metrics included) is queried
//!    under randomized objectives and constraints, before and after a
//!    mutation storm of `learn`/`upsert` operations; every answer is
//!    compared against `best_linear()`.
//! 2. **Structural cache key ≡ string reference** — randomized
//!    (configuration, features) pairs are keyed both ways; the
//!    equality relations must coincide, and `probe_seed` must equal
//!    the historical string-fold seed everywhere.
//! 3. **Parallel DSE invariance** — exhaustive, random and genetic
//!    batch techniques explore the same space at 1, 2, 4 and 8
//!    workers; the reports must be byte-identical, and the virtual
//!    makespan of each run (greedy list scheduling, the same
//!    virtual-time determinism the serving pool uses) yields exact,
//!    hardware-independent speedups.
//!
//! Nothing in the report depends on wall clocks, thread interleaving,
//! or symbol-interning order, so two runs print identical bytes — CI
//! diffs them. Wall-clock throughput lives in the `tuner_bench` binary.

use antarex_serve::cache::{DesignKey, ReferenceKey};
use antarex_serve::probe_seed;
use antarex_tuner::dse::{explore_parallel, virtual_makespan, DseReport};
use antarex_tuner::goal::{Constraint, Objective};
use antarex_tuner::knob::{Knob, KnobValue};
use antarex_tuner::search::batch::{BatchTechnique, ExhaustiveBatch, GeneticBatch, RandomBatch};
use antarex_tuner::space::{Configuration, DesignSpace};
use antarex_tuner::{KnowledgeBase, OperatingPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Size of one P1 run.
#[derive(Debug, Clone, Copy)]
pub struct HotPathScale {
    /// Operating points seeded into the knowledge base.
    pub points: usize,
    /// Select queries checked against the linear reference.
    pub queries: usize,
    /// `learn`/`upsert` mutations applied between query rounds.
    pub mutations: usize,
    /// (configuration, features) cases in the key-equivalence check.
    pub key_cases: usize,
    /// Evaluation budget per DSE technique.
    pub dse_budget: usize,
}

impl HotPathScale {
    /// The full scale printed by the `p1` experiment.
    pub fn full() -> Self {
        HotPathScale {
            points: 2048,
            queries: 256,
            mutations: 512,
            key_cases: 160,
            dse_budget: 240,
        }
    }

    /// A tiny scale for smoke testing in `cargo test`.
    pub fn tiny() -> Self {
        HotPathScale {
            points: 96,
            queries: 24,
            mutations: 32,
            key_cases: 24,
            dse_budget: 40,
        }
    }
}

const METRICS: [&str; 3] = ["time", "energy", "quality"];

fn random_config(rng: &mut StdRng) -> Configuration {
    let mut config = Configuration::new();
    config.set("unroll", KnobValue::Int(rng.gen_range(0..16)));
    config.set("block", KnobValue::Int(rng.gen_range(0..16)));
    config.set("threads", KnobValue::Int(rng.gen_range(1..9)));
    config
}

fn random_value(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..24) {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        _ => rng.gen::<f64>() * 10.0,
    }
}

fn random_point(rng: &mut StdRng) -> OperatingPoint {
    let config = random_config(rng);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for name in METRICS {
        if rng.gen_range(0..5) < 4 {
            metrics.push((name.to_string(), random_value(rng)));
        }
    }
    OperatingPoint::new(config, metrics)
}

fn random_query(rng: &mut StdRng) -> (Objective, Vec<Constraint>) {
    let metric = METRICS[rng.gen_range(0..METRICS.len())];
    let objective = if rng.gen_bool(0.5) {
        Objective::minimize(metric)
    } else {
        Objective::maximize(metric)
    };
    let constraints = (0..rng.gen_range(0..3))
        .map(|_| {
            let metric = METRICS[rng.gen_range(0..METRICS.len())];
            let bound = rng.gen::<f64>() * 8.0;
            if rng.gen_bool(0.5) {
                Constraint::at_most(metric, bound)
            } else {
                Constraint::at_least(metric, bound)
            }
        })
        .collect();
    (objective, constraints)
}

/// Outcome of the indexed-vs-linear equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectEquivalence {
    /// Points in the knowledge base after seeding.
    pub points: usize,
    /// Queries checked before mutation.
    pub queries: usize,
    /// Queries agreeing with `best_linear` before mutation.
    pub agreements: usize,
    /// Mutations applied.
    pub mutations: usize,
    /// Queries checked after the mutation storm.
    pub post_queries: usize,
    /// Agreements after the mutation storm.
    pub post_agreements: usize,
}

/// Builds a seeded knowledge base and checks indexed `best()` against
/// the linear reference around a mutation storm.
pub fn select_equivalence(seed: u64, scale: &HotPathScale) -> SelectEquivalence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kb = KnowledgeBase::new();
    for _ in 0..scale.points {
        kb.push(random_point(&mut rng));
    }
    let points = kb.len();
    let check = |kb: &KnowledgeBase, rng: &mut StdRng, queries: usize| {
        let mut agreements = 0;
        for _ in 0..queries {
            let (objective, constraints) = random_query(rng);
            let indexed = format!("{:?}", kb.best(&objective, &constraints));
            let linear = format!("{:?}", kb.best_linear(&objective, &constraints));
            if indexed == linear {
                agreements += 1;
            }
        }
        agreements
    };
    let agreements = check(&kb, &mut rng, scale.queries);
    for _ in 0..scale.mutations {
        if rng.gen_bool(0.5) {
            kb.upsert(random_point(&mut rng));
        } else {
            let point = random_point(&mut rng);
            let alpha = rng.gen::<f64>();
            kb.learn(point, alpha);
        }
    }
    let post_agreements = check(&kb, &mut rng, scale.queries);
    SelectEquivalence {
        points,
        queries: scale.queries,
        agreements,
        mutations: scale.mutations,
        post_queries: scale.queries,
        post_agreements,
    }
}

/// Outcome of the structural-key equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyEquivalence {
    /// Randomized (configuration, features) cases.
    pub cases: usize,
    /// Unordered case pairs compared.
    pub pairs: usize,
    /// Pairs where structural and string equality coincide.
    pub pair_agreements: usize,
    /// Cases where `probe_seed` equals the reference seed.
    pub seed_matches: usize,
}

/// Keys randomized cases both ways and compares the equality relations.
pub fn key_equivalence(seed: u64, scale: &HotPathScale) -> KeyEquivalence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases: Vec<(Configuration, Vec<f64>)> = Vec::with_capacity(scale.key_cases);
    for _ in 0..scale.key_cases {
        let mut config = random_config(&mut rng);
        let alphas = [-0.0, 0.0, 0.25, f64::NAN];
        config.set(
            "alpha",
            KnobValue::Float(alphas[rng.gen_range(0..alphas.len())]),
        );
        let features: Vec<f64> = (0..rng.gen_range(0..3))
            .map(|_| rng.gen_range(0..3) as f64 + rng.gen::<f64>() * 1e-9)
            .collect();
        cases.push((config, features));
    }
    let hashed: Vec<DesignKey> = cases.iter().map(|(c, f)| DesignKey::new(c, f)).collect();
    let reference: Vec<ReferenceKey> = cases.iter().map(|(c, f)| ReferenceKey::new(c, f)).collect();
    let mut pairs = 0;
    let mut pair_agreements = 0;
    for i in 0..cases.len() {
        for j in i + 1..cases.len() {
            pairs += 1;
            if (hashed[i] == hashed[j]) == (reference[i] == reference[j]) {
                pair_agreements += 1;
            }
        }
    }
    let seed_matches = cases
        .iter()
        .zip(&reference)
        .filter(|((config, features), reference)| probe_seed(config, features) == reference.seed())
        .count();
    KeyEquivalence {
        cases: cases.len(),
        pairs,
        pair_agreements,
        seed_matches,
    }
}

/// One technique's row in the parallel-DSE grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DseRow {
    /// Technique name.
    pub technique: &'static str,
    /// Evaluations performed (identical at every worker count).
    pub evaluations: usize,
    /// Best configuration found, rendered.
    pub best: String,
    /// Whether every worker count produced a byte-identical report.
    pub invariant: bool,
    /// Virtual makespan (s) per worker count, in `WORKER_COUNTS` order.
    pub makespans: Vec<f64>,
}

/// Worker counts swept by the DSE grid.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn dse_space() -> DesignSpace {
    DesignSpace::new(vec![
        Knob::int("unroll", 0, 15, 1),
        Knob::int("block", 0, 15, 1),
    ])
}

fn dse_metrics(config: &Configuration) -> BTreeMap<String, f64> {
    let u = config.get_int("unroll").unwrap_or(0) as f64;
    let b = config.get_int("block").unwrap_or(0) as f64;
    [
        ("time".to_string(), (u - 11.0).powi(2) + (b - 4.0).powi(2)),
        ("energy".to_string(), u + 2.0 * b),
    ]
    .into()
}

/// The virtual cost (seconds) of evaluating one design point — a pure
/// function of the configuration, mirroring how the serving pool
/// charges virtual time per evaluation.
fn virtual_cost(config: &Configuration) -> f64 {
    let u = config.get_int("unroll").unwrap_or(0) as f64;
    let b = config.get_int("block").unwrap_or(0) as f64;
    0.8 + 0.05 * u + 0.025 * b
}

/// Runs one technique at every worker count and checks invariance.
pub fn dse_row(
    seed: u64,
    budget: usize,
    technique: &'static str,
    make: fn() -> Box<dyn BatchTechnique>,
) -> DseRow {
    let run = |workers: usize| -> DseReport {
        explore_parallel(
            &dse_space(),
            make(),
            &Objective::minimize("time"),
            budget,
            seed,
            workers,
            dse_metrics,
        )
    };
    let reports: Vec<DseReport> = WORKER_COUNTS.iter().map(|&w| run(w)).collect();
    let baseline = format!("{:?}", reports[0]);
    let invariant = reports.iter().all(|r| format!("{r:?}") == baseline);
    // the evaluation stream is identical at every worker count, so the
    // virtual makespan differs only through the worker pool
    let costs: Vec<f64> = reports[0]
        .knowledge
        .points()
        .iter()
        .map(|p| virtual_cost(&p.config))
        .collect();
    DseRow {
        technique,
        evaluations: reports[0].evaluations,
        best: reports[0]
            .best
            .as_ref()
            .map_or_else(|| "-".to_string(), |c| c.to_string()),
        invariant,
        makespans: WORKER_COUNTS
            .iter()
            .map(|&w| virtual_makespan(&costs, w))
            .collect(),
    }
}

/// All three technique rows of the DSE grid.
pub fn dse_grid(seed: u64, budget: usize) -> Vec<DseRow> {
    vec![
        dse_row(seed, budget, "exhaustive", || {
            Box::new(ExhaustiveBatch::new())
        }),
        dse_row(seed, budget, "random", || Box::new(RandomBatch::new(16))),
        dse_row(seed, budget, "genetic", || {
            Box::new(GeneticBatch::with_params(16, 0.15))
        }),
    ]
}

/// Renders the P1 report.
pub fn p1_hot_path(seed: u64, scale: &HotPathScale) -> String {
    let mut out = String::new();
    let select = select_equivalence(seed, scale);
    let _ = writeln!(out, "-- indexed select vs linear reference --");
    let _ = writeln!(
        out,
        "knowledge base: {} points (NaN, -0.0 and missing metrics included)",
        select.points
    );
    let _ = writeln!(
        out,
        "pre-mutation:  {}/{} randomized queries agree",
        select.agreements, select.queries
    );
    let _ = writeln!(
        out,
        "post-mutation: {}/{} agree after {} learn/upsert mutations",
        select.post_agreements, select.post_queries, select.mutations
    );

    let keys = key_equivalence(seed.wrapping_add(1), scale);
    let _ = writeln!(out, "\n-- structural cache key vs string reference --");
    let _ = writeln!(
        out,
        "{} randomized cases: {}/{} pair equalities coincide, {}/{} probe seeds match",
        keys.cases, keys.pair_agreements, keys.pairs, keys.seed_matches, keys.cases
    );

    let _ = writeln!(out, "\n-- parallel DSE: worker-count invariance --");
    let _ = writeln!(
        out,
        "{:<11} {:>6} {:>10} {:>26} {:>9}  best",
        "technique", "evals", "invariant", "virtual makespan (s) 1/2/4/8", "x4 speedup"
    );
    for row in dse_grid(seed.wrapping_add(2), scale.dse_budget) {
        let makespans = row
            .makespans
            .iter()
            .map(|m| format!("{m:.1}"))
            .collect::<Vec<_>>()
            .join("/");
        let speedup_4 = row.makespans[0] / row.makespans[2];
        let _ = writeln!(
            out,
            "{:<11} {:>6} {:>10} {:>26} {:>9.2}  {}",
            row.technique,
            row.evaluations,
            if row.invariant { "yes" } else { "NO" },
            makespans,
            speedup_4,
            row.best
        );
    }
    out
}

/// Entry point for the experiment registry.
pub fn p1_hot_path_report() -> String {
    p1_hot_path(424242, &HotPathScale::full())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalence_is_total_at_tiny_scale() {
        let scale = HotPathScale::tiny();
        let select = select_equivalence(1, &scale);
        assert_eq!(select.agreements, select.queries);
        assert_eq!(select.post_agreements, select.post_queries);
        let keys = key_equivalence(2, &scale);
        assert_eq!(keys.pair_agreements, keys.pairs);
        assert_eq!(keys.seed_matches, keys.cases);
    }

    #[test]
    fn dse_rows_are_invariant_and_speed_up() {
        for row in dse_grid(3, HotPathScale::tiny().dse_budget) {
            assert!(row.invariant, "{} not worker-invariant", row.technique);
            assert!(row.evaluations > 0);
            let speedup_4 = row.makespans[0] / row.makespans[2];
            assert!(
                speedup_4 >= 1.8,
                "{}: virtual x4 speedup only {speedup_4:.2}",
                row.technique
            );
        }
    }

    #[test]
    fn report_is_deterministic() {
        let scale = HotPathScale::tiny();
        assert_eq!(p1_hot_path(9, &scale), p1_hot_path(9, &scale));
    }
}
