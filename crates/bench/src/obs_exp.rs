//! Experiment O1: the deterministic observability plane.
//!
//! Proves the `antarex-obs` determinism contract on the serving tier:
//!
//! 1. **Worker invariance** — the same seeded workload is driven at
//!    1/2/4/8 pool workers; the invariant-scoped metric exposition and
//!    the folded span trace must be byte-identical across all four
//!    runs. Spans record virtual *work content* (probe cost, nominal
//!    lookup cost), never queue placement, which is what makes a trace
//!    diffable across thread counts.
//! 2. **Dual accounting** — the hardened service is served window by
//!    window under the R2 fault campaign; the per-batch report sums
//!    (the pre-migration accounting) are compared metric by metric
//!    against the registry counters. The serving stats and the
//!    exposition are two views of the same cells, so every row must
//!    match exactly.
//! 3. **SLO burn** — the per-tenant latency SLO burn rows computed from
//!    the driven run, demonstrating `monitor::sla` wired through the
//!    plane.
//!
//! Everything is virtual-time and seeded: the whole report reproduces
//! byte for byte, and CI diffs two runs.

use antarex_obs::MetricValue;
use antarex_serve::chaos::ChaosConfig;
use antarex_serve::driver::{self, DriverConfig};
use antarex_serve::nav::NavEvaluator;
use antarex_serve::pool::PoolConfig;
use antarex_serve::service::ResilienceConfig;
use antarex_serve::{Evaluator, ServiceConfig, TuningService};
use antarex_sim::faults::FaultSchedule;
use std::fmt::Write as _;

/// Size of one O1 run.
#[derive(Debug, Clone, Copy)]
pub struct ObsScale {
    /// Concurrent tenant sessions.
    pub tenants: usize,
    /// Distinct workload archetypes shared among tenants.
    pub archetypes: usize,
    /// Virtual duration of each driven run, seconds.
    pub duration_s: f64,
    /// Mean request rate per tenant, Hz.
    pub rate_per_tenant_hz: f64,
    /// Pool worker counts swept by the invariance check.
    pub worker_counts: &'static [usize],
}

impl ObsScale {
    /// The full sweep printed by the `o1` experiment.
    pub fn full() -> Self {
        ObsScale {
            tenants: 32,
            archetypes: 8,
            duration_s: 120.0,
            rate_per_tenant_hz: 0.5,
            worker_counts: &[1, 2, 4, 8],
        }
    }

    /// A tiny sweep for smoke testing in `cargo test`.
    pub fn tiny() -> Self {
        ObsScale {
            tenants: 8,
            archetypes: 3,
            duration_s: 30.0,
            rate_per_tenant_hz: 0.4,
            worker_counts: &[1, 4],
        }
    }

    fn driver(&self, seed: u64) -> DriverConfig {
        DriverConfig {
            tenants: self.tenants,
            archetypes: self.archetypes,
            duration_s: self.duration_s,
            rate_per_tenant_hz: self.rate_per_tenant_hz,
            batch_window_s: 10.0,
            seed,
        }
    }
}

fn nav_service(seed: u64, workers: usize) -> TuningService<NavEvaluator> {
    TuningService::new(
        ServiceConfig {
            pool: PoolConfig {
                workers,
                queue_capacity: 256,
            },
            ..ServiceConfig::default()
        },
        NavEvaluator::city(seed),
    )
}

/// Reads one service-wide counter from the registry by name.
pub fn counter_value<E: Evaluator>(service: &TuningService<E>, name: &str) -> u64 {
    service
        .obs()
        .plane()
        .registry
        .snapshot(None)
        .iter()
        .find_map(|m| match (m.name == name, &m.value) {
            (true, MetricValue::Counter(v)) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

/// One driven run's observability artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRun {
    /// Pool workers the run used.
    pub workers: usize,
    /// Requests generated.
    pub requests: usize,
    /// Requests served.
    pub served: usize,
    /// Probes evaluated.
    pub evaluated: usize,
    /// Cache hit fraction among served requests.
    pub cache_hit_rate: f64,
    /// Invariant-scoped metric exposition.
    pub invariant_exposition: String,
    /// Folded span trace.
    pub folded: String,
}

/// Drives the seeded workload at `workers` and captures the plane.
pub fn observed_run(seed: u64, scale: &ObsScale, workers: usize) -> ObsRun {
    let config = scale.driver(seed);
    let service = nav_service(seed, workers);
    driver::register_nav_tenants(&service, &config, 0.5);
    let stats = driver::drive(&service, &config);
    ObsRun {
        workers,
        requests: stats.requests,
        served: stats.served,
        evaluated: stats.evaluated,
        cache_hit_rate: stats.cache_hit_rate(),
        invariant_exposition: service.obs().invariant_exposition(),
        folded: service.obs().folded_trace(),
    }
}

/// Whether the invariant exposition and the folded trace are
/// byte-identical across every worker count of the sweep.
pub fn invariance_holds(seed: u64, scale: &ObsScale) -> bool {
    let runs: Vec<ObsRun> = scale
        .worker_counts
        .iter()
        .map(|&w| observed_run(seed, scale, w))
        .collect();
    runs.windows(2).all(|pair| {
        pair[0].invariant_exposition == pair[1].invariant_exposition
            && pair[0].folded == pair[1].folded
    })
}

/// One dual-accounting row: a count summed from per-batch reports (the
/// pre-migration bookkeeping) against the registry counter it migrated
/// onto.
#[derive(Debug, Clone, PartialEq)]
pub struct AccountingRow {
    /// Registry metric name.
    pub metric: &'static str,
    /// Sum over [`antarex_serve::BatchReport`]s and responses.
    pub report_sum: u64,
    /// The registry counter's value after the run.
    pub registry: u64,
}

/// Serves the R2 hardened fault campaign window by window, tallying
/// the batch reports the way the driver did before the migration, and
/// compares every figure against the registry.
pub fn dual_accounting(seed: u64, scale: &ObsScale) -> Vec<AccountingRow> {
    let config = scale.driver(seed);
    let schedule = FaultSchedule::generate(
        &crate::chaos_exp::serving_faults(seed),
        4,
        scale.duration_s + 60.0,
    );
    let service = TuningService::with_resilience(
        ServiceConfig {
            pool: PoolConfig {
                workers: 4,
                queue_capacity: 256,
            },
            ..ServiceConfig::default()
        },
        ResilienceConfig::hardened(),
        NavEvaluator::city(seed),
    )
    .with_chaos(ChaosConfig::new(schedule));
    driver::register_nav_tenants(&service, &config, 0.5);

    let events = driver::arrivals(&config);
    let (mut served, mut cache_hits, mut evaluated) = (0u64, 0u64, 0u64);
    let (mut shed, mut retries, mut hedges, mut quarantined) = (0u64, 0u64, 0u64, 0u64);
    let mut start = 0;
    let mut window_end = config.batch_window_s;
    while start < events.len() {
        let end = events[start..]
            .iter()
            .position(|e| e.arrival_s >= window_end)
            .map(|offset| start + offset)
            .unwrap_or(events.len());
        if end == start {
            window_end += config.batch_window_s;
            continue;
        }
        let report = service.serve_batch(&events[start..end]);
        evaluated += report.evaluated as u64;
        shed += report.shed as u64;
        retries += report.retries;
        hedges += report.hedges;
        quarantined += report.quarantined;
        for answer in report.responses.iter().flatten() {
            served += 1;
            cache_hits += u64::from(answer.cache_hit);
        }
        start = end;
    }
    let per_breaker_trips: u64 = service
        .breakers()
        .snapshot()
        .iter()
        .map(|(_, b)| b.trips())
        .sum();

    let row = |metric: &'static str, report_sum: u64| AccountingRow {
        metric,
        report_sum,
        registry: counter_value(&service, metric),
    };
    vec![
        row("serve_requests_total", events.len() as u64),
        row("serve_served_total", served),
        row("serve_cache_hit_responses_total", cache_hits),
        row("serve_evaluated_total", evaluated),
        row("serve_shed_total", shed),
        row("serve_retries_total", retries),
        row("serve_hedges_total", hedges),
        row("serve_cache_quarantined_total", quarantined),
        row("serve_breaker_trips_total", per_breaker_trips),
    ]
}

/// The first `lines` lines of `text`, each indented two spaces.
fn head(text: &str, lines: usize) -> String {
    let mut out = String::new();
    for line in text.lines().take(lines) {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Renders the full O1 report for one seed and scale.
pub fn o1_report(seed: u64, scale: &ObsScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "observability plane (seed {seed}, {} tenants, {:.0} s virtual, {:.2} Hz/tenant)",
        scale.tenants, scale.duration_s, scale.rate_per_tenant_hz
    );

    // 1. worker invariance: the exposition and the folded trace must
    // not move a byte as the pool scales
    let runs: Vec<ObsRun> = scale
        .worker_counts
        .iter()
        .map(|&w| observed_run(seed, scale, w))
        .collect();
    let reference = &runs[0];
    let _ = writeln!(
        out,
        "\n{:>8} {:>9} {:>7} {:>6} {:>7} {:>12} {:>12}",
        "workers", "requests", "served", "evald", "hit%", "exposition", "folded"
    );
    for run in &runs {
        let expo = if run.invariant_exposition == reference.invariant_exposition {
            "IDENTICAL"
        } else {
            "DIVERGED"
        };
        let fold = if run.folded == reference.folded {
            "IDENTICAL"
        } else {
            "DIVERGED"
        };
        let _ = writeln!(
            out,
            "{:>8} {:>9} {:>7} {:>6} {:>6.1}% {:>12} {:>12}",
            run.workers,
            run.requests,
            run.served,
            run.evaluated,
            100.0 * run.cache_hit_rate,
            expo,
            fold,
        );
    }

    let _ = writeln!(
        out,
        "\ninvariant exposition, first lines ({} total):",
        reference.invariant_exposition.lines().count()
    );
    out.push_str(&head(&reference.invariant_exposition, 12));
    let _ = writeln!(
        out,
        "folded trace, first lines ({} total):",
        reference.folded.lines().count()
    );
    out.push_str(&head(&reference.folded, 6));

    // 2. dual accounting: batch-report sums vs registry counters
    let rows = dual_accounting(seed, scale);
    let _ = writeln!(
        out,
        "\ndual accounting under the R2 fault campaign (hardened profile):"
    );
    let _ = writeln!(
        out,
        "{:>34} {:>12} {:>12} {:>6}",
        "metric", "report sum", "registry", "match"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "{:>34} {:>12} {:>12} {:>6}",
            row.metric,
            row.report_sum,
            row.registry,
            if row.report_sum == row.registry {
                "ok"
            } else {
                "DRIFT"
            },
        );
    }

    // 3. per-tenant SLO burn rows of the reference run
    let config = scale.driver(seed);
    let service = nav_service(seed, scale.worker_counts[0]);
    driver::register_nav_tenants(&service, &config, 0.5);
    let _ = driver::drive(&service, &config);
    let burn = antarex_obs::burn_exposition(&service.obs().plane().slo.burn_rates());
    let _ = writeln!(
        out,
        "\nlatency SLO burn (threshold {:.2} s, first tenants):",
        service.obs().slo_latency_s()
    );
    out.push_str(&head(&burn, 8));
    out
}

/// The registered `o1` experiment.
pub fn o1_observability() -> String {
    o1_report(42, &ObsScale::full())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic() {
        let a = o1_report(3, &ObsScale::tiny());
        let b = o1_report(3, &ObsScale::tiny());
        assert_eq!(a, b, "same seed must reproduce the report byte for byte");
    }

    #[test]
    fn exposition_and_trace_are_worker_invariant() {
        assert!(invariance_holds(11, &ObsScale::tiny()));
    }

    #[test]
    fn report_sums_equal_registry_counters() {
        for row in dual_accounting(7, &ObsScale::tiny()) {
            assert_eq!(
                row.report_sum, row.registry,
                "metric {} drifted from the registry",
                row.metric
            );
        }
    }

    #[test]
    fn full_report_confirms_invariance() {
        let report = o1_report(5, &ObsScale::tiny());
        assert!(report.contains("IDENTICAL"));
        assert!(!report.contains("DIVERGED"));
        assert!(!report.contains("DRIFT"));
    }
}
